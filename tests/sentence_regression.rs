//! Sentence-level regression corpus: real-policy-style sentences with the
//! expected category, polarity, and at least one expected resource. Guards
//! the whole NLP stack (tokenizer → tagger → parser → patterns → negation
//! → elements) against regressions.

use ppchecker_policy::{PolicyAnalyzer, VerbCategory};

struct Case {
    sentence: &'static str,
    category: VerbCategory,
    negative: bool,
    /// A substring that must appear among extracted resources.
    resource: &'static str,
}

const fn case(
    sentence: &'static str,
    category: VerbCategory,
    negative: bool,
    resource: &'static str,
) -> Case {
    Case { sentence, category, negative, resource }
}

use VerbCategory::{Collect, Disclose, Retain, Use};

const CASES: &[Case] = &[
    // ---- plain active ----
    case("We collect your location.", Collect, false, "location"),
    case("We may collect your device id and your email address.", Collect, false, "device id"),
    case("Our app collects your precise location data.", Collect, false, "location data"),
    case("We gather anonymous usage data.", Collect, false, "usage data"),
    case("We will obtain your phone number during registration.", Collect, false, "phone number"),
    case("The app may record audio recordings.", Collect, false, "audio"),
    case("We may request your calendar events.", Collect, false, "calendar"),
    // ---- modals, adverbs ----
    case("We may also collect your contacts.", Collect, false, "contacts"),
    case("We will sometimes use your browsing history.", Use, false, "browsing history"),
    // ---- passive ----
    case("Your personal information will be used.", Use, false, "personal information"),
    case("Your location may be collected automatically.", Collect, false, "location"),
    case("Cookies are stored on your device.", Retain, false, "cookies"),
    // ---- P3 / P4 ----
    case("We are able to collect location information.", Collect, false, "location"),
    case(
        "We are allowed to access your personal information.",
        Collect,
        false,
        "personal information",
    ),
    // ---- P5 purpose ----
    case("We need your consent to access your contacts.", Collect, false, "contacts"),
    // ---- retain ----
    case("We retain your messages for thirty days.", Retain, false, "messages"),
    case("We will keep your account information as long as necessary.", Retain, false, "account"),
    case("We may store your photos on our servers.", Retain, false, "photos"),
    // ---- disclose ----
    case("We may share your device id with our partners.", Disclose, false, "device id"),
    case(
        "We will disclose your information to comply with the law.",
        Disclose,
        false,
        "information",
    ),
    case("We may transfer your data to our affiliates.", Disclose, false, "data"),
    case("We sell aggregated location data to advertisers.", Disclose, false, "location data"),
    // ---- negation forms ----
    case("We will not collect your location.", Collect, true, "location"),
    case("We do not collect your contacts.", Collect, true, "contacts"),
    case("We don't sell your personal information.", Disclose, true, "personal information"),
    case("We never share your email address.", Disclose, true, "email address"),
    case("We will never disclose your phone number to anyone.", Disclose, true, "phone number"),
    case("We are not collecting your date of birth.", Collect, true, "date"),
    case("Nothing will be collected.", Collect, true, "nothing"),
    case("No personal information will be collected.", Collect, true, "personal information"),
    case("We will not store your real phone number.", Retain, true, "real phone number"),
    case("We do not retain your sms messages.", Retain, true, "sms"),
    case("We are unable to collect your precise location.", Collect, true, "location"),
    // ---- coordination ----
    case("We collect your name, your ip address and your device id.", Collect, false, "ip address"),
    case("We will not store your real phone number, name and contacts.", Retain, true, "contacts"),
    // ---- such as / including ----
    case(
        "We collect information such as your name and your email address.",
        Collect,
        false,
        "email address",
    ),
    case("We may share data including your device id.", Disclose, false, "device id"),
    // ---- constraints ----
    case("If you enable sync, we collect your calendar events.", Collect, false, "calendar"),
    case("We collect diagnostic data when the app crashes.", Collect, false, "diagnostic data"),
];

#[test]
fn regression_corpus_analyzes_as_expected() {
    let analyzer = PolicyAnalyzer::new();
    let mut failures: Vec<String> = Vec::new();
    for c in CASES {
        let analysis = analyzer.analyze_text(c.sentence);
        let Some(s) = analysis.sentences.first() else {
            failures.push(format!("NOT USEFUL: {}", c.sentence));
            continue;
        };
        if s.category != c.category {
            failures.push(format!("CATEGORY {:?} != {:?}: {}", s.category, c.category, c.sentence));
        }
        if s.negative != c.negative {
            failures.push(format!("POLARITY {} != {}: {}", s.negative, c.negative, c.sentence));
        }
        if !s.resources().any(|r| r.contains(c.resource)) {
            failures.push(format!(
                "RESOURCE {:?} missing {:?}: {}",
                s.resources().collect::<Vec<_>>(),
                c.resource,
                c.sentence
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} cases failed:\n{}",
        failures.len(),
        CASES.len(),
        failures.join("\n")
    );
}

/// Sentences that must NOT be selected (noise rejection).
#[test]
fn noise_sentences_rejected() {
    let analyzer = PolicyAnalyzer::new();
    const NOISE: &[&str] = &[
        "This privacy policy describes our practices.",
        "Please read this policy carefully.",
        "You may contact our support team at any time.",
        "The service is provided as is.",
        "We encourage you to review this page periodically.",
        "Our website uses industry standard security.",
        "We will improve the service continuously.",
        "You can delete your account at any time.",
        "Thank you for using our app!",
    ];
    for s in NOISE {
        let analysis = analyzer.analyze_text(s);
        assert!(
            analysis.sentences.is_empty(),
            "noise selected: {s} -> {:?}",
            analysis.sentences[0].resources().collect::<Vec<_>>()
        );
    }
}
