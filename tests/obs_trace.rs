//! End-to-end observability test: export a seeded 50-app corpus, run it
//! through `ppchecker batch` with trace capture, and validate the Chrome
//! `trace_event` output — well-formed JSON, balanced `B`/`E` events per
//! thread, and the stable pipeline span names.

use ppchecker_cli::{run_batch, run_trace_check, BatchOptions};
use ppchecker_corpus::{export_dataset, small_dataset};
use std::fs;

#[test]
fn batch_trace_is_balanced_valid_json_with_stable_stage_names() {
    let dataset = small_dataset(42, 50);
    let dir = std::env::temp_dir().join(format!("ppchecker-obs-it-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    export_dataset(&dir, &dataset, 50).unwrap();
    let trace_path = dir.join("trace.json");

    let (records, metrics) = run_batch(&BatchOptions {
        jobs: 4,
        trace: Some(trace_path.clone()),
        ..BatchOptions::for_corpus_dir(&dir)
    })
    .unwrap();
    assert_eq!(records.lines().count(), 51, "50 records + 1 aggregate line");

    // The stderr summary renders the per-span quantile table.
    assert!(metrics.contains("p50") && metrics.contains("p99"), "no quantile table:\n{metrics}");
    assert!(metrics.contains("check.policy"), "no per-stage rows:\n{metrics}");
    assert!(metrics.contains("app.check"), "no per-app rows:\n{metrics}");

    let trace_json = fs::read_to_string(&trace_path).unwrap();
    let check = ppchecker_obs::trace::validate(&trace_json).expect("trace must validate");
    assert!(check.events > 0, "trace captured no events");
    assert_eq!(check.spans * 2, check.events, "every span is one B/E pair");
    for required in
        ["app.check", "check.policy", "check.description", "check.static", "check.matching"]
    {
        assert!(check.names.contains(required), "missing span {required}: {:?}", check.names);
    }
    assert!(check.max_depth >= 2, "spans must nest (app.check above check.*)");
    assert!(check.threads >= 1, "at least one worker thread traced");

    // The CLI validator subcommand agrees.
    let report = run_trace_check(&trace_json).unwrap();
    assert!(report.contains("trace OK"), "unexpected validator output: {report}");

    let _ = fs::remove_dir_all(&dir);
}
