//! Integration test for the Fig. 12 pattern-selection experiment.

use ppchecker_corpus::fig12::{best_n, fig12_corpus, run_sweep};

#[test]
fn sweep_reproduces_fig12() {
    let corpus = fig12_corpus();
    let sweep = run_sweep(&corpus, 10);

    // The false-negative rate is non-increasing in n.
    for w in sweep.windows(2) {
        assert!(w[1].fn_rate <= w[0].fn_rate + 1e-12);
    }
    // The false-positive rate is non-decreasing in n.
    for w in sweep.windows(2) {
        assert!(w[1].fp_rate + 1e-12 >= w[0].fp_rate);
    }

    // The paper's operating point: n = 230 with 88.0% detection (12% FN)
    // and 2.8% FP.
    let best = best_n(&sweep);
    assert_eq!(best.n, 230);
    assert!((best.fn_rate - 0.120).abs() < 1e-9);
    assert!((best.fp_rate - 0.028).abs() < 1e-9);
}

#[test]
fn too_few_patterns_miss_most_sentences() {
    let corpus = fig12_corpus();
    let sweep = run_sweep(&corpus, 10);
    let first = sweep.first().unwrap();
    assert!(first.fn_rate > 0.5, "n={} fn={}", first.n, first.fn_rate);
}
