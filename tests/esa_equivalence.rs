//! Verdict-level equivalence of the CSR ESA kernel over the golden corpus.
//!
//! The PR-3 kernel adds norm-bound pruning, a symbol-pair verdict memo and
//! sharded vector-cache locks. All three must be invisible at the verdict
//! level: this test drives every resource pair the 50-app golden corpus
//! actually asks about through the pruned + memoized predicate and checks
//! it against the exact cosine comparison — twice, so the second round is
//! answered from the warm memo. A warm-state engine re-run must also
//! aggregate identically to the cold run.

use ppchecker_core::PPChecker;
use ppchecker_corpus::small_dataset;
use ppchecker_engine::Engine;
use ppchecker_esa::{Interpreter, SIMILARITY_THRESHOLD};
use ppchecker_nlp::{intern, Symbol};
use ppchecker_policy::PolicyAnalyzer;
use std::collections::BTreeSet;

/// Every distinct resource symbol mentioned across the 50-app corpus
/// policies, plus the canonical private-information phrases the detectors
/// compare them against.
fn corpus_resource_symbols() -> Vec<Symbol> {
    let dataset = small_dataset(42, 50);
    let analyzer = PolicyAnalyzer::new();
    let mut syms: BTreeSet<Symbol> = BTreeSet::new();
    for app in &dataset.apps {
        let analysis = analyzer.analyze_html(&app.input.policy_html);
        syms.extend(analysis.mentioned_resource_symbols());
    }
    for phrase in ppchecker_nlp::intern::SENSITIVE_RESOURCES {
        syms.insert(intern(phrase));
    }
    syms.into_iter().collect()
}

#[test]
fn pruned_memoized_verdicts_equal_exact_similarity_over_golden_corpus() {
    let esa = Interpreter::shared();
    let syms = corpus_resource_symbols();
    assert!(syms.len() >= 20, "corpus should mention a rich resource vocabulary");
    let mut verdicts = 0usize;
    for round in 0..2 {
        for &a in &syms {
            for &b in &syms {
                let exact = esa.similarity_sym(a, b) >= SIMILARITY_THRESHOLD;
                assert_eq!(
                    esa.same_thing_sym(a, b),
                    exact,
                    "round {round}: verdict diverged for ({}, {})",
                    a.as_str(),
                    b.as_str()
                );
                verdicts += 1;
            }
        }
    }
    assert!(verdicts > 0);
    let (memo_hits, _) = esa.pair_memo_stats();
    assert!(memo_hits > 0, "second round must be served from the pair memo");
}

#[test]
fn warm_memo_engine_rerun_is_identical_to_cold_run() {
    let dataset = small_dataset(42, 50);
    let engine = Engine::new(PPChecker::new()).with_jobs(2);
    let cold = engine.run(dataset.iter_apps().cloned());
    // Second run: the process-wide vector cache and pair memo are warm.
    let warm = engine.run(dataset.iter_apps().cloned());
    assert_eq!(cold.aggregate(), warm.aggregate());
    for (c, w) in cold.records.iter().zip(warm.records.iter()) {
        assert_eq!(c.package, w.package);
        assert_eq!(
            format!("{:?}", c.outcome),
            format!("{:?}", w.outcome),
            "record {} diverged between cold and warm ESA state",
            c.index
        );
    }
}
