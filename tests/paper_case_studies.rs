//! Integration tests reproducing the paper's named case studies across
//! crate boundaries (policy + description + static analysis + core).

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission, PrivateInfo};
use ppchecker_core::{AppInput, PPChecker};
use ppchecker_policy::VerbCategory;

/// §II-B (1) / Fig. 2 — com.dooing.dooing: the description advertises
/// location-aware tasks and the class `com.dooing.dooing.ee` calls
/// `getLatitude()`/`getLongitude()`, but the policy never mentions
/// location.
#[test]
fn dooing_incomplete_policy() {
    let mut manifest = Manifest::new("com.dooing.dooing");
    manifest.add_permission(Permission::AccessFineLocation);
    manifest.add_component(ComponentKind::Activity, "com.dooing.dooing.Main", true);
    let dex = Dex::builder()
        .class("com.dooing.dooing.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |m| {
                m.invoke_virtual("com.dooing.dooing.ee", "locate", &[0], None);
            });
        })
        .class("com.dooing.dooing.ee", |c| {
            c.method("locate", 1, |m| {
                m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                m.invoke_virtual("android.location.Location", "getLongitude", &[0], Some(2));
            });
        })
        .build();
    let app = AppInput {
        package: "com.dooing.dooing".to_string(),
        policy_html: "<p>We may collect your email address. We store your account name.</p>"
            .to_string(),
        description: "Location aware tasks will help you to utilize your field force in \
                      optimum way."
            .to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let report = PPChecker::new().check_app(&app).unwrap();
    assert!(report.is_incomplete());
    assert!(report.missed_via_description().any(|m| m.info == PrivateInfo::Location));
    assert!(report.missed_via_code().any(|m| m.info == PrivateInfo::Location));
    assert!(!report.is_incorrect());
}

/// §II-B (2) / §V-D — com.easyxapp.secret: the policy declares "we will
/// not store your real phone number, name and contacts", but the code
/// queries the contacts provider and writes the result to the log.
#[test]
fn easyxapp_incorrect_policy() {
    let mut manifest = Manifest::new("com.easyxapp.secret");
    manifest.add_permission(Permission::ReadContacts);
    manifest.add_component(ComponentKind::Activity, "com.easyxapp.secret.Main", true);
    let dex = Dex::builder()
        .class("com.easyxapp.secret.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |m| {
                m.field_get(
                    "android.provider.ContactsContract$CommonDataKinds$Phone",
                    "CONTENT_URI",
                    1,
                );
                m.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
                m.invoke_static("android.util.Log", "i", &[2], None);
            });
        })
        .build();
    let app = AppInput {
        package: "com.easyxapp.secret".to_string(),
        policy_html: "<p>We may collect your email address.</p>\
                      <p>We will not store your real phone number, name and contacts.</p>"
            .to_string(),
        description: "Share secrets anonymously with people around you.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let report = PPChecker::new().check_app(&app).unwrap();
    assert!(report.is_incorrect());
    assert!(report
        .incorrect
        .iter()
        .any(|f| f.info == PrivateInfo::Contact && f.category == VerbCategory::Retain));
}

/// §V-D — hko.MyObservatory_v1_0: "Users locations would not be
/// transmitted out from the app", yet a path from `getLatitude()` to
/// `Log.i()` exists.
#[test]
fn myobservatory_incorrect_policy() {
    let mut manifest = Manifest::new("hko.MyObservatory_v1_0");
    manifest.add_permission(Permission::AccessFineLocation);
    manifest.add_component(ComponentKind::Activity, "hko.MyObservatory_v1_0.Main", true);
    let dex = Dex::builder()
        .class("hko.MyObservatory_v1_0.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |m| {
                m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                m.invoke_static("android.util.Log", "i", &[1], None);
            });
        })
        .build();
    let app = AppInput {
        package: "hko.MyObservatory_v1_0".to_string(),
        policy_html: "<p>We may collect your location for the weather forecast.</p>\
                      <p>We will not transmit your location out from the app.</p>"
            .to_string(),
        description: "The official weather app.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let report = PPChecker::new().check_app(&app).unwrap();
    assert!(report.is_incorrect());
    assert!(report.incorrect.iter().any(|f| f.info == PrivateInfo::Location));
}

/// Fig. 3 — com.imangi.templerun2 ↔ Unity3d: the app's policy denies
/// using/collecting location; the embedded Unity3d lib's policy declares
/// it will receive location information.
#[test]
fn templerun_inconsistent_policy() {
    let mut manifest = Manifest::new("com.imangi.templerun2");
    manifest.add_component(ComponentKind::Activity, "com.imangi.templerun2.Main", true);
    let dex = Dex::builder()
        .class("com.imangi.templerun2.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |_| {});
        })
        .class("com.unity3d.player.UnityPlayer", |c| {
            c.method("init", 1, |_| {});
        })
        .build();
    let app = AppInput {
        package: "com.imangi.templerun2".to_string(),
        policy_html: "<p>We do not collect your location information.</p>".to_string(),
        description: "Run for your life in the sequel to the smash hit!".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let mut checker = PPChecker::new();
    checker.register_lib_policy(
        "unity3d",
        "<p>We may receive your location information and device identifiers.</p>",
    );
    let report = checker.check_app(&app).unwrap();
    assert!(report.is_inconsistent());
    assert_eq!(report.inconsistencies[0].lib_id, "unity3d");
    assert_eq!(report.inconsistencies[0].category, VerbCategory::Collect);
}

/// §IV-C — com.shortbreakstudios.HammerTime: a disclaimer ("we are not
/// responsible for the privacy practices of those sites") suppresses
/// app↔lib inconsistency findings.
#[test]
fn hammertime_disclaimer_suppresses_inconsistency() {
    let mut manifest = Manifest::new("com.shortbreakstudios.HammerTime");
    manifest.add_component(ComponentKind::Activity, "com.shortbreakstudios.HammerTime.Main", true);
    let dex = Dex::builder()
        .class("com.shortbreakstudios.HammerTime.Main", |c| {
            c.method("onCreate", 1, |_| {});
        })
        .class("com.unity3d.player.UnityPlayer", |c| {
            c.method("init", 1, |_| {});
        })
        .build();
    let app = AppInput {
        package: "com.shortbreakstudios.HammerTime".to_string(),
        policy_html: "<p>We encourage you to review the privacy practices of these third \
                      parties before disclosing any personally identifiable information, as \
                      we are not responsible for the privacy practices of those sites.</p>\
                      <p>We do not collect your location information.</p>"
            .to_string(),
        description: "Stop! Hammer time.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let mut checker = PPChecker::new();
    checker.register_lib_policy("unity3d", "<p>We may receive your location information.</p>");
    let report = checker.check_app(&app).unwrap();
    assert!(report.has_disclaimer);
    assert!(!report.is_inconsistent());
}

/// Fig. 9 — com.qisiemoji.inputmethod: `getInstalledPackages()` flows to
/// `Log.e()`, so the app-list information is *retained*.
#[test]
fn qisiemoji_retains_app_list() {
    let mut manifest = Manifest::new("com.qisiemoji.inputmethod");
    manifest.add_permission(Permission::GetTasks);
    manifest.add_component(ComponentKind::Activity, "com.qisiemoji.inputmethod.Main", true);
    let dex = Dex::builder()
        .class("com.qisiemoji.inputmethod.Main", |c| {
            c.method("onCreate", 1, |m| {
                m.invoke_virtual(
                    "android.content.pm.PackageManager",
                    "getInstalledPackages",
                    &[0],
                    Some(5),
                );
                m.invoke_virtual("java.lang.StringBuilder", "append", &[6, 5], Some(7));
                m.invoke_static("android.util.Log", "e", &[7], None);
            });
        })
        .build();
    let report = ppchecker_static::analyze(&Apk::new(manifest, dex)).unwrap();
    assert!(report.retain_code().contains(&PrivateInfo::AppList));
    assert_eq!(report.retained[0].sink, ppchecker_static::SinkKind::Log);
}

/// §V-E — the StaffMark ↔ AdMob ESA false positive: generic "information"
/// is (incorrectly) matched to "personal information".
#[test]
fn staffmark_esa_false_positive_reproduced() {
    let mut manifest = Manifest::new("com.staffmark.app");
    manifest.add_component(ComponentKind::Activity, "com.staffmark.app.Main", true);
    let dex = Dex::builder()
        .class("com.staffmark.app.Main", |c| {
            c.method("onCreate", 1, |_| {});
        })
        .class("com.google.android.gms.ads.AdView", |c| {
            c.method("loadAd", 1, |_| {});
        })
        .build();
    let app = AppInput {
        package: "com.staffmark.app".to_string(),
        policy_html: "<p>We do not transmit that information over the internet.</p>".to_string(),
        description: "Find your next job.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };
    let mut checker = PPChecker::new();
    checker
        .register_lib_policy("admob", "<p>We will share personal information with companies.</p>");
    let report = checker.check_app(&app).unwrap();
    // The detector flags it — matching the paper's false positive.
    assert!(report.is_inconsistent());
}
