//! End-to-end incremental re-analysis: a versioned corpus flows through
//! the engine over one persistent artifact store, across simulated
//! process restarts.
//!
//! This is the issue's acceptance scenario in miniature: a cold batch
//! populates the store; a warm batch over the unchanged snapshot skips
//! every app and reproduces the same records; the next release (policy
//! drift, permission adds, lib swaps on a fraction of apps) re-analyzes
//! only the mutated apps; and the verdict delta between releases is
//! confined to the changed packages.

use ppchecker_corpus::{versioned_history, CorpusVersion, VersionedHistory};
use ppchecker_engine::{diff_batches, BatchReport, Engine};
use ppchecker_store::Store;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppsuite-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh engine per call simulates a process restart: only the on-disk
/// store carries state across runs.
fn run_version(
    history: &VersionedHistory,
    version: &CorpusVersion,
    dir: &PathBuf,
) -> (BatchReport, u64) {
    let store = Arc::new(Store::open(dir).expect("open store"));
    let engine = Engine::new(history.make_checker()).with_store(Arc::clone(&store));
    let batch = engine.run(version.apps.iter().map(|a| a.input.clone()));
    assert_eq!(batch.metrics.errors, 0, "corpus analyzes cleanly");
    store.flush_index();
    let skipped = batch.metrics.store.map(|s| s.apps_skipped).unwrap_or(0);
    (batch, skipped)
}

#[test]
fn versioned_corpus_reanalyzes_only_what_changed() {
    let apps = 40;
    let history = versioned_history(17, apps, 3, 15);
    let dir = scratch_store("versioned");

    // Cold: everything is computed and persisted.
    let (cold, skipped) = run_version(&history, &history.versions[0], &dir);
    assert_eq!(skipped, 0, "cold run computes every app");

    // Warm, after a "restart": every app replays, records identical.
    let (warm, skipped) = run_version(&history, &history.versions[0], &dir);
    assert_eq!(skipped as usize, apps, "unchanged snapshot skips every app");
    assert_eq!(cold.records.len(), warm.records.len());
    for (a, b) in cold.records.iter().zip(warm.records.iter()) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "replayed record differs");
    }
    assert!(diff_batches(&cold, &warm).is_quiet(), "warm replay must not move verdicts");

    // Next release: only the mutated apps pay for analysis.
    let v1 = &history.versions[1];
    let changed = v1.changes.len();
    assert!(changed > 0, "15% of {apps} apps should change");
    let (next, skipped) = run_version(&history, v1, &dir);
    assert_eq!(
        skipped as usize,
        apps - changed,
        "incremental run re-analyzes exactly the changed apps"
    );

    // The verdict delta is confined to changed packages.
    let delta = diff_batches(&cold, &next);
    assert_eq!(delta.unchanged + delta.changed(), apps, "same population, no adds/removes");
    assert_eq!(delta.added(), 0);
    assert_eq!(delta.removed(), 0);
    assert!(delta.changed() <= changed, "verdicts may only move on mutated apps");
    let mutated: Vec<&str> = v1.changes.iter().map(|c| c.package.as_str()).collect();
    for d in &delta.deltas {
        assert!(mutated.contains(&d.package.as_str()), "{} moved but was not mutated", d.package);
    }

    // One more release over the same store still only pays for changes.
    let v2 = &history.versions[2];
    let (_, skipped) = run_version(&history, v2, &dir);
    let changed_v2 = v2.changes.len();
    assert_eq!(skipped as usize, apps - changed_v2, "version 2 re-analyzes only its changes");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_corruption_between_releases() {
    let apps = 12;
    let history = versioned_history(23, apps, 2, 20);
    let dir = scratch_store("corrupt");

    let (cold, _) = run_version(&history, &history.versions[0], &dir);

    // Vandalize every report record on disk.
    let objects = dir.join("objects").join("report");
    let mut truncated = 0;
    for shard in std::fs::read_dir(&objects).expect("report shards") {
        for rec in std::fs::read_dir(shard.expect("shard").path()).expect("records") {
            let path = rec.expect("record").path();
            let bytes = std::fs::read(&path).expect("read record");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate record");
            truncated += 1;
        }
    }
    assert_eq!(truncated, apps, "one report record per app");

    // The next run treats every defect as a miss and recomputes.
    let (recovered, skipped) = run_version(&history, &history.versions[0], &dir);
    assert_eq!(skipped, 0, "corrupt records must not replay");
    assert!(diff_batches(&cold, &recovered).is_quiet(), "recompute reproduces the verdicts");

    // And the store is healthy again: a further run replays everything.
    let (_, skipped) = run_version(&history, &history.versions[0], &dir);
    assert_eq!(skipped as usize, apps, "rewritten records replay cleanly");

    let _ = std::fs::remove_dir_all(&dir);
}
