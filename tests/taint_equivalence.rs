//! Leak-level equivalence of the dense-ID taint kernel over the full
//! paper corpus.
//!
//! The PR-4 kernel replaces the reference taint engine's hash-map
//! fixpoint with interned labels, bitset taint words and a dirty-bit
//! worklist, and adds a cross-app library summary cache. All of it must
//! be invisible at the leak level: every app of the 1,197-app corpus is
//! analyzed by the reference engine and by the kernel — cold and again
//! with a shared warm summary cache — and the leak vectors must be
//! byte-identical.

use ppchecker_corpus::paper_dataset;
use ppchecker_static::apg::Apg;
use ppchecker_static::{reach, taint, TaintSummaryCache};

#[test]
fn kernel_leaks_match_reference_across_full_corpus() {
    let dataset = paper_dataset(42);
    let cache = TaintSummaryCache::new();
    let mut apps = 0usize;
    let mut leaky = 0usize;
    for app in dataset.iter_apps() {
        let Ok(apg) = Apg::build(&app.apk) else {
            continue; // adversarially corrupted dex: nothing to compare
        };
        let methods = reach::reachable_methods(&apg);
        let reference = taint::analyze_reference(&apg, &methods);
        let cold = taint::analyze(&apg, &methods);
        assert_eq!(cold, reference, "cold kernel diverged for {}", app.package);
        let warm = taint::analyze_cached(&apg, &methods, Some(&cache));
        assert_eq!(warm, reference, "summary-warm kernel diverged for {}", app.package);
        apps += 1;
        if !reference.is_empty() {
            leaky += 1;
        }
    }
    assert!(apps >= 1000, "corpus should analyze ≥ 1000 apps, got {apps}");
    assert!(leaky > 0, "corpus should contain leaking apps");
    assert!(cache.hits() > 0, "shared libs must be served from the summary cache");
    assert!(cache.entries() > 0, "at least one lib summarized");
}
