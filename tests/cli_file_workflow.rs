//! End-to-end file workflow: export a corpus app to disk, audit it through
//! the CLI code paths, and exercise the pack/unpack round trip — the way a
//! downstream user without the Rust API would drive PPChecker.

use ppchecker_cli::{run_check, run_pack, run_unpack, CheckOptions};
use ppchecker_corpus::{export_app, small_dataset};
use std::fs;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppchecker-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn exported_incomplete_app_flagged_through_cli() {
    let dataset = small_dataset(42, 70);
    let dir = temp_dir("cli");
    // App 64 is code-only incomplete.
    export_app(&dir, &dataset.apps[64]).unwrap();

    let out = run_check(&CheckOptions {
        policy_html: fs::read_to_string(dir.join("policy.html")).unwrap(),
        description: fs::read_to_string(dir.join("description.txt")).unwrap(),
        manifest_text: fs::read_to_string(dir.join("manifest.txt")).unwrap(),
        dex_text: fs::read_to_string(dir.join("app.dex")).unwrap(),
        suggest: true,
        ..CheckOptions::default()
    })
    .unwrap();
    assert!(out.contains("incomplete: true"), "{out}");
    assert!(out.contains("suggested fixes:"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn json_output_is_machine_readable() {
    let dataset = small_dataset(42, 70);
    let dir = temp_dir("json");
    export_app(&dir, &dataset.apps[66]).unwrap(); // incorrect app

    let out = run_check(&CheckOptions {
        policy_html: fs::read_to_string(dir.join("policy.html")).unwrap(),
        description: fs::read_to_string(dir.join("description.txt")).unwrap(),
        manifest_text: fs::read_to_string(dir.join("manifest.txt")).unwrap(),
        dex_text: fs::read_to_string(dir.join("app.dex")).unwrap(),
        json: true,
        ..CheckOptions::default()
    })
    .unwrap();
    assert!(out.trim_start().starts_with('{'));
    assert!(out.contains("\"incorrect\":true"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pack_then_unpack_preserves_exported_dex() {
    let dataset = small_dataset(42, 5);
    let dir = temp_dir("pack");
    export_app(&dir, &dataset.apps[2]).unwrap();
    let dex_text = fs::read_to_string(dir.join("app.dex")).unwrap();
    let blob = run_pack(&dex_text, 0x42).unwrap();
    let back = run_unpack(&blob).unwrap();
    let a = ppchecker_apk::packer::deserialize(&dex_text).unwrap();
    let b = ppchecker_apk::packer::deserialize(&back).unwrap();
    assert_eq!(a, b);
    let _ = fs::remove_dir_all(&dir);
}
