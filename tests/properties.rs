//! Property-based tests (proptest) over the core data structures and
//! invariants of the pipeline.

use ppchecker_apk::{packer, Dex, Insn, InvokeKind};
use ppchecker_esa::Interpreter;
use ppchecker_nlp::{depparse, intern, resolve, sentence, token};
use proptest::prelude::*;

// ---------- interning ----------

proptest! {
    /// Interning round-trips: `resolve(intern(s)) == s` and re-interning
    /// the resolved text yields the same symbol.
    #[test]
    fn intern_resolve_roundtrip(s in ".{0,60}") {
        let sym = intern(&s);
        prop_assert_eq!(resolve(sym), s.as_str());
        prop_assert_eq!(intern(resolve(sym)), sym);
    }

    /// Symbol equality coincides with string equality: two strings intern
    /// to the same symbol iff they are byte-identical.
    #[test]
    fn symbol_equality_is_string_equality(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        prop_assert_eq!(intern(&a) == intern(&b), a == b);
    }
}

// ---------- NLP ----------

proptest! {
    /// The tokenizer never panics and never emits whitespace-bearing or
    /// empty tokens.
    #[test]
    fn tokenizer_is_total_and_clean(s in ".{0,200}") {
        let toks = token::tokenize(&s);
        for t in &toks {
            prop_assert!(!t.text().is_empty());
            prop_assert!(!t.text().chars().any(char::is_whitespace));
            prop_assert!(t.start <= s.len());
        }
    }

    /// Sentence splitting never loses alphanumeric content (modulo the
    /// deliberate non-ASCII stripping and lowercasing).
    #[test]
    fn splitter_preserves_ascii_alnum(s in "[a-zA-Z0-9 .,;:!?]{0,300}") {
        let sents = sentence::split_sentences(&s);
        let kept: String = sents
            .join(" ")
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        let original: String = s
            .to_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        prop_assert_eq!(kept, original);
    }

    /// After enumeration repair, no sentence but the last ends with a
    /// list-continuation mark.
    #[test]
    fn repair_leaves_no_dangling_separators(s in "[a-z ;,:.]{0,300}") {
        let sents = sentence::split_sentences(&s);
        for sent in sents.iter().rev().skip(1) {
            let t = sent.trim_end();
            prop_assert!(
                !(t.ends_with(';') || t.ends_with(',') || t.ends_with(':')),
                "dangling separator in {sent:?}"
            );
        }
    }

    /// The dependency parser is total and all edges reference real tokens.
    #[test]
    fn parser_edges_are_well_formed(s in "[a-zA-Z ,.';]{0,150}") {
        let p = depparse::parse(&s);
        let n = p.tokens.len();
        if let Some(r) = p.root {
            prop_assert!(r < n);
        }
        for d in &p.deps {
            prop_assert!(d.head < n && d.dep < n);
            prop_assert_ne!(d.head, d.dep);
        }
        for c in &p.chunks {
            prop_assert!(c.start <= c.head && c.head < c.end && c.end <= n);
        }
    }

    /// Verb lemmatization is idempotent.
    #[test]
    fn verb_lemmatization_idempotent(w in "[a-z]{1,12}") {
        let once = ppchecker_nlp::lemma::lemmatize_verb(&w);
        let twice = ppchecker_nlp::lemma::lemmatize_verb(&once);
        prop_assert_eq!(once, twice);
    }
}

// ---------- ESA ----------

proptest! {
    /// Similarity stays in [0, 1] and is symmetric for any pair of texts.
    #[test]
    fn esa_similarity_bounded_and_symmetric(
        a in "[a-z ]{0,60}",
        b in "[a-z ]{0,60}",
    ) {
        let esa = Interpreter::shared();
        let ab = esa.similarity(&a, &b);
        let ba = esa.similarity(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }
}

// ---------- APK / packer ----------

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        ("[ -~]{0,40}", 0u32..16).prop_map(|(v, r)| Insn::ConstString { dst: r, value: v }),
        (0u32..16, 0u32..16).prop_map(|(d, s)| Insn::Move { dst: d, src: s }),
        ("[a-zA-Z.$]{1,30}", "[a-zA-Z]{1,15}", proptest::collection::vec(0u32..16, 0..4)).prop_map(
            |(c, m, args)| Insn::Invoke {
                kind: InvokeKind::Virtual,
                class: c,
                method: m,
                args,
                dst: None,
            }
        ),
        ("[a-zA-Z.]{1,20}", "[a-zA-Z]{1,12}", 0u32..16).prop_map(|(c, f, r)| Insn::FieldPut {
            class: c,
            field: f,
            src: r
        }),
        (0u32..16).prop_map(|r| Insn::Return { src: Some(r) }),
        Just(Insn::Nop),
    ]
}

fn arb_dex() -> impl Strategy<Value = Dex> {
    proptest::collection::vec(
        (
            "[a-z][a-z.]{0,20}",
            proptest::collection::vec(
                ("[a-z][a-zA-Z]{0,10}", proptest::collection::vec(arb_insn(), 0..8)),
                0..4,
            ),
        ),
        0..4,
    )
    .prop_map(|classes| {
        let mut b = Dex::builder();
        for (i, (name, methods)) in classes.into_iter().enumerate() {
            // Guarantee distinct class names.
            let name = format!("{name}{i}");
            b = b.class(&name, |c| {
                for (j, (mname, insns)) in methods.into_iter().enumerate() {
                    let mname = format!("{mname}{j}");
                    c.method(&mname, 1, |mb| {
                        for insn in insns {
                            mb.push(insn);
                        }
                    });
                }
            });
        }
        b.build()
    })
}

proptest! {
    /// Serialization round-trips arbitrary dex files.
    #[test]
    fn dex_serialization_round_trips(dex in arb_dex()) {
        let text = packer::serialize(&dex);
        let back = packer::deserialize(&text).expect("own output must parse");
        prop_assert_eq!(dex, back);
    }

    /// Packing + unpacking is the identity for any key.
    #[test]
    fn packer_round_trips(dex in arb_dex(), key: u8) {
        let blob = packer::pack(&dex, key);
        let back = packer::unpack(&blob).expect("own blob must unpack");
        prop_assert_eq!(dex, back);
    }

    /// Unpacking never panics on arbitrary garbage.
    #[test]
    fn unpack_is_total(blob in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = packer::unpack(&blob);
    }
}

// ---------- static analysis ----------

proptest! {
    /// The APG builds for any generated dex and reachability stays within
    /// the node set.
    #[test]
    fn apg_builds_for_arbitrary_dex(dex in arb_dex()) {
        let apk = ppchecker_apk::Apk::new(ppchecker_apk::Manifest::new("com.x"), dex);
        let report = ppchecker_static::analyze(&apk).expect("plain dex");
        prop_assert!(report.reachable_method_count <= 1000);
    }
}

// ---------- policy pipeline ----------

proptest! {
    /// The policy analyzer is total over arbitrary HTML-ish input.
    #[test]
    fn policy_analyzer_is_total(s in "[a-zA-Z <>/&;.,]{0,300}") {
        let analyzer = ppchecker_policy::PolicyAnalyzer::new();
        let analysis = analyzer.analyze_html(&s);
        prop_assert!(analysis.sentences.len() <= analysis.total_sentences);
    }

    /// Every extracted resource is non-empty and every sentence has at
    /// least one resource (pipeline filter invariant).
    #[test]
    fn useful_sentences_always_carry_resources(s in "[a-z .,]{0,200}") {
        let analyzer = ppchecker_policy::PolicyAnalyzer::new();
        for sent in &analyzer.analyze_text(&s).sentences {
            prop_assert!(!sent.resource_symbols().is_empty());
            for r in sent.resources() {
                prop_assert!(!r.is_empty());
            }
        }
    }
}

// ---------- HTML extraction ----------

proptest! {
    /// The HTML extractor is total and its output never contains tag
    /// delimiters from well-formed markup.
    #[test]
    fn html_extractor_is_total(s in "[a-zA-Z <>/&;=\"']{0,300}") {
        let _ = ppchecker_policy::html::extract_text(&s);
    }

    /// Text wrapped in simple tags always survives extraction.
    #[test]
    fn wrapped_text_survives(words in "[a-z]{1,10}( [a-z]{1,10}){0,5}") {
        let html = format!("<html><body><p>{words}</p></body></html>");
        let text = ppchecker_policy::html::extract_text(&html);
        prop_assert!(text.contains(&words));
    }
}

// ---------- manifest text format ----------

proptest! {
    /// Manifest parsing is total over arbitrary line soup.
    #[test]
    fn manifest_parse_is_total(s in "([a-z ]{0,30}\n){0,10}") {
        let _ = ppchecker_apk::Manifest::from_text(&s);
    }

    /// Any manifest built from generated parts round-trips through the
    /// text format.
    #[test]
    fn manifest_text_round_trips(
        package in "[a-z]{2,8}(\\.[a-z]{2,8}){1,3}",
        perms in proptest::collection::vec(0usize..8, 0..5),
        classes in proptest::collection::vec("[A-Z][a-zA-Z]{1,10}", 0..4),
    ) {
        use ppchecker_apk::{ComponentKind, Manifest, Permission};
        const PERMS: &[Permission] = &[
            Permission::AccessFineLocation,
            Permission::Camera,
            Permission::ReadContacts,
            Permission::GetAccounts,
            Permission::ReadCalendar,
            Permission::RecordAudio,
            Permission::ReadSms,
            Permission::Internet,
        ];
        let mut m = Manifest::new(&package);
        for &p in &perms {
            m.add_permission(PERMS[p].clone());
        }
        for (i, c) in classes.iter().enumerate() {
            m.add_component(ComponentKind::Activity, &format!("{package}.{c}"), i == 0);
        }
        let again = Manifest::from_text(&m.to_text()).expect("own output parses");
        prop_assert_eq!(m, again);
    }
}

// ---------- MinHash (boilerplate detection) ----------

/// Interns a generated word list into the token stream MinHash consumes.
fn intern_words(words: &[String]) -> Vec<ppchecker_nlp::Symbol> {
    words.iter().map(|w| intern(w)).collect()
}

proptest! {
    /// The 64-slot MinHash estimate tracks the exact shingle Jaccard:
    /// bounded, symmetric, exact on identical streams, and within a
    /// statistical band of the true value on arbitrary pairs.
    #[test]
    fn minhash_estimate_tracks_exact_jaccard(
        a in proptest::collection::vec("[a-e]{1,3}", 4..40),
        b in proptest::collection::vec("[a-e]{1,3}", 4..40),
    ) {
        use ppchecker_core::minhash::{exact_jaccard, signature, similarity};
        let (ta, tb) = (intern_words(&a), intern_words(&b));
        let (sa, sb) = (signature(&ta), signature(&tb));
        let est = similarity(&sa, &sb);
        let exact = exact_jaccard(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&est));
        prop_assert_eq!(similarity(&sb, &sa), est);
        // 64 independent min-hash slots: the estimator is a binomial
        // mean with σ ≤ 1/16, so 0.35 is a > 5σ band — flaky only if
        // the estimator is actually broken.
        prop_assert!(
            (est - exact).abs() <= 0.35,
            "estimate {} too far from exact {}", est, exact,
        );
    }

    /// A stream is always a perfect duplicate of itself, and two streams
    /// over disjoint alphabets share nothing.
    #[test]
    fn minhash_identity_and_disjointness(
        a in proptest::collection::vec("[a-c]{1,3}", 4..30),
        b in proptest::collection::vec("[x-z]{1,3}", 4..30),
    ) {
        use ppchecker_core::minhash::{exact_jaccard, signature, similarity};
        let (ta, tb) = (intern_words(&a), intern_words(&b));
        prop_assert_eq!(similarity(&signature(&ta), &signature(&ta)), 1.0);
        prop_assert_eq!(exact_jaccard(&ta, &ta), 1.0);
        prop_assert_eq!(exact_jaccard(&ta, &tb), 0.0);
        // Disjoint shingle sets can only collide through a 64-bit hash
        // collision; the estimate must sit at (or indistinguishably
        // near) zero.
        prop_assert!(similarity(&signature(&ta), &signature(&tb)) < 0.1);
    }
}
