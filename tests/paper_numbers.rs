//! End-to-end reproduction test: runs the full PPChecker pipeline over the
//! calibrated 1,197-app corpus and asserts every statistic of the paper's
//! evaluation section (§V).

use ppchecker_apk::Permission;
use ppchecker_corpus::{evaluate, paper_dataset};

#[test]
fn full_dataset_reproduces_every_paper_statistic() {
    let dataset = paper_dataset(42);
    let ev = evaluate(&dataset);

    // §V-A: dataset.
    assert_eq!(ev.total_apps, 1197);
    assert_eq!(ev.apps_with_libs, 879); // 73% embed ≥1 lib

    // §V-C / Table III: incomplete via description.
    assert_eq!(ev.incomplete_desc_flagged, 64);
    let t3 = |p: Permission| ev.table3.get(&p).copied().unwrap_or(0);
    assert_eq!(t3(Permission::AccessCoarseLocation), 14);
    assert_eq!(t3(Permission::AccessFineLocation), 19);
    assert_eq!(t3(Permission::Camera), 6);
    assert_eq!(t3(Permission::GetAccounts), 11);
    assert_eq!(t3(Permission::ReadCalendar), 2);
    assert_eq!(t3(Permission::ReadContacts), 12);
    assert_eq!(t3(Permission::WriteContacts), 1);

    // §V-C / Fig. 13: incomplete via code.
    assert_eq!(ev.incomplete_code_flagged, 195);
    assert_eq!(ev.incomplete_code_tp, 180);
    assert_eq!(ev.incomplete_code_fp, 15);
    assert_eq!(ev.missed_records, 234);
    assert_eq!(ev.retained_records, 32);
    // Location is the most commonly missed information.
    let max_info = ev.fig13.iter().max_by_key(|(_, &c)| c).unwrap();
    assert_eq!(*max_info.0, ppchecker_apk::PrivateInfo::Location);

    // §V-D: incorrect policies.
    assert_eq!(ev.incorrect_desc_flagged, 2);
    assert_eq!(ev.incorrect_code_flagged, 6);
    assert_eq!(ev.incorrect_tp, 4);
    assert_eq!(ev.incorrect_fp, 2);

    // §V-E / Table IV: inconsistent policies.
    assert_eq!(ev.cur.flagged, 46);
    assert_eq!(ev.cur.tp, 41);
    assert_eq!(ev.cur.fp, 5);
    assert!((ev.cur.precision() - 0.891).abs() < 0.001);
    assert_eq!(ev.cur.sample_detected, 11);
    assert_eq!(ev.cur.sample_truth, 12);
    assert!((ev.cur.recall() - 0.917).abs() < 0.001);
    assert!((ev.cur.f1() - 0.904).abs() < 0.001);

    assert_eq!(ev.disclose.flagged, 43);
    assert_eq!(ev.disclose.tp, 39);
    assert_eq!(ev.disclose.fp, 4);
    assert!((ev.disclose.precision() - 0.907).abs() < 0.001);
    assert_eq!(ev.disclose.sample_detected, 12);
    assert_eq!(ev.disclose.sample_truth, 13);
    assert!((ev.disclose.recall() - 0.923).abs() < 0.001);
    assert!((ev.disclose.f1() - 0.915).abs() < 0.001);

    // §V-F: summary.
    assert_eq!(ev.inconsistent_apps, 75);
    assert_eq!(ev.incomplete_apps, 222);
    assert_eq!(ev.problem_apps, 282);
    assert!((ev.problem_rate() - 0.236).abs() < 0.001);
}

#[test]
fn statistics_are_seed_stable() {
    // The planted problems are index-based; text phrasing varies with the
    // seed but the detected statistics must not.
    let ev1 = evaluate(&paper_dataset(7));
    let ev2 = evaluate(&paper_dataset(1234));
    assert_eq!(ev1.problem_apps, ev2.problem_apps);
    assert_eq!(ev1.incomplete_code_tp, ev2.incomplete_code_tp);
    assert_eq!(ev1.cur.flagged, ev2.cur.flagged);
    assert_eq!(ev1.disclose.flagged, ev2.disclose.flagged);
}
