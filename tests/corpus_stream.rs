//! End-to-end guarantees for the streamed corpus path: the sharded
//! generate→analyze pipeline must be a pure optimization — byte-identical
//! to materializing the corpus first, invariant under shard count, and
//! composable with the artifact store and dataset manifests.

use ppchecker_core::{AppInput, PPChecker};
use ppchecker_corpus::{
    paper_dataset, stream_scaled, stream_scaled_sharded, DatasetManifest, GeneratedApp,
    ScenarioPack, APP_COUNT,
};
use ppchecker_engine::Engine;
use proptest::prelude::*;

/// Everything that makes an app input distinguishable, as one comparable
/// blob (`AppInput` does not implement `PartialEq`; the `Debug` form
/// covers package, policy, description and the full APK byte-for-byte).
fn fingerprint(app: &GeneratedApp) -> String {
    format!("{:?}", app.input)
}

#[test]
fn streamed_prefix_is_byte_identical_to_the_materialized_paper_corpus() {
    let materialized = paper_dataset(42);
    assert_eq!(materialized.apps.len(), APP_COUNT);
    let mut streamed = 0usize;
    for (got, want) in stream_scaled(42, APP_COUNT).zip(&materialized.apps) {
        assert_eq!(got.input.package, want.input.package);
        assert_eq!(got.input.policy_html, want.input.policy_html);
        assert_eq!(got.input.description, want.input.description);
        assert_eq!(fingerprint(&got), fingerprint(want));
        streamed += 1;
    }
    assert_eq!(streamed, APP_COUNT, "stream must cover the whole paper corpus");
}

#[test]
fn shard_count_never_changes_the_stream() {
    let reference: Vec<String> =
        stream_scaled_sharded(42, APP_COUNT, 1).map(|a| fingerprint(&a)).collect();
    for shards in [4usize, 16] {
        let sharded: Vec<String> =
            stream_scaled_sharded(42, APP_COUNT, shards).map(|a| fingerprint(&a)).collect();
        assert_eq!(reference, sharded, "{shards} shards must replay the 1-shard stream");
    }
}

#[test]
fn run_streamed_agrees_with_materialized_run_over_the_paper_corpus() {
    let engine = Engine::new(PPChecker::new());
    let inputs: Vec<AppInput> = stream_scaled(42, APP_COUNT).map(|g| g.input).collect();

    let batch = engine.run(inputs.clone());
    let mut streamed_records = Vec::with_capacity(APP_COUNT);
    let summary = engine.run_streamed(inputs, |record| streamed_records.push(record));

    assert_eq!(summary.aggregate, batch.aggregate());
    assert_eq!(streamed_records.len(), batch.records.len());
    for (got, want) in streamed_records.iter().zip(&batch.records) {
        assert_eq!(got.index, want.index, "records must arrive in submission order");
        assert_eq!(got.package, want.package);
        assert_eq!(format!("{:?}", got.outcome), format!("{:?}", want.outcome));
    }
}

#[test]
fn scenario_pack_manifests_replay_their_subset_of_the_stream() {
    let space = 2 * APP_COUNT;
    let manifest = ScenarioPack::PathologicalPolicy.manifest(42, space);
    assert!(!manifest.ids.is_empty(), "pack must select something in {space} apps");

    let by_index: Vec<GeneratedApp> = stream_scaled(42, space).collect();
    for (got, &id) in manifest.apps().zip(&manifest.ids) {
        assert_eq!(fingerprint(&got), fingerprint(&by_index[id]), "manifest app {id} must match");
    }
}

proptest! {
    /// Manifests survive a serialize→parse round trip exactly, for any
    /// valid (name, seed, space, ids) combination.
    #[test]
    fn manifest_roundtrips_through_its_text_form(
        name in "[a-z][a-z0-9-]{0,19}",
        seed in any::<u64>(),
        extra in 0usize..1000,
        raw_ids in proptest::collection::vec(0usize..5000, 0..40),
    ) {
        let mut ids = raw_ids;
        ids.sort_unstable();
        ids.dedup();
        let space = ids.last().map_or(0, |m| m + 1) + extra;
        let manifest = DatasetManifest { name, seed, space, ids };
        let parsed = DatasetManifest::parse(&manifest.serialize());
        prop_assert_eq!(parsed.as_ref(), Ok(&manifest));
    }
}
