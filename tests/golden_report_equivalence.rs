//! Golden-snapshot byte-identity for the default detector registry.
//!
//! The snapshot in `tests/golden/reports_seed42_50.txt` was rendered with
//! the pre-registry detection layer (the three paper detectors hardwired
//! in `checker.rs`) over a 50-app seeded corpus, serialized through the
//! wire JSON writer. The pluggable `DetectorRegistry` is an internal
//! redesign: with the default registry the serialized report for every
//! app must stay byte-identical.
//!
//! Regenerate (only when detection semantics intentionally change) with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_report_equivalence`

use ppchecker_corpus::small_dataset;
use ppchecker_serve::json::report_to_json;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/reports_seed42_50.txt";

fn render_corpus() -> String {
    let dataset = small_dataset(42, 50);
    let checker = dataset.make_checker();
    let mut out = String::new();
    for app in &dataset.apps {
        match checker.check_app(&app.input) {
            Ok(outcome) => out.push_str(&report_to_json(&outcome.report)),
            Err(e) => out.push_str(&format!("error[{}]: {e}", app.input.package)),
        }
        out.push('\n');
    }
    out
}

#[test]
fn default_registry_reports_match_pre_redesign_snapshot() {
    let rendered = render_corpus();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    if rendered != golden {
        let mismatch = rendered.lines().zip(golden.lines()).enumerate().find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "report diverged from pre-redesign snapshot at line {}:\n  got:  {got}\n  want: {want}",
                i + 1
            ),
            None => panic!(
                "report output diverged in length: got {} lines, want {}",
                rendered.lines().count(),
                golden.lines().count()
            ),
        }
    }
}
