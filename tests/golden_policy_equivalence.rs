//! Golden-snapshot equivalence for the policy-analysis pipeline.
//!
//! The snapshot in `tests/golden/policy_analyses_seed42_50.txt` was rendered
//! from the pre-interning pipeline over a 50-app seeded corpus. The interned
//! Symbol representation is internal only: the resolved string view of every
//! `PolicyAnalysis` (sentences, categories, negation flags, resources,
//! executors, constraints) must stay byte-identical.
//!
//! Regenerate (only when the *analysis semantics* intentionally change) with:
//! `UPDATE_GOLDEN=1 cargo test --test golden_policy_equivalence`

use ppchecker_corpus::small_dataset;
use ppchecker_policy::{PolicyAnalysis, PolicyAnalyzer};
use std::fmt::Write as _;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/policy_analyses_seed42_50.txt";

/// Renders the public string view of one analysis in a stable text form.
fn render(package: &str, a: &PolicyAnalysis) -> String {
    let mut out = String::new();
    writeln!(out, "## {package} total={} disclaimer={}", a.total_sentences, a.has_disclaimer)
        .unwrap();
    for s in &a.sentences {
        let resources: Vec<&str> = s.resources().collect();
        let constraints: Vec<String> =
            s.elements.constraints.iter().map(|c| format!("{:?}:{}", c.kind, c.text)).collect();
        writeln!(
            out,
            "- cat={} neg={} cond={} verb={} exec={} res=[{}] cons=[{}]",
            s.category,
            s.negative,
            s.conditional,
            s.elements.main_verb(),
            s.elements.executor().unwrap_or("-"),
            resources.join(" | "),
            constraints.join(" ; "),
        )
        .unwrap();
        writeln!(out, "  text={}", s.text).unwrap();
    }
    out
}

fn render_corpus() -> String {
    let dataset = small_dataset(42, 50);
    let analyzer = PolicyAnalyzer::new();
    let mut out = String::new();
    for app in &dataset.apps {
        let a = analyzer.analyze_html(&app.input.policy_html);
        out.push_str(&render(&app.input.package, &a));
    }
    out
}

#[test]
fn resolved_analyses_match_pre_refactor_snapshot() {
    let rendered = render_corpus();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    if rendered != golden {
        // Pinpoint the first divergent line rather than dumping both files.
        let mismatch = rendered.lines().zip(golden.lines()).enumerate().find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "analysis diverged from pre-refactor snapshot at line {}:\n  got:  {got}\n  want: {want}",
                i + 1
            ),
            None => panic!(
                "analysis diverged in length: got {} lines, want {}",
                rendered.lines().count(),
                golden.lines().count()
            ),
        }
    }
}
