//! Integration tests for the batch engine: determinism across worker
//! counts on a seeded corpus, and fault isolation for poisoned apps.

use ppchecker_apk::Apk;
use ppchecker_core::PPChecker;
use ppchecker_corpus::{evaluate, evaluate_parallel, export_dataset, small_dataset};
use ppchecker_engine::Engine;

/// `jobs=1` and `jobs=8` over the same seeded 50-app corpus must produce
/// identical evaluations and byte-identical aggregate renderings.
#[test]
fn parallel_evaluation_is_deterministic_across_worker_counts() {
    let dataset = small_dataset(42, 50);

    let (serial, m1) = evaluate_parallel(&dataset, 1);
    let (parallel, m8) = evaluate_parallel(&dataset, 8);
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 evaluations diverged");
    assert_eq!(m1.jobs, 1);
    assert_eq!(m8.jobs, 8);

    // And both must match the plain serial harness.
    assert_eq!(serial, evaluate(&dataset));
}

/// The aggregate report bytes (not just the struct) must be identical for
/// any worker count.
#[test]
fn aggregate_rendering_is_byte_identical() {
    let dataset = small_dataset(7, 50);
    let libs = || dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone()));

    let one = Engine::with_lib_policies(PPChecker::new(), libs())
        .with_jobs(1)
        .run(dataset.iter_apps().cloned());
    let eight = Engine::with_lib_policies(PPChecker::new(), libs())
        .with_jobs(8)
        .run(dataset.iter_apps().cloned());

    assert_eq!(one.aggregate(), eight.aggregate());
    assert_eq!(one.aggregate().to_string(), eight.aggregate().to_string());
    for (a, b) in one.records.iter().zip(eight.records.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.package, b.package);
        assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
    }
}

/// One corrupt-dex app in a batch yields exactly one error record; the
/// other N−1 apps still produce full reports.
#[test]
fn corrupt_dex_app_is_isolated_to_one_error_record() {
    let dataset = small_dataset(42, 20);
    let mut inputs: Vec<_> = dataset.iter_apps().cloned().collect();

    // Poison app 11: replace its APK with an unpackable blob.
    let manifest = inputs[11].apk.manifest.clone();
    inputs[11].apk = Apk::from_packed_blob(manifest, vec![0x00, 0xFF, 0x13, 0x37]);

    let engine = Engine::with_lib_policies(
        PPChecker::new(),
        dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone())),
    )
    .with_jobs(4);
    let batch = engine.run(inputs);

    assert_eq!(batch.records.len(), 20);
    assert_eq!(batch.metrics.errors, 1);
    let error = batch.records[11].error().unwrap();
    assert_eq!(error.stage(), ppchecker_core::Stage::StaticAnalysis);
    assert!(error.to_string().contains("static analysis failed"));
    assert_eq!(
        batch.records.iter().filter(|r| r.report().is_some()).count(),
        19,
        "all other apps must still complete"
    );
    assert_eq!(batch.aggregate().errors, 1);
}

/// End-to-end through the export layout: `ppchecker batch` record streams
/// are byte-identical across worker counts.
#[test]
fn batch_cli_records_are_jobs_invariant_over_exported_corpus() {
    use ppchecker_cli::{run_batch, BatchOptions};

    let dataset = small_dataset(42, 12);
    let dir = std::env::temp_dir().join(format!("ppchecker-engine-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    export_dataset(&dir, &dataset, 12).unwrap();

    let (serial, _) =
        run_batch(&BatchOptions { jobs: 1, ..BatchOptions::for_corpus_dir(&dir) }).unwrap();
    let (parallel, _) =
        run_batch(&BatchOptions { jobs: 8, ..BatchOptions::for_corpus_dir(&dir) }).unwrap();
    assert_eq!(serial, parallel, "JSONL output must be byte-identical");
    assert_eq!(serial.lines().count(), 13, "12 records + 1 aggregate line");
    let _ = std::fs::remove_dir_all(&dir);
}
