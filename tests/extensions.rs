//! End-to-end tests for the implemented future-work extensions: synonym
//! expansion recovers the paper's false negatives, constraint modeling
//! silences consent-gated denials, and the similarity threshold behaves as
//! the sensitivity study expects.

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};
use ppchecker_core::{AppInput, PPChecker};
use ppchecker_corpus::{paper_dataset, small_dataset};
use ppchecker_policy::PolicyAnalyzer;

/// The corpus's planted inconsistency false negatives (apps 330/331) use
/// denial verbs outside the pattern set. With synonym expansion, the
/// "display" denial becomes detectable — recall improves exactly as §V-E
/// predicts.
#[test]
fn synonym_expansion_recovers_planted_false_negatives() {
    let dataset = small_dataset(42, 332);
    let fn_app = &dataset.apps[331]; // "we will not display your device id"
    assert!(fn_app.spec.truth.inconsistent());

    let plain = dataset.make_checker();
    let report = plain.check_app(&fn_app.input).unwrap();
    assert!(!report.is_inconsistent(), "without expansion the FN plant must stay undetected");

    let mut expanded =
        PPChecker::new().with_analyzer(PolicyAnalyzer::new().with_synonym_expansion());
    for lp in &dataset.lib_policies {
        expanded.register_lib_policy(lp.lib.id, &lp.html);
    }
    let report = expanded.check_app(&fn_app.input).unwrap();
    assert!(report.is_inconsistent(), "synonym expansion must recover the display-verb denial");
}

/// Consent-gated denials stop producing inconsistency findings when
/// constraint modeling is on.
#[test]
fn constraint_modeling_silences_consent_gated_denials() {
    let mut manifest = Manifest::new("com.x");
    manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
    let dex = Dex::builder()
        .class("com.x.Main", |c| {
            c.method("onCreate", 1, |_| {});
        })
        .class("com.google.android.gms.ads.AdView", |c| {
            c.method("loadAd", 1, |_| {});
        })
        .build();
    let app = AppInput {
        package: "com.x".to_string(),
        policy_html: "<p>We will not share your device id without your consent.</p>".to_string(),
        description: "A simple game.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };

    let mut plain = PPChecker::new();
    plain.register_lib_policy("admob", "<p>we may share your device id.</p>");
    assert!(plain.check_app(&app).unwrap().is_inconsistent());

    let mut modeled =
        PPChecker::new().with_analyzer(PolicyAnalyzer::new().with_constraint_modeling());
    modeled.register_lib_policy("admob", "<p>we may share your device id.</p>");
    assert!(
        !modeled.check_app(&app).unwrap().is_inconsistent(),
        "a consent-gated denial is conditional, not a conflict"
    );
}

/// A very strict threshold eliminates the generic-"information" false
/// positives at the cost of paraphrase recall.
#[test]
fn strict_threshold_trades_recall_for_precision() {
    let dataset = small_dataset(42, 332);
    // App 320 is an inconsistency FP plant (generic "information").
    let fp_app = &dataset.apps[320];
    assert!(!fp_app.spec.truth.inconsistent());

    let normal = dataset.make_checker();
    assert!(normal.check_app(&fp_app.input).unwrap().is_inconsistent());

    let mut strict = PPChecker::new().with_similarity_threshold(0.97);
    for lp in &dataset.lib_policies {
        strict.register_lib_policy(lp.lib.id, &lp.html);
    }
    assert!(
        !strict.check_app(&fp_app.input).unwrap().is_inconsistent(),
        "at 0.97 the generic-information bait no longer matches"
    );
}

/// Suggestions resolve what they claim: applying the ADD edits to the
/// policy makes the incomplete findings disappear.
#[test]
fn applying_suggestions_fixes_incompleteness() {
    let dataset = paper_dataset(42);
    let app = &dataset.apps[100]; // code-only incomplete plant
    assert!(app.spec.truth.incomplete_via_code);

    let checker = dataset.make_checker();
    let report = checker.check_app(&app.input).unwrap();
    assert!(report.is_incomplete());

    // Append every suggested ADD sentence to the policy and re-check.
    let mut patched_html = app.input.policy_html.replace(
        "</body>",
        &format!(
            "{}</body>",
            ppchecker_core::suggest_fixes(&report)
                .iter()
                .filter(|s| s.kind == ppchecker_core::EditKind::Add)
                .map(|s| format!("<p>{}</p>", s.text))
                .collect::<String>()
        ),
    );
    if !patched_html.contains("</body>") {
        patched_html.push_str(&app.input.policy_html);
    }
    let patched = AppInput { policy_html: patched_html, ..app.input.clone() };
    let report2 = checker.check_app(&patched).unwrap();
    assert!(!report2.is_incomplete(), "suggested additions must cover the gap: {report2}");
}
