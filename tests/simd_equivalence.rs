//! Byte-identity of the SIMD kernels over the golden corpus.
//!
//! The SIMD merge-dot and the batch norm-bound check are engineered to
//! be *bit*-identical to their scalar references (same accumulator, same
//! ascending-id accumulation order, same bound association), not merely
//! close. This test holds that line end to end: every cosine the golden
//! corpus vocabulary produces must match to the last f64 bit between the
//! forced-scalar path and the detected SIMD path, and the rendered JSON
//! report of every golden-corpus app must be byte-for-byte identical
//! across the two paths.
//!
//! Both halves run in one process, so [`ppchecker_esa::force_scalar`]
//! (the runtime-dispatch test hook) switches paths rather than the
//! `PPCHECKER_NO_SIMD` environment variable, which is read once at first
//! dispatch. CI additionally runs the whole tier-1 suite under
//! `PPCHECKER_NO_SIMD=1` to cover the env-var route.

use ppchecker_core::PPChecker;
use ppchecker_corpus::small_dataset;
use ppchecker_engine::Engine;
use ppchecker_esa::{kernel, Interpreter, SparseVector};
use ppchecker_policy::PolicyAnalyzer;
use ppchecker_serve::json::report_to_json;
use std::collections::BTreeSet;

/// Sparse vectors for every distinct resource phrase the golden corpus
/// policies mention, plus the canonical sensitive-resource phrases.
fn corpus_vectors() -> Vec<SparseVector> {
    let dataset = small_dataset(42, 50);
    let analyzer = PolicyAnalyzer::new();
    let esa = Interpreter::shared();
    let mut phrases: BTreeSet<String> =
        ppchecker_nlp::intern::SENSITIVE_RESOURCES.iter().map(|s| s.to_string()).collect();
    for app in &dataset.apps {
        let analysis = analyzer.analyze_html(&app.input.policy_html);
        phrases
            .extend(analysis.mentioned_resource_symbols().iter().map(|s| s.as_str().to_string()));
    }
    phrases.iter().map(|p| esa.interpret_sparse(p)).collect()
}

#[test]
fn simd_cosines_are_bit_identical_to_scalar_over_golden_corpus() {
    let vectors = corpus_vectors();
    assert!(vectors.len() >= 20, "corpus should mention a rich resource vocabulary");
    // Detected path first (so the SIMD lanes are the ones actually
    // computing), then forced scalar over the same pairs.
    ppchecker_esa::force_scalar(false);
    let simd_path = ppchecker_esa::active_path();
    let simd: Vec<u64> = vectors
        .iter()
        .flat_map(|a| vectors.iter().map(|b| kernel::cosine(a, b).to_bits()))
        .collect();
    ppchecker_esa::force_scalar(true);
    assert_eq!(ppchecker_esa::active_path(), "scalar");
    let scalar: Vec<u64> = vectors
        .iter()
        .flat_map(|a| vectors.iter().map(|b| kernel::cosine(a, b).to_bits()))
        .collect();
    ppchecker_esa::force_scalar(false);
    assert_eq!(simd, scalar, "cosine diverged between scalar and {simd_path} paths");
}

#[test]
fn golden_corpus_reports_are_byte_identical_with_simd_on_and_off() {
    let dataset = small_dataset(42, 50);

    let render = |batch: &ppchecker_engine::BatchReport| -> Vec<String> {
        batch
            .records
            .iter()
            .map(|r| match &r.outcome {
                ppchecker_engine::AppOutcome::Report(report) => report_to_json(report),
                ppchecker_engine::AppOutcome::Error(e) => format!("error: {e:?}"),
            })
            .collect()
    };

    ppchecker_esa::force_scalar(false);
    let simd_path = ppchecker_esa::active_path();
    let engine = Engine::new(PPChecker::new()).with_jobs(2);
    let with_simd = render(&engine.run(dataset.iter_apps().cloned()));

    ppchecker_esa::force_scalar(true);
    let engine = Engine::new(PPChecker::new()).with_jobs(2);
    let without_simd = render(&engine.run(dataset.iter_apps().cloned()));
    ppchecker_esa::force_scalar(false);

    assert_eq!(with_simd.len(), dataset.apps.len());
    for (i, (a, b)) in with_simd.iter().zip(without_simd.iter()).enumerate() {
        assert_eq!(a, b, "app {i}: report bytes diverged between {simd_path} and scalar");
    }
}
