//! Precision/recall floors for the successor-literature detectors.
//!
//! Each workload plants its ground truth at deterministic indices
//! (`ppchecker_corpus::detectors`); the real pipeline runs with exactly
//! the detector under test, and the score compares detection against
//! the plants. CI fails this suite when any detector drops below the
//! floors recorded in EXPERIMENTS.md.

use ppchecker_core::DetectorId;
use ppchecker_corpus::{
    boilerplate_corpus, data_safety_corpus, purpose_corpus, score_detector, DetectorScore,
};

/// The checked-in floor: both precision and recall at or above 0.9.
const FLOOR: f64 = 0.9;

fn assert_floors(id: DetectorId, score: DetectorScore) {
    eprintln!("{id}: {score}");
    assert!(
        score.precision() >= FLOOR,
        "{id} precision {:.3} below floor {FLOOR}: {score}",
        score.precision(),
    );
    assert!(
        score.recall() >= FLOOR,
        "{id} recall {:.3} below floor {FLOOR}: {score}",
        score.recall(),
    );
}

#[test]
fn data_safety_detector_meets_the_floors() {
    let apps = data_safety_corpus(40);
    let score = score_detector(&apps, DetectorId::DataSafety);
    assert_eq!(score.tp + score.fn_, 20, "all 20 plants must be accounted for: {score}");
    assert_floors(DetectorId::DataSafety, score);
}

#[test]
fn purpose_detector_meets_the_floors() {
    let apps = purpose_corpus(40);
    let score = score_detector(&apps, DetectorId::Purpose);
    assert_eq!(score.tp + score.fn_, 20, "all 20 plants must be accounted for: {score}");
    assert_floors(DetectorId::Purpose, score);
}

#[test]
fn boilerplate_detector_meets_the_floors() {
    let apps = boilerplate_corpus(30);
    let score = score_detector(&apps, DetectorId::Boilerplate);
    assert_eq!(score.tp + score.fn_, 10, "all 10 plants must be accounted for: {score}");
    assert_floors(DetectorId::Boilerplate, score);
}

/// The paper detectors stay untouched by the workloads: running the
/// default registry over a workload corpus produces no extended
/// findings, so the new corpora cannot perturb the classic statistics.
#[test]
fn default_registry_sees_no_extended_findings_on_the_workloads() {
    let checker = ppchecker_core::PPChecker::new();
    for app in data_safety_corpus(8) {
        let report = checker.check_app(&app.input).unwrap();
        assert!(report.findings.is_empty(), "{}", report.package);
    }
}
