//! Quickstart: check a single app's privacy policy against its
//! description and (simulated) APK.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission};
use ppchecker_core::{AppInput, PPChecker};

fn main() {
    // 1. The app's manifest: a weather app asking for fine location.
    let mut manifest = Manifest::new("com.example.weather");
    manifest.add_permission(Permission::AccessFineLocation);
    manifest.add_permission(Permission::Internet);
    manifest.add_component(ComponentKind::Activity, "com.example.weather.Main", true);

    // 2. Its (simulated) bytecode: grabs the last known location in
    //    onCreate and logs it.
    let dex = Dex::builder()
        .class("com.example.weather.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |m| {
                m.invoke_virtual(
                    "android.location.LocationManager",
                    "getLastKnownLocation",
                    &[0],
                    Some(1),
                );
                m.invoke_static("android.util.Log", "d", &[1], None);
            });
        })
        .build();

    // 3. The policy conspicuously never mentions location.
    let app = AppInput {
        package: "com.example.weather".to_string(),
        policy_html: "<html><body><h1>Privacy Policy</h1>\
            <p>We may collect your email address to create your account.</p>\
            <p>We will not sell your personal information.</p>\
            </body></html>"
            .to_string(),
        description: "Accurate weather forecasts for your current location, updated hourly."
            .to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };

    // 4. Run PPChecker.
    let checker = PPChecker::new();
    let report = checker.check_app(&app).expect("plain dex analyzes cleanly");

    println!("{report}");
    println!("incomplete?   {}", report.is_incomplete());
    println!("incorrect?    {}", report.is_incorrect());
    println!("inconsistent? {}", report.is_inconsistent());
    assert!(report.is_incomplete(), "the location gap must be detected");
}
