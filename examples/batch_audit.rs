//! Batch-audit a corpus directory with the parallel engine — the
//! `ppchecker batch` workflow, end to end:
//!
//! 1. generate a seeded slice of the paper corpus and export it to disk in
//!    the `corpus::export` layout (`app-NNNN/` dirs + `libs/*.html`),
//! 2. load it back the way the CLI does and run the engine at two worker
//!    counts,
//! 3. show that the record streams are byte-identical and print the
//!    metrics summary (stage timings, cache hit rates, throughput).
//!
//! ```sh
//! cargo run --release --example batch_audit          # 60 apps
//! cargo run --release --example batch_audit -- 200   # 200 apps
//! ```

use ppchecker_cli::{run_batch, BatchOptions};
use ppchecker_corpus::{export_dataset, small_dataset};
use ppchecker_engine::available_jobs;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60);

    let dir = std::env::temp_dir().join(format!("ppchecker-batch-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("exporting {n} apps + 81 lib policies to {}", dir.display());
    let dataset = small_dataset(42, n);
    export_dataset(&dir, &dataset, n).expect("export corpus");

    let jobs = available_jobs();
    let (serial, _) = run_batch(&BatchOptions { jobs: 1, ..BatchOptions::for_corpus_dir(&dir) })
        .expect("serial batch");
    let (parallel, metrics) =
        run_batch(&BatchOptions { jobs, ..BatchOptions::for_corpus_dir(&dir) })
            .expect("parallel batch");

    assert_eq!(serial, parallel, "record streams must be byte-identical");
    println!(
        "jobs=1 and jobs={jobs} agree byte-for-byte over {} output lines\n",
        serial.lines().count()
    );

    let aggregate = serial.lines().last().unwrap_or_default();
    println!("aggregate: {aggregate}\n");
    println!("{metrics}");

    let _ = std::fs::remove_dir_all(&dir);
}
