//! Developer-facing workflow: check an app, then get concrete edits that
//! would fix its privacy policy (the AutoPPG-style extension), and see the
//! retained-information flows PPChecker found as source→sink witnesses.
//!
//! ```sh
//! cargo run --example fix_my_policy
//! ```

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission};
use ppchecker_core::{describe_leak, suggest_fixes, AppInput, PPChecker};

fn main() {
    let mut manifest = Manifest::new("com.example.fitness");
    manifest.add_permission(Permission::AccessFineLocation);
    manifest.add_permission(Permission::ReadContacts);
    manifest.add_component(ComponentKind::Activity, "com.example.fitness.Main", true);

    let dex = Dex::builder()
        .class("com.example.fitness.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |m| {
                // Tracks the run...
                m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                // ...and quietly logs the coordinates.
                m.invoke_static("android.util.Log", "d", &[1], None);
                // Also reads the address book for "find friends".
                m.const_string(2, "content://com.android.contacts");
                m.invoke_virtual("android.content.ContentResolver", "query", &[0, 2], Some(3));
            });
        })
        .class("com.google.android.gms.ads.AdView", |c| {
            c.method("loadAd", 1, |_| {});
        })
        .build();

    let app = AppInput {
        package: "com.example.fitness".to_string(),
        policy_html: "<html><body><h1>Privacy</h1>\
            <p>We may collect your email address.</p>\
            <p>We will never share your device id with anyone.</p>\
            </body></html>"
            .to_string(),
        description: "Track your runs with precise gps location. Invite friends from your \
                      phonebook."
            .to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };

    let mut checker = PPChecker::new();
    checker.register_lib_policy("admob", "<p>we may share your device id with our partners.</p>");
    let report = checker.check_app(&app).expect("analyzes cleanly");

    println!("== findings ==");
    println!("{report}");

    // The static analysis also yields the raw flow witnesses.
    let static_report = ppchecker_static::analyze(&app.apk).expect("plain dex");
    if !static_report.retained.is_empty() {
        println!("== retained-information flows ==");
        for leak in &static_report.retained {
            println!("  {}", describe_leak(leak));
        }
    }

    println!("\n== suggested policy edits ==");
    for fix in suggest_fixes(&report) {
        println!("  {fix}");
    }
}
