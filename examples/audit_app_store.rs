//! Audit a whole app-store slice, the way a market owner or regulator
//! (FTC-style, per the paper's motivation) would: run PPChecker over a
//! corpus of apps and print a findings digest.
//!
//! ```sh
//! cargo run --release --example audit_app_store -- [num_apps]
//! ```

use ppchecker_corpus::small_dataset;
use std::collections::BTreeMap;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(250);
    println!("auditing a {n}-app store slice...\n");

    let dataset = small_dataset(42, n);
    let checker = dataset.make_checker();

    let mut incomplete = 0usize;
    let mut incorrect = 0usize;
    let mut inconsistent = 0usize;
    let mut missed_by_info: BTreeMap<String, usize> = BTreeMap::new();
    let mut worst: Vec<(usize, String)> = Vec::new();

    for app in &dataset.apps {
        let report = checker.check_app(&app.input).expect("corpus apps analyze cleanly");
        if report.is_incomplete() {
            incomplete += 1;
            for m in &report.missed {
                *missed_by_info.entry(m.info.to_string()).or_insert(0) += 1;
            }
        }
        if report.is_incorrect() {
            incorrect += 1;
        }
        if report.is_inconsistent() {
            inconsistent += 1;
        }
        let findings = report.missed.len() + report.incorrect.len() + report.inconsistencies.len();
        if findings > 0 {
            worst.push((findings, report.package.clone()));
        }
    }
    worst.sort_by_key(|w| std::cmp::Reverse(w.0));

    println!("== audit summary ==");
    println!("apps audited:          {n}");
    println!("incomplete policies:   {incomplete}");
    println!("incorrect policies:    {incorrect}");
    println!("inconsistent policies: {inconsistent}");

    println!("\n== most commonly unmentioned information ==");
    let mut ranked: Vec<(&String, &usize)> = missed_by_info.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1));
    for (info, count) in ranked.iter().take(8) {
        println!("  {count:4}  {info}");
    }

    println!("\n== apps with the most findings ==");
    for (count, package) in worst.iter().take(10) {
        println!("  {count:3} findings  {package}");
    }
}
