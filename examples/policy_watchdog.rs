//! Policy-watchdog scenario: diff two versions of a privacy policy at the
//! behaviour level and re-audit the app against the new version — the
//! workflow a market owner would run when a developer uploads an updated
//! policy ("this policy may change from time to time").
//!
//! ```sh
//! cargo run --example policy_watchdog
//! ```

use ppchecker_policy::{diff, PolicyAnalyzer};

const V1: &str = "<html><body><h1>Privacy Policy v1</h1>\
    <p>We may collect your email address.</p>\
    <p>We will not share your location.</p>\
    <p>We will not sell your personal information.</p>\
    </body></html>";

const V2: &str = "<html><body><h1>Privacy Policy v2</h1>\
    <p>We may collect your email address.</p>\
    <p>We may share your location with our partners.</p>\
    <p>We will not sell your personal information.</p>\
    <p>We may collect your device id.</p>\
    <p>We are not responsible for the privacy practices of those third party sites.</p>\
    </body></html>";

fn main() {
    let analyzer = PolicyAnalyzer::new();
    let old = analyzer.analyze_html(V1);
    let new = analyzer.analyze_html(V2);
    let d = diff(&old, &new);

    println!("== policy update: v1 → v2 ==\n");
    println!("newly declared practices:");
    for s in d.new_practices() {
        println!("  + {} {}", s.category, s.resource);
    }
    println!("\ndropped promises (denials removed):");
    for s in d.dropped_promises() {
        println!("  - no longer promises NOT to {} {}", s.category, s.resource);
    }
    if let Some(appeared) = d.disclaimer_changed {
        println!("\nthird-party disclaimer {}", if appeared { "ADDED" } else { "REMOVED" });
    }

    assert!(!d.is_empty());
    assert!(d.dropped_promises().count() >= 1);
    println!("\nverdict: v2 weakens the location promise — re-review required.");
}
