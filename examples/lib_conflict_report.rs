//! Third-party-library conflict report: check one app's policy against
//! the bundled corpus of 81 real-world library policies (52 ad, 9 social,
//! 20 development tools) and show every conflict, plus the effect of a
//! disclaimer.
//!
//! ```sh
//! cargo run --example lib_conflict_report
//! ```

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};
use ppchecker_core::{AppInput, PPChecker};
use ppchecker_corpus::libs::lib_policies;

fn game_app(policy: &str) -> AppInput {
    let mut manifest = Manifest::new("com.example.runner");
    manifest.add_component(ComponentKind::Activity, "com.example.runner.Main", true);
    // The game embeds Unity3d, AdMob, and the Facebook SDK.
    let dex = Dex::builder()
        .class("com.example.runner.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |_| {});
        })
        .class("com.unity3d.player.UnityPlayer", |c| {
            c.method("init", 1, |_| {});
        })
        .class("com.google.android.gms.ads.AdView", |c| {
            c.method("loadAd", 1, |_| {});
        })
        .class("com.facebook.android.Session", |c| {
            c.method("open", 1, |_| {});
        })
        .build();
    AppInput {
        package: "com.example.runner".to_string(),
        policy_html: policy.to_string(),
        description: "An endless runner everyone loves.".to_string(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    }
}

fn main() {
    let mut checker = PPChecker::new();
    for lp in lib_policies() {
        checker.register_lib_policy(lp.lib.id, &lp.html);
    }
    println!("registered {} third-party lib policies\n", checker.lib_policy_count());

    // The app's policy denies behaviours its embedded libs declare.
    let app = game_app(
        "<p>We do not collect your location information.</p>\
         <p>We will never share your device id with anyone.</p>\
         <p>We do not collect your contacts.</p>",
    );
    let report = checker.check_app(&app).expect("analyzes cleanly");
    println!("embedded libs: {:?}\n", report.libs);
    println!("== conflicts ==");
    for inc in &report.inconsistencies {
        println!(
            "[{}] {} conflict:\n    app: «{}»\n    lib: «{}» (resource: {} ↔ {})\n",
            inc.lib_id,
            inc.category,
            inc.app_sentence,
            inc.lib_sentence,
            inc.app_resource,
            inc.lib_resource,
        );
    }
    assert!(report.is_inconsistent());

    // With a disclaimer, the same denials raise no findings (§IV-C).
    let disclaimed = game_app(
        "<p>We are not responsible for the privacy practices of those third party sites.</p>\
         <p>We do not collect your location information.</p>",
    );
    let report2 = checker.check_app(&disclaimed).expect("analyzes cleanly");
    println!(
        "with disclaimer: disclaimer={} conflicts={}",
        report2.has_disclaimer,
        report2.inconsistencies.len()
    );
    assert!(!report2.is_inconsistent());
}
