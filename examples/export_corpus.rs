//! Export a seeded corpus slice to disk in the `corpus::export` layout
//! (`app-NNNN/` dirs + `libs/*.html`), ready for `ppchecker batch`:
//!
//! ```sh
//! cargo run --release --example export_corpus -- corpus/ 50
//! cargo run --release -p ppchecker-cli -- batch --corpus corpus/ --jobs 4 \
//!     --trace trace.json
//! cargo run --release -p ppchecker-cli -- trace-check trace.json
//! ```

use ppchecker_corpus::{export_dataset, small_dataset};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir: PathBuf = args.next().unwrap_or_else(|| "corpus".to_string()).into();
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let dataset = small_dataset(42, n);
    export_dataset(&dir, &dataset, n).expect("export corpus");
    println!(
        "exported {n} apps + {} lib policies to {}",
        dataset.lib_policies.len(),
        dir.display()
    );
}
