//! CI smoke test for the resident daemon: boot `ppchecker serve`'s
//! server in-process, drive it like an external caller would — warm
//! checks, one malformed request, a `/metrics` scrape — and drain.
//!
//! Exits non-zero (panics) if any step misbehaves, so CI can run it as
//! a plain `cargo run --release --example serve_smoke`. The warm-cache
//! assertion uses hit *counters*, not latencies: on a loaded CI runner
//! wall times swing, but a second pass over the same corpus must be
//! served from the resident caches.

use ppchecker_corpus::small_dataset;
use ppchecker_engine::Engine;
use ppchecker_serve::json::Value;
use ppchecker_serve::{Client, ServeConfig, Server};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn refused(addr: SocketAddr) -> bool {
    TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
}

fn number(metrics: &Value, path: &[&str]) -> f64 {
    let mut node = metrics;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("metrics missing {path:?}"));
    }
    node.as_f64().unwrap_or_else(|| panic!("metrics {path:?} not a number"))
}

fn main() {
    let dataset = small_dataset(7, 6);
    let engine = Engine::with_lib_policies(
        dataset.make_checker(),
        dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone())),
    );
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let handle = Server::start(engine, config).expect("daemon boots");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    println!("serve_smoke: daemon on {}", handle.addr());

    // Two passes over the corpus: the first is cold, the second must be
    // served from the resident caches.
    let apps: Vec<_> = dataset.iter_apps().cloned().collect();
    for pass in 1..=2 {
        for app in &apps {
            let (status, body) = client.check(app).expect("check round-trips");
            assert_eq!(status, 200, "pass {pass}, body: {body}");
            assert!(body.contains("\"ok\":true"), "pass {pass}, body: {body}");
        }
        println!("serve_smoke: pass {pass} ok ({} apps)", apps.len());
    }

    // A malformed request must get a clean 400, and the daemon must
    // keep serving afterwards.
    let (status, _) = client
        .request("POST", "/check", "{\"policy_html\": unterminated")
        .expect("gets a response");
    assert_eq!(status, 400, "malformed JSON is refused");
    let (status, _) = client.check(&apps[0]).expect("daemon survives malformed input");
    assert_eq!(status, 200);
    println!("serve_smoke: malformed request refused with 400, daemon still healthy");

    // The metrics document must show warm-cache hits and the request
    // counters this smoke generated.
    let metrics = client.metrics().expect("metrics scrape");
    let hits = |cache: &str| number(&metrics, &["caches", cache, "hits"]);
    assert!(hits("policy") > 0.0, "second pass hits the policy cache");
    assert!(hits("esa_vectors") > 0.0, "second pass hits the ESA vector cache");
    assert!(number(&metrics, &["requests", "checks_ok"]) >= (2 * apps.len() + 1) as f64);
    assert!(number(&metrics, &["requests", "malformed"]) >= 1.0);
    assert!(number(&metrics, &["interner", "symbols"]) > 0.0);
    let span_count = number(&metrics, &["spans", "serve.request", "count"]);
    assert!(span_count >= (2 * apps.len()) as f64, "requests are traced: {span_count}");
    println!(
        "serve_smoke: metrics ok — policy cache {} hits, esa vectors {} hits, {} checks",
        hits("policy"),
        hits("esa_vectors"),
        number(&metrics, &["requests", "checks_ok"]),
    );

    // Graceful drain: shutdown is acknowledged, join returns, and a new
    // connection is refused afterwards.
    let (status, body) = client.shutdown().expect("shutdown accepted");
    assert_eq!(status, 200, "body: {body}");
    let addr = handle.addr();
    handle.join();
    assert!(refused(addr), "drained daemon no longer accepts");
    println!("serve_smoke: drained cleanly");
}
