//! A guided tour of the six-step policy-analysis pipeline (the paper's
//! Fig. 5): HTML extraction, sentence splitting with enumeration repair,
//! dependency parsing, pattern matching, negation analysis, and
//! information-element extraction.
//!
//! ```sh
//! cargo run --example policy_pipeline_tour
//! ```

use ppchecker_nlp::depparse::parse;
use ppchecker_nlp::sentence::split_sentences;
use ppchecker_policy::{html, PolicyAnalyzer};

const POLICY: &str = r#"<html><body>
<h1>Privacy Policy</h1>
<p>This privacy policy describes our practices.</p>
<p>We will collect the following information: your name; your IP address;
your device ID.</p>
<p>We would provide your information to third party companies to improve
service.</p>
<p>We are allowed to access your personal information.</p>
<p>We will not store your real phone number, name and contacts.</p>
<p>Nothing will be collected when you browse anonymously.</p>
<script>analytics.track();</script>
</body></html>"#;

fn main() {
    // Step 1a: HTML extraction (Beautiful Soup substitute).
    let text = html::extract_text(POLICY);
    println!("== extracted text ==\n{}\n", text.trim());

    // Step 1b: sentence splitting with enumeration repair.
    let sentences = split_sentences(&text);
    println!("== {} sentences ==", sentences.len());
    for s in &sentences {
        println!("  • {s}");
    }

    // Step 2: syntactic analysis — typed dependencies for one sentence.
    let sample = "we would provide your information to third party companies to improve service";
    println!("\n== typed dependencies of: «{sample}» ==");
    print!("{}", parse(sample).to_dep_string());

    // Steps 3–6: the full analyzer (patterns, selection, negation,
    // elements).
    let analyzer = PolicyAnalyzer::new();
    println!("\n== pattern inventory: {} patterns ==", analyzer.patterns().len());
    let analysis = analyzer.analyze_html(POLICY);
    println!("\n== useful sentences ==");
    for s in &analysis.sentences {
        println!(
            "  [{}{}] verb={} executor={:?} resources={:?} constraints={}",
            if s.negative { "NOT " } else { "" },
            s.category,
            s.elements.main_verb(),
            s.elements.executor(),
            s.resources().collect::<Vec<_>>(),
            s.elements.constraints.len(),
        );
        println!("      «{}»", s.text);
    }

    println!("\n== derived sets ==");
    for cat in ppchecker_policy::VerbCategory::ALL {
        let pos = analysis.resources(cat, false);
        let neg = analysis.resources(cat, true);
        if !pos.is_empty() {
            println!("  {cat}: {pos:?}");
        }
        if !neg.is_empty() {
            println!("  NOT {cat}: {neg:?}");
        }
    }
}
