//! Repackaging detection scenario (the paper's §I motivation): a benign
//! app is republished with an injected data-stealing component. The
//! original privacy policy — accurate for the benign version — becomes
//! incomplete, and PPChecker exposes the gap.
//!
//! ```sh
//! cargo run --release --example detect_repackaging
//! ```

use ppchecker_apk::PrivateInfo;
use ppchecker_core::{describe_leak, PPChecker};
use ppchecker_corpus::adversarial::repackage;
use ppchecker_corpus::small_dataset;

fn main() {
    let dataset = small_dataset(42, 501);
    let original = &dataset.apps[500];
    let checker = PPChecker::new();

    println!("== original app: {} ==", original.input.package);
    let before = checker.check_app(&original.input).expect("analyzes cleanly");
    println!(
        "incomplete={} incorrect={} inconsistent={}\n",
        before.is_incomplete(),
        before.is_incorrect(),
        before.is_inconsistent()
    );

    println!("== repackaging with a contact+location stealer ==");
    let repackaged = repackage(&original.input, &[PrivateInfo::Contact, PrivateInfo::Location]);
    let after = checker.check_app(&repackaged).expect("analyzes cleanly");
    println!("{after}");

    let static_report = ppchecker_static::analyze(&repackaged.apk).expect("plain dex");
    println!("== exfiltration flows found by taint analysis ==");
    for leak in &static_report.retained {
        println!("  {}", describe_leak(leak));
    }

    assert!(!before.is_incomplete());
    assert!(after.is_incomplete());
    println!("\nverdict: the repackaged variant no longer matches its policy.");
}
