//! Wire-layer matrix against a live daemon: malformed input, oversized
//! bodies, mid-stream disconnects, admission under a full queue, cache
//! warm-up across requests, JSONL ordering, and graceful drain.

use ppchecker_core::PPChecker;
use ppchecker_corpus::small_dataset;
use ppchecker_engine::Engine;
use ppchecker_serve::json::Value;
use ppchecker_serve::{Client, JsonlClient, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

/// Boots a daemon on ephemeral ports over a plain checker.
fn daemon(workers: usize, queue_depth: usize, jsonl: bool) -> ServerHandle {
    daemon_with(Engine::new(PPChecker::new()), workers, queue_depth, jsonl, 4 * 1024 * 1024)
}

fn daemon_with(
    engine: Engine,
    workers: usize,
    queue_depth: usize,
    jsonl: bool,
    max_body_bytes: usize,
) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jsonl_addr: jsonl.then(|| "127.0.0.1:0".to_string()),
        workers,
        queue_depth,
        max_body_bytes,
    };
    Server::start(engine, config).expect("daemon boots")
}

fn shut_down(handle: ServerHandle) {
    handle.shutdown();
    handle.join();
}

fn number(doc: &Value, path: &[&str]) -> f64 {
    let mut node = doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("metrics missing {path:?}"));
    }
    node.as_f64().unwrap_or_else(|| panic!("{path:?} is not a number"))
}

#[test]
fn check_roundtrips_and_second_pass_hits_warm_caches() {
    let dataset = small_dataset(11, 3);
    let handle = daemon_with(Engine::new(dataset.make_checker()), 2, 4, false, 4 * 1024 * 1024);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Cold pass: every app analyzed from scratch.
    for app in dataset.iter_apps() {
        let (status, body) = client.check(app).unwrap();
        assert_eq!(status, 200, "body: {body}");
        assert!(body.contains("\"ok\":true"), "body: {body}");
        assert!(body
            .contains(&format!("\"package\":\"{}\"", ppchecker_serve::json::escape(&app.package))));
    }
    // Warm pass: identical texts and libs must be served from the caches.
    for app in dataset.iter_apps() {
        let (status, _) = client.check(app).unwrap();
        assert_eq!(status, 200);
    }

    let metrics = client.metrics().unwrap();
    assert!(number(&metrics, &["caches", "policy", "hits"]) > 0.0, "policy cache never hit");
    assert!(
        number(&metrics, &["caches", "taint_summaries", "hits"]) > 0.0,
        "taint summary cache never hit"
    );
    assert!(number(&metrics, &["caches", "esa_vectors", "hits"]) > 0.0, "esa cache never hit");
    assert!(number(&metrics, &["requests", "checks_ok"]) >= 6.0);
    assert!(number(&metrics, &["interner", "symbols"]) > 0.0);
    assert!(number(&metrics, &["interner", "soft_cap_bytes"]) > 0.0);
    shut_down(handle);
}

#[test]
fn malformed_json_gets_400_and_connection_survives() {
    let handle = daemon(1, 2, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let (status, body) = client.request("POST", "/check", "this is not json").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("error"));
    // Keep-alive holds: the same connection still serves requests.
    let (status, body) = client.healthz().unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));

    let metrics = client.metrics().unwrap();
    assert!(number(&metrics, &["requests", "malformed"]) >= 1.0);
    shut_down(handle);
}

#[test]
fn malformed_http_gets_400_then_close() {
    let handle = daemon(1, 2, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.send_raw(b"THIS IS NOT HTTP AT ALL\r\n\r\n").unwrap();
    let (status, _) = client.read_response().unwrap();
    assert_eq!(status, 400);
    // The daemon closed the connection; the next read sees EOF.
    assert!(client.read_response().is_err());
    shut_down(handle);
}

#[test]
fn oversized_body_gets_413_without_reading_it() {
    let handle = daemon_with(Engine::new(PPChecker::new()), 1, 2, false, 1024);
    let mut client = Client::connect(handle.addr()).unwrap();
    let big = "x".repeat(4096);
    let (status, body) = client.request("POST", "/check", &big).unwrap();
    assert_eq!(status, 413);
    assert!(body.contains("exceeds cap"));

    let mut probe = Client::connect(handle.addr()).unwrap();
    let metrics = probe.metrics().unwrap();
    assert!(number(&metrics, &["requests", "oversized"]) >= 1.0);
    shut_down(handle);
}

#[test]
fn mid_stream_disconnect_leaves_the_daemon_healthy() {
    let handle = daemon(1, 2, false);
    // Promise a body, send half of it, vanish.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"POST /check HTTP/1.1\r\ncontent-length: 500\r\n\r\nonly a fragment")
            .unwrap();
        stream.flush().unwrap();
    }
    // Disconnect mid-headers too.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"POST /check HTTP/1.1\r\ncontent-len").unwrap();
        stream.flush().unwrap();
    }
    thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(handle.addr()).unwrap();
    let (status, body) = client.healthz().unwrap();
    assert_eq!(status, 200, "daemon unhealthy after disconnects: {body}");
    shut_down(handle);
}

#[test]
fn batch_beyond_capacity_is_overloaded_not_a_hang() {
    let dataset = small_dataset(13, 6);
    // Capacity = workers + queue_depth = 2; a 6-app batch can never fit.
    let handle = daemon(1, 1, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let apps: Vec<_> = dataset.iter_apps().cloned().collect();
    let (status, body) = client.batch(&apps).unwrap();
    assert_eq!(status, 429, "body: {body}");
    assert!(body.contains("overloaded"));

    let metrics = client.metrics().unwrap();
    assert!(number(&metrics, &["requests", "overloaded"]) >= 1.0);
    shut_down(handle);
}

#[test]
fn concurrent_checks_against_a_tiny_queue_all_resolve() {
    let dataset = small_dataset(17, 4);
    let handle = daemon(1, 1, false);
    let addr = handle.addr();
    let apps: Vec<_> = dataset.iter_apps().cloned().collect();
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let apps = apps.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut statuses = Vec::new();
                for app in &apps {
                    let (status, _) = client.check(app).unwrap();
                    statuses.push(status);
                }
                (t, statuses)
            })
        })
        .collect();
    for worker in workers {
        let (t, statuses) = worker.join().expect("client thread survived");
        for status in statuses {
            assert!(
                status == 200 || status == 429,
                "thread {t}: unexpected status {status} — checks must resolve or shed, never hang"
            );
        }
    }
    shut_down(handle);
}

#[test]
fn jsonl_preserves_input_order_and_survives_malformed_lines() {
    let dataset = small_dataset(19, 2);
    let handle = daemon(2, 4, true);
    let apps: Vec<_> = dataset.iter_apps().cloned().collect();
    let lines = vec![
        ppchecker_serve::json::app_to_json(&apps[0]),
        "definitely not json".to_string(),
        ppchecker_serve::json::app_to_json(&apps[1]),
    ];
    let client = JsonlClient::connect(handle.jsonl_addr().unwrap()).unwrap();
    let responses = client.send_lines(&lines).unwrap();
    assert_eq!(responses.len(), 3, "one response line per input line: {responses:?}");
    assert!(responses[0].contains("\"ok\":true"));
    assert!(responses[0].contains(&apps[0].package));
    assert!(responses[1].contains("\"ok\":false"));
    assert!(responses[2].contains("\"ok\":true"));
    assert!(responses[2].contains(&apps[1].package));
    shut_down(handle);
}

#[test]
fn graceful_drain_completes_in_flight_work() {
    let dataset = small_dataset(23, 4);
    let handle = daemon(1, 4, false);
    let addr = handle.addr();
    let apps: Vec<_> = dataset.iter_apps().cloned().collect();
    let count = apps.len();
    let in_flight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.batch(&apps).unwrap()
    });
    // Let the batch admit, then pull the plug while it runs.
    thread::sleep(Duration::from_millis(30));
    let mut control = Client::connect(addr).unwrap();
    let (status, body) = control.shutdown().unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("draining"));

    let (status, body) = in_flight.join().expect("batch client survived");
    assert_eq!(status, 200, "in-flight batch must complete through the drain: {body}");
    assert!(body.contains(&format!("\"count\":{count}")));
    // Every admitted app produced a result object.
    assert_eq!(body.matches("\"ok\":").count(), count, "body: {body}");
    handle.join();
}

#[test]
fn unknown_routes_and_wrong_methods_are_refused() {
    let handle = daemon(1, 2, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let (status, _) = client.request("GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/check", "").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.request("POST", "/healthz", "").unwrap();
    assert_eq!(status, 405);
    shut_down(handle);
}

#[test]
fn store_backed_daemon_replays_and_reports_in_metrics() {
    let dataset = small_dataset(31, 2);
    let store_dir = std::env::temp_dir().join(format!("ppserve-store-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = std::sync::Arc::new(ppchecker_store::Store::open(&store_dir).unwrap());
    let engine = Engine::new(dataset.make_checker()).with_store(store);
    let handle = daemon_with(engine, 1, 2, false, 4 * 1024 * 1024);
    let mut client = Client::connect(handle.addr()).unwrap();

    let app = dataset.iter_apps().next().unwrap();
    let (status, first) = client.check(app).unwrap();
    assert_eq!(status, 200, "body: {first}");
    let (status, second) = client.check(app).unwrap();
    assert_eq!(status, 200);
    // The replay carries zeroed stage timings (no stages ran), so
    // compare the response bodies up to the timings section.
    let report_part = |body: &str| {
        body.split_once(",\"timings_us\"").map(|(r, _)| r.to_string()).unwrap_or_default()
    };
    assert!(!report_part(&first).is_empty(), "body: {first}");
    assert_eq!(
        report_part(&first),
        report_part(&second),
        "replayed report matches the computed one"
    );

    let metrics = client.metrics().unwrap();
    assert!(number(&metrics, &["store", "apps_skipped"]) >= 1.0, "no replay recorded");
    assert!(number(&metrics, &["store", "reports", "writes"]) >= 1.0);
    shut_down(handle);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn storeless_daemon_reports_a_null_store_section() {
    let handle = daemon(1, 2, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.get("store").is_some(), "store key must exist even when null");
    assert!(metrics.get("store").unwrap().as_f64().is_none(), "storeless daemon has null store");
    shut_down(handle);
}

#[test]
fn metrics_document_is_well_formed_json_with_span_quantiles() {
    let dataset = small_dataset(29, 1);
    let handle = daemon(1, 2, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let app = dataset.iter_apps().next().unwrap();
    let (status, _) = client.check(app).unwrap();
    assert_eq!(status, 200);
    let metrics = client.metrics().unwrap();
    // Request handling and check pipeline spans both appear with
    // quantile fields once traffic has flowed.
    let spans = metrics.get("spans").expect("spans object");
    let request_span = spans.get("serve.request").expect("serve.request span recorded");
    assert!(number(request_span, &["count"]) >= 1.0);
    assert!(request_span.get("p50_us").is_some());
    assert!(request_span.get("p99_us").is_some());
    assert!(spans.get("app.check").is_some(), "engine span missing from /metrics");
    shut_down(handle);
}
