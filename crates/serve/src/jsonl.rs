//! The bulk transport: JSONL over a raw TCP stream.
//!
//! One wire app object per input line, one wire result object per
//! output line, **in input order**. Unlike HTTP's fail-fast `429`, this
//! transport admits with backpressure ([`WorkerPool::admit_blocking`]):
//! a bulk client streaming a corpus should stall, not retry. Lines still
//! pipeline through the pool — up to the queue capacity are in flight at
//! once; only the *output* is sequenced.
//!
//! Malformed lines don't poison the stream: each produces an in-order
//! `{"ok":false,…}` line and processing continues with the next line.
//!
//! [`WorkerPool::admit_blocking`]: ppchecker_engine::WorkerPool::admit_blocking

use crate::json;
use crate::server::{PatientReader, Shared};
use ppchecker_engine::AdmitError;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Serves one JSONL connection: the calling thread reads and admits,
/// a writer thread sequences and responds.
pub(crate) fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(PatientReader { stream, shared: Arc::clone(&shared) });

    let (tx, rx) = mpsc::sync_channel::<(u64, String)>(shared.pool.stats().capacity.max(1));
    let writer_thread = thread::Builder::new()
        .name("ppchecker-jsonl-writer".to_string())
        .spawn(move || write_in_order(&mut writer, rx))
        .expect("spawn jsonl writer");

    read_and_admit(&shared, reader, &tx);
    drop(tx);
    let _ = writer_thread.join();
}

/// Reads lines, admits each against the pool, and hands jobs their
/// output sequence number. Returns at EOF, on drain, or when the line
/// cap is exceeded (resync after an oversized line is impossible).
fn read_and_admit(
    shared: &Arc<Shared>,
    reader: BufReader<PatientReader>,
    tx: &mpsc::SyncSender<(u64, String)>,
) {
    let max_line = shared.config.max_body_bytes;
    let mut seq = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.counters.jsonl_lines.fetch_add(1, Ordering::Relaxed);
        if line.len() > max_line {
            shared.counters.oversized.fetch_add(1, Ordering::Relaxed);
            let message = format!("line of {} bytes exceeds cap of {max_line}", line.len());
            let _ = tx.send((seq, error_line(&message)));
            return;
        }
        let parsed = json::parse(&line).and_then(|doc| json::parse_app(&doc));
        let app = match parsed {
            Ok(app) => app,
            Err(message) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((seq, error_line(&message)));
                seq += 1;
                continue;
            }
        };
        let mut ticket = match shared.pool.admit_blocking(1) {
            Ok(ticket) => ticket,
            Err(AdmitError::Draining) => {
                let _ = tx.send((seq, error_line("draining")));
                return;
            }
            Err(AdmitError::Overloaded) => {
                // admit_blocking only fails fast when the pool is gone;
                // treat it like drain.
                shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((seq, error_line("overloaded")));
                return;
            }
        };
        shared.submit_check(&mut ticket, app, seq, tx.clone());
        seq += 1;
    }
}

fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(message))
}

/// Receives `(seq, json)` results in completion order and writes them in
/// sequence order, holding early arrivals in a reorder buffer.
fn write_in_order(writer: &mut impl Write, rx: mpsc::Receiver<(u64, String)>) {
    let mut next = 0u64;
    let mut pending = BTreeMap::new();
    for (seq, line) in rx {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                return;
            }
            next += 1;
        }
    }
    // A vanished job (worker lost) would leave a gap; flush whatever
    // remains in order rather than dropping completed results.
    for (_, line) in pending {
        if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reorders_out_of_order_results() {
        let (tx, rx) = mpsc::sync_channel(8);
        tx.send((2, "c".to_string())).unwrap();
        tx.send((0, "a".to_string())).unwrap();
        tx.send((1, "b".to_string())).unwrap();
        drop(tx);
        let mut out = Vec::new();
        write_in_order(&mut out, rx);
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\n");
    }

    #[test]
    fn writer_flushes_trailing_results_past_a_gap() {
        let (tx, rx) = mpsc::sync_channel(8);
        tx.send((1, "b".to_string())).unwrap();
        tx.send((2, "c".to_string())).unwrap();
        drop(tx);
        let mut out = Vec::new();
        write_in_order(&mut out, rx);
        assert_eq!(String::from_utf8(out).unwrap(), "b\nc\n");
    }

    #[test]
    fn error_lines_are_valid_json() {
        let line = error_line("bad \"thing\"");
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("ok").and_then(json::Value::as_f64), None);
        assert!(doc.get("error").and_then(json::Value::as_str).unwrap().contains("bad"));
    }
}
