//! Thin clients for both transports, used by the test matrix, the CI
//! smoke check, and the throughput bench. Deliberately synchronous:
//! one request in flight per [`Client`]; drive several clients from
//! several threads to generate load.

use crate::json;
use ppchecker_core::AppInput;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A persistent keep-alive HTTP connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon's HTTP address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one request and reads the full response. Returns the status
    /// code and body.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: ppchecker\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends raw bytes down the socket verbatim — for tests that need to
    /// speak something other than well-formed HTTP.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response off the socket (status line, headers,
    /// `Content-Length` body).
    pub fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        let status: u16 =
            line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {line:?}"))
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed mid-headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|body| (status, body))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    /// `POST /check` for one app.
    pub fn check(&mut self, app: &AppInput) -> io::Result<(u16, String)> {
        self.request("POST", "/check", &json::app_to_json(app))
    }

    /// `POST /batch` for a slice of apps.
    pub fn batch(&mut self, apps: &[AppInput]) -> io::Result<(u16, String)> {
        let entries: Vec<String> = apps.iter().map(json::app_to_json).collect();
        self.request("POST", "/batch", &format!("{{\"apps\":[{}]}}", entries.join(",")))
    }

    /// `GET /metrics`, parsed into a JSON value.
    pub fn metrics(&mut self) -> io::Result<json::Value> {
        let (status, body) = self.request("GET", "/metrics", "")?;
        if status != 200 {
            return Err(io::Error::other(format!("metrics returned {status}")));
        }
        json::parse(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> io::Result<(u16, String)> {
        self.request("GET", "/healthz", "")
    }

    /// `POST /shutdown` — asks the daemon to drain.
    pub fn shutdown(&mut self) -> io::Result<(u16, String)> {
        self.request("POST", "/shutdown", "")
    }
}

/// A client for the JSONL-over-TCP bulk transport.
pub struct JsonlClient {
    stream: TcpStream,
}

impl JsonlClient {
    /// Connects to a running daemon's JSONL address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<JsonlClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(JsonlClient { stream })
    }

    /// Streams `apps` down the pipe, half-closes the write side, and
    /// collects the response lines (one per app, in input order).
    pub fn check_all(self, apps: &[AppInput]) -> io::Result<Vec<String>> {
        let lines: Vec<String> = apps.iter().map(json::app_to_json).collect();
        self.send_lines(&lines)
    }

    /// Raw form of [`check_all`](JsonlClient::check_all): sends arbitrary
    /// lines (e.g. deliberately malformed ones) and returns the responses.
    pub fn send_lines(mut self, lines: &[String]) -> io::Result<Vec<String>> {
        for line in lines {
            writeln!(self.stream, "{line}")?;
        }
        self.stream.flush()?;
        self.stream.shutdown(std::net::Shutdown::Write)?;
        let mut responses = Vec::new();
        for line in BufReader::new(&self.stream).lines() {
            responses.push(line?);
        }
        Ok(responses)
    }
}
