//! The versioned wire schema. All report/outcome/delta serialization in
//! the workspace funnels through one module per schema revision, so the
//! daemon, the CLI's `--format json`, batch JSONL, and `diff` delta
//! output can never drift apart.
//!
//! [`v2`] is the current revision: outcome envelopes carry a `schema`
//! tag, reports append a `findings` array when successor-literature
//! detectors fire, and wire app objects may declare Data-Safety
//! `labels`. Every addition is append-only and conditional, so v1
//! clients parse v2 documents unchanged (unknown keys are skipped,
//! absent arrays mean absent findings).

/// Schema revision 2.
pub mod v2 {
    use ppchecker_apk::{packer, Apk, Manifest};
    use ppchecker_core::{
        AppInput, Channel, CheckOutcome, DataSafetyLabel, Error, FindingPayload, Report,
        StageTimings,
    };
    use ppchecker_engine::BatchDelta;

    pub use ppchecker_obs::json::{escape, escape_into, parse, Value};

    /// The schema tag stamped on every outcome envelope. Bump this (and
    /// add a `v3` module) for the next wire revision.
    pub const SCHEMA: u64 = 2;

    /// Decodes one wire app object into an [`AppInput`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on missing keys or
    /// manifest/dex/label parse failures.
    pub fn parse_app(value: &Value) -> Result<AppInput, String> {
        let field = |key: &str| -> Result<&str, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let manifest =
            Manifest::from_text(field("manifest")?).map_err(|e| format!("manifest: {e}"))?;
        let dex = packer::deserialize(field("dex")?).map_err(|e| format!("dex: {e}"))?;
        let package = match value.get("package").and_then(Value::as_str) {
            Some(p) => p.to_string(),
            None => manifest.package.clone(),
        };
        // Optional since v2: structured Data-Safety label declarations.
        let labels = match value.get("labels") {
            None => Vec::new(),
            Some(Value::Arr(items)) => {
                let mut labels = Vec::with_capacity(items.len());
                for item in items {
                    let name = item
                        .as_str()
                        .ok_or_else(|| "labels entries must be strings".to_string())?;
                    labels.push(
                        DataSafetyLabel::parse(name)
                            .ok_or_else(|| format!("unknown label {name:?}"))?,
                    );
                }
                labels
            }
            Some(_) => return Err("labels must be an array".to_string()),
        };
        Ok(AppInput {
            package,
            policy_html: field("policy_html")?.to_string(),
            description: field("description")?.to_string(),
            apk: Apk::new(manifest, dex),
            labels,
        })
    }

    /// Encodes an [`AppInput`] as a wire app object (the client side of
    /// [`parse_app`]). `labels` is emitted only when declared, keeping
    /// label-free objects byte-identical to v1.
    pub fn app_to_json(app: &AppInput) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"package\":\"");
        escape_into(&mut out, &app.package);
        out.push_str("\",\"policy_html\":\"");
        escape_into(&mut out, &app.policy_html);
        out.push_str("\",\"description\":\"");
        escape_into(&mut out, &app.description);
        out.push_str("\",\"manifest\":\"");
        escape_into(&mut out, &app.apk.manifest.to_text());
        out.push_str("\",\"dex\":\"");
        escape_into(
            &mut out,
            &packer::serialize(&app.apk.dex().expect("wire apps carry plain dex")),
        );
        out.push('"');
        if !app.labels.is_empty() {
            out.push_str(",\"labels\":[");
            for (n, label) in app.labels.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                out.push('"');
                // Canonical phrases are fixed identifiers, nothing to escape.
                out.push_str(label.info.canonical_phrase());
                out.push('"');
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Renders a report as a JSON object (also re-exported by the CLI
    /// for its `--json` and JSONL outputs).
    pub fn report_to_json(report: &Report) -> String {
        let mut out = String::with_capacity(256);
        report_to_json_into(&mut out, report);
        out
    }

    /// [`report_to_json`] writing into a caller-owned buffer. The batch
    /// writers reuse one buffer per worker, so steady-state
    /// serialization allocates nothing.
    pub fn report_to_json_into(out: &mut String, report: &Report) {
        use std::fmt::Write;
        out.push_str("{\"package\":\"");
        escape_into(out, &report.package);
        let _ = write!(
            out,
            "\",\"incomplete\":{},\"incorrect\":{},\"inconsistent\":{},\"has_disclaimer\":{}",
            report.is_incomplete(),
            report.is_incorrect(),
            report.is_inconsistent(),
            report.has_disclaimer,
        );
        out.push_str(",\"libs\":[");
        for (n, lib) in report.libs.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, lib);
            out.push('"');
        }
        out.push_str("],\"missed\":[");
        for (n, m) in report.missed.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            // PrivateInfo and VerbCategory display as fixed identifiers with
            // nothing to escape, so they write straight through.
            let _ = write!(
                out,
                "{{\"info\":\"{}\",\"channel\":\"{}\",\"retained\":{},\"permission\":",
                m.info,
                match m.channel {
                    Channel::Description => "description",
                    Channel::Code => "code",
                },
                m.retained,
            );
            match &m.permission {
                Some(p) => {
                    out.push('"');
                    escape_into(out, p.short_name());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"incorrect_findings\":[");
        for (n, f) in report.incorrect.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"info\":\"{}\",\"category\":\"{}\",\"sentence\":\"",
                f.info, f.category
            );
            escape_into(out, &f.sentence);
            out.push_str("\"}");
        }
        out.push_str("],\"inconsistencies\":[");
        for (n, i) in report.inconsistencies.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("{\"lib\":\"");
            escape_into(out, &i.lib_id);
            let _ = write!(out, "\",\"category\":\"{}\",\"app_sentence\":\"", i.category);
            escape_into(out, &i.app_sentence);
            out.push_str("\",\"lib_sentence\":\"");
            escape_into(out, &i.lib_sentence);
            out.push_str("\"}");
        }
        out.push(']');
        // Since v2: findings from detectors beyond the paper's three,
        // emitted only when present so default-registry reports stay
        // byte-identical to v1.
        if !report.findings.is_empty() {
            out.push_str(",\"findings\":[");
            for (n, finding) in report.findings.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"detector\":\"{}\"", finding.detector);
                match &finding.payload {
                    FindingPayload::DataSafety(d) => {
                        let _ = write!(
                            out,
                            ",\"kind\":\"{}\",\"info\":\"{}\"",
                            d.kind.as_str(),
                            d.info
                        );
                    }
                    FindingPayload::Purpose(p) => {
                        let _ = write!(
                            out,
                            ",\"kind\":\"{}\",\"purpose\":\"{}\"",
                            p.kind.as_str(),
                            p.purpose
                        );
                        if let ppchecker_core::PurposeKind::Contradicted { lib_id } = &p.kind {
                            out.push_str(",\"lib\":\"");
                            escape_into(out, lib_id);
                            out.push('"');
                        }
                        out.push_str(",\"sentence\":\"");
                        escape_into(out, &p.sentence);
                        out.push('"');
                    }
                    FindingPayload::Boilerplate(b) => {
                        out.push_str(",\"kind\":\"near-duplicate\",\"family\":\"");
                        escape_into(out, &b.family);
                        // Fixed 4 decimals: similarity is a 64-slot
                        // fraction, so this is exact enough and stable.
                        let _ = write!(out, "\",\"similarity\":{:.4}", b.similarity);
                    }
                    // Paper payloads never appear here (they fold into the
                    // classic arrays above); render the id alone if a
                    // custom registry routes one through anyway.
                    _ => {}
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
    }

    fn timings_to_json_into(out: &mut String, t: &StageTimings) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"policy\":{},\"description\":{},\"static\":{},\"matching\":{},\"total\":{}}}",
            t.policy.as_micros(),
            t.description.as_micros(),
            t.static_analysis.as_micros(),
            t.matching.as_micros(),
            t.total().as_micros(),
        );
    }

    /// Renders one check's result — report or structured pipeline error —
    /// as the wire result object shared by `/check`, `/batch` entries,
    /// and JSONL response lines. Since v2 the envelope carries a
    /// `schema` tag; v1 clients skip the unknown key.
    pub fn outcome_to_json(package: &str, outcome: &Result<CheckOutcome, Error>) -> String {
        let mut out = String::with_capacity(256);
        outcome_to_json_into(&mut out, package, outcome);
        out
    }

    /// [`outcome_to_json`] writing into a caller-owned buffer (see
    /// [`report_to_json_into`]).
    pub fn outcome_to_json_into(
        out: &mut String,
        package: &str,
        outcome: &Result<CheckOutcome, Error>,
    ) {
        use std::fmt::Write;
        match outcome {
            Ok(checked) => {
                let _ = write!(out, "{{\"ok\":true,\"schema\":{SCHEMA},\"package\":\"");
                escape_into(out, &checked.report.package);
                out.push_str("\",\"report\":");
                report_to_json_into(out, &checked.report);
                out.push_str(",\"timings_us\":");
                timings_to_json_into(out, &checked.timings.unwrap_or_default());
                out.push('}');
            }
            Err(error) => {
                let _ = write!(out, "{{\"ok\":false,\"schema\":{SCHEMA},\"package\":\"");
                escape_into(out, package);
                let _ = write!(out, "\",\"stage\":\"{}\",\"error\":\"", error.stage());
                escape_into(out, &error.to_string());
                out.push_str("\"}");
            }
        }
    }

    /// Renders a batch-to-batch verdict delta (the `diff` command's
    /// machine form) on the same schema revision as outcomes.
    pub fn delta_to_json(delta: &BatchDelta) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":{SCHEMA},\"unchanged\":{},\"changed\":{},\"regressed\":{},\
             \"added\":{},\"removed\":{},\"deltas\":[",
            delta.unchanged,
            delta.changed(),
            delta.regressed(),
            delta.added(),
            delta.removed(),
        );
        for (n, d) in delta.deltas.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("{\"package\":\"");
            escape_into(&mut out, &d.package);
            let _ = write!(
                out,
                "\",\"kind\":\"{}\"",
                match d.kind {
                    ppchecker_engine::DeltaKind::Added => "added",
                    ppchecker_engine::DeltaKind::Removed => "removed",
                    ppchecker_engine::DeltaKind::Changed => "changed",
                }
            );
            if let Some(before) = &d.before {
                out.push_str(",\"before\":\"");
                let _ = write!(out, "{before}");
                out.push('"');
            }
            if let Some(after) = &d.after {
                out.push_str(",\"after\":\"");
                let _ = write!(out, "{after}");
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// A top-level error body, e.g. `{"error":"overloaded"}`.
    pub fn error_body(message: &str) -> String {
        format!("{{\"error\":\"{}\"}}\n", escape(message))
    }
}

#[cfg(test)]
mod tests {
    use super::v2::*;
    use ppchecker_core::{
        BoilerplateFinding, DataSafetyFinding, DataSafetyKind, DetectorId, Finding, FindingPayload,
        PurposeFinding, PurposeKind, Report,
    };

    #[test]
    fn findings_array_only_appears_when_present() {
        let clean = report_to_json(&Report::default());
        assert!(!clean.contains("\"findings\""), "{clean}");
        let report = Report {
            package: "com.x".into(),
            findings: vec![
                Finding {
                    detector: DetectorId::DataSafety,
                    payload: FindingPayload::DataSafety(DataSafetyFinding {
                        info: ppchecker_apk::PrivateInfo::Location,
                        kind: DataSafetyKind::LabelOmitsCollection,
                    }),
                },
                Finding {
                    detector: DetectorId::Purpose,
                    payload: FindingPayload::Purpose(PurposeFinding {
                        purpose: ppchecker_core::Purpose::Functionality,
                        kind: PurposeKind::Contradicted { lib_id: "admob".into() },
                        sentence: "only for app functionality".into(),
                    }),
                },
                Finding {
                    detector: DetectorId::Boilerplate,
                    payload: FindingPayload::Boilerplate(BoilerplateFinding {
                        family: "com.root".into(),
                        similarity: 0.9375,
                    }),
                },
            ],
            ..Report::default()
        };
        let json = report_to_json(&report);
        assert!(json.contains(
            "\"findings\":[{\"detector\":\"data-safety\",\
             \"kind\":\"label-omits-collection\",\"info\":\"location\"}"
        ));
        assert!(json.contains("\"detector\":\"purpose\",\"kind\":\"contradicted\""));
        assert!(json.contains("\"lib\":\"admob\""));
        assert!(json.contains("\"similarity\":0.9375"));
        assert!(parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn outcome_envelope_carries_the_schema_tag() {
        let ok: Result<ppchecker_core::CheckOutcome, ppchecker_core::Error> =
            Ok(ppchecker_core::CheckOutcome {
                report: Report { package: "com.x".into(), ..Report::default() },
                timings: None,
                trace: None,
            });
        let json = outcome_to_json("com.x", &ok);
        assert!(json.starts_with("{\"ok\":true,\"schema\":2,"), "{json}");
        let err: Result<ppchecker_core::CheckOutcome, ppchecker_core::Error> =
            Err(ppchecker_core::Error::worker("boom"));
        let json = outcome_to_json("com.y", &err);
        assert!(json.starts_with("{\"ok\":false,\"schema\":2,"), "{json}");
    }

    #[test]
    fn delta_renders_on_the_same_schema() {
        let delta = ppchecker_engine::BatchDelta::default();
        let json = delta_to_json(&delta);
        assert!(json.starts_with("{\"schema\":2,"), "{json}");
        assert!(json.contains("\"deltas\":[]"));
        assert!(parse(&json).is_ok());
    }
}
