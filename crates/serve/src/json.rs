//! Compatibility facade over the current wire schema revision.
//!
//! All encode/decode now lives in [`crate::wire`], one module per schema
//! revision; this module re-exports the current revision
//! ([`crate::wire::v2`]) so existing paths — `ppchecker_serve::json::*`
//! and the CLI's `ppchecker_cli::json` shim — keep compiling unchanged.
//!
//! ## Request shape
//!
//! One app per request object; the field formats are exactly the CLI's
//! file formats (textual manifest, textual dex):
//!
//! ```json
//! {
//!   "package": "com.example.app",        // optional; manifest wins
//!   "policy_html": "<p>we collect…</p>",
//!   "description": "An app that…",
//!   "manifest": "package com.example.app\npermission …",
//!   "dex": "class com.example.app.Main\n…",
//!   "labels": ["location"]               // optional Data-Safety labels
//! }
//! ```
//!
//! `POST /batch` and the JSONL transport reuse the same object — batch
//! wraps a list in `{"apps": […]}`, JSONL sends one object per line.

pub use crate::wire::v2::{
    app_to_json, delta_to_json, error_body, escape, escape_into, outcome_to_json,
    outcome_to_json_into, parse, parse_app, report_to_json, report_to_json_into, Value, SCHEMA,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, Manifest, PrivateInfo};
    use ppchecker_core::{
        AppInput, Channel, CheckOutcome, DataSafetyLabel, Error, MissedInfo, Report,
    };

    fn wire_app() -> AppInput {
        let mut manifest = Manifest::new("com.wire.app");
        manifest.add_permission(ppchecker_apk::Permission::AccessFineLocation);
        manifest.add_component(ppchecker_apk::ComponentKind::Activity, "com.wire.app.Main", true);
        let dex = ppchecker_apk::Dex::builder()
            .class("com.wire.app.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        AppInput {
            package: "com.wire.app".to_string(),
            policy_html: "<p>we \"collect\" your location.</p>".to_string(),
            description: "A handy\nmulti-line app.".to_string(),
            apk: Apk::new(manifest, dex),
            labels: Vec::new(),
        }
    }

    #[test]
    fn app_round_trips_through_the_wire() {
        let app = wire_app();
        let doc = parse(&app_to_json(&app)).unwrap();
        let back = parse_app(&doc).unwrap();
        assert_eq!(back.package, app.package);
        assert_eq!(back.policy_html, app.policy_html);
        assert_eq!(back.description, app.description);
        assert_eq!(back.apk.manifest, app.apk.manifest);
        assert_eq!(back.apk.dex().unwrap(), app.apk.dex().unwrap());
        assert!(back.labels.is_empty());
    }

    #[test]
    fn labels_round_trip_and_unknown_labels_error() {
        let mut app = wire_app();
        app.labels = vec![
            DataSafetyLabel::new(PrivateInfo::Location),
            DataSafetyLabel::new(PrivateInfo::DeviceId),
        ];
        let json = app_to_json(&app);
        assert!(json.contains("\"labels\":[\"location\""), "{json}");
        let back = parse_app(&parse(&json).unwrap()).unwrap();
        assert_eq!(back.labels, app.labels);

        let bad = json.replacen("\"location\"", "\"blood type\"", 1);
        let err = parse_app(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("unknown label"), "{err}");
        assert!(err.contains("blood type"), "{err}");
    }

    #[test]
    fn label_free_apps_omit_the_labels_key() {
        let json = app_to_json(&wire_app());
        assert!(!json.contains("labels"), "{json}");
    }

    #[test]
    fn package_defaults_to_the_manifest() {
        let app = wire_app();
        let json = app_to_json(&app).replacen("\"package\":\"com.wire.app\",", "", 1);
        let back = parse_app(&parse(&json).unwrap()).unwrap();
        assert_eq!(back.package, "com.wire.app");
    }

    #[test]
    fn missing_fields_name_the_key() {
        let err = parse_app(&parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("manifest"), "{err}");
        let err = parse_app(&parse(r#"{"manifest":"package a","dex":""}"#).unwrap())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("policy_html") || err.contains("dex"), "{err}");
    }

    #[test]
    fn bad_manifest_and_dex_are_named() {
        let err =
            parse_app(&parse(r#"{"manifest":"bogus directive","dex":""}"#).unwrap()).unwrap_err();
        assert!(err.starts_with("manifest:"), "{err}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn empty_report_renders() {
        let json = report_to_json(&Report::default());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"incomplete\":false"));
        assert!(json.contains("\"missed\":[]"));
    }

    #[test]
    fn findings_render_with_fields() {
        let report = Report {
            package: "com.x".to_string(),
            missed: vec![MissedInfo {
                info: PrivateInfo::Location,
                channel: Channel::Code,
                permission: Some(ppchecker_apk::Permission::AccessFineLocation),
                retained: true,
            }],
            libs: vec!["admob".to_string()],
            ..Report::default()
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"info\":\"location\""));
        assert!(json.contains("\"retained\":true"));
        assert!(json.contains("\"permission\":\"ACCESS_FINE_LOCATION\""));
        assert!(json.contains("\"libs\":[\"admob\"]"));
    }

    #[test]
    fn outcome_renders_ok_and_error() {
        let ok = Ok(CheckOutcome {
            report: Report { package: "com.x".into(), ..Report::default() },
            timings: None,
            trace: None,
        });
        let json = outcome_to_json("com.x", &ok);
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\"schema\":2"));
        assert!(json.contains("\"timings_us\""));
        assert!(parse(&json).is_ok());

        let err: Result<CheckOutcome, Error> = Err(Error::worker("boom"));
        let json = outcome_to_json("com.y", &err);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"schema\":2"));
        assert!(json.contains("\"stage\":\"batch\""));
        assert!(json.contains("boom"));
        assert!(parse(&json).is_ok());
    }
}
