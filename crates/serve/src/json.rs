//! The wire schema: JSON encode/decode for check requests and outcomes.
//!
//! The reader side is [`ppchecker_obs::json`] — the recursive-descent
//! parser the `trace-check` validator introduced, generalized here into
//! the daemon's request decoder. The writer side is hand-rolled
//! formatting in the style of the CLI's JSONL output (RFC 8259 string
//! escaping, stable key order), so the whole wire layer stays inside the
//! workspace's zero-dependency budget.
//!
//! ## Request shape
//!
//! One app per request object; the field formats are exactly the CLI's
//! file formats (textual manifest, textual dex):
//!
//! ```json
//! {
//!   "package": "com.example.app",        // optional; manifest wins
//!   "policy_html": "<p>we collect…</p>",
//!   "description": "An app that…",
//!   "manifest": "package com.example.app\npermission …",
//!   "dex": "class com.example.app.Main\n…"
//! }
//! ```
//!
//! `POST /batch` and the JSONL transport reuse the same object — batch
//! wraps a list in `{"apps": […]}`, JSONL sends one object per line.

use ppchecker_apk::{packer, Apk, Manifest};
use ppchecker_core::{AppInput, CheckOutcome, Error, Report, StageTimings};

pub use ppchecker_obs::json::{escape, escape_into, parse, Value};

use ppchecker_core::Channel;

/// Decodes one wire app object into an [`AppInput`].
///
/// # Errors
///
/// Returns a message naming the offending field on missing keys or
/// manifest/dex parse failures.
pub fn parse_app(value: &Value) -> Result<AppInput, String> {
    let field = |key: &str| -> Result<&str, String> {
        value
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing or non-string field {key:?}"))
    };
    let manifest = Manifest::from_text(field("manifest")?).map_err(|e| format!("manifest: {e}"))?;
    let dex = packer::deserialize(field("dex")?).map_err(|e| format!("dex: {e}"))?;
    let package = match value.get("package").and_then(Value::as_str) {
        Some(p) => p.to_string(),
        None => manifest.package.clone(),
    };
    Ok(AppInput {
        package,
        policy_html: field("policy_html")?.to_string(),
        description: field("description")?.to_string(),
        apk: Apk::new(manifest, dex),
    })
}

/// Encodes an [`AppInput`] as a wire app object (the client side of
/// [`parse_app`]).
pub fn app_to_json(app: &AppInput) -> String {
    format!(
        "{{\"package\":\"{}\",\"policy_html\":\"{}\",\"description\":\"{}\",\
         \"manifest\":\"{}\",\"dex\":\"{}\"}}",
        escape(&app.package),
        escape(&app.policy_html),
        escape(&app.description),
        escape(&app.apk.manifest.to_text()),
        escape(&packer::serialize(&app.apk.dex().expect("wire apps carry plain dex"))),
    )
}

/// Renders a report as a JSON object (also re-exported by the CLI for
/// its `--json` and JSONL outputs).
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::with_capacity(256);
    report_to_json_into(&mut out, report);
    out
}

/// [`report_to_json`] writing into a caller-owned buffer. The batch
/// writers reuse one buffer per worker, so steady-state serialization
/// allocates nothing — the intermediate per-finding `String`s and joins
/// of the old formatter are gone.
pub fn report_to_json_into(out: &mut String, report: &Report) {
    use std::fmt::Write;
    out.push_str("{\"package\":\"");
    escape_into(out, &report.package);
    let _ = write!(
        out,
        "\",\"incomplete\":{},\"incorrect\":{},\"inconsistent\":{},\"has_disclaimer\":{}",
        report.is_incomplete(),
        report.is_incorrect(),
        report.is_inconsistent(),
        report.has_disclaimer,
    );
    out.push_str(",\"libs\":[");
    for (n, lib) in report.libs.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, lib);
        out.push('"');
    }
    out.push_str("],\"missed\":[");
    for (n, m) in report.missed.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        // PrivateInfo and VerbCategory display as fixed identifiers with
        // nothing to escape, so they write straight through.
        let _ = write!(
            out,
            "{{\"info\":\"{}\",\"channel\":\"{}\",\"retained\":{},\"permission\":",
            m.info,
            match m.channel {
                Channel::Description => "description",
                Channel::Code => "code",
            },
            m.retained,
        );
        match &m.permission {
            Some(p) => {
                out.push('"');
                escape_into(out, p.short_name());
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"incorrect_findings\":[");
    for (n, f) in report.incorrect.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"info\":\"{}\",\"category\":\"{}\",\"sentence\":\"",
            f.info, f.category
        );
        escape_into(out, &f.sentence);
        out.push_str("\"}");
    }
    out.push_str("],\"inconsistencies\":[");
    for (n, i) in report.inconsistencies.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str("{\"lib\":\"");
        escape_into(out, &i.lib_id);
        let _ = write!(out, "\",\"category\":\"{}\",\"app_sentence\":\"", i.category);
        escape_into(out, &i.app_sentence);
        out.push_str("\",\"lib_sentence\":\"");
        escape_into(out, &i.lib_sentence);
        out.push_str("\"}");
    }
    out.push_str("]}");
}

fn timings_to_json_into(out: &mut String, t: &StageTimings) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"policy\":{},\"description\":{},\"static\":{},\"matching\":{},\"total\":{}}}",
        t.policy.as_micros(),
        t.description.as_micros(),
        t.static_analysis.as_micros(),
        t.matching.as_micros(),
        t.total().as_micros(),
    );
}

/// Renders one check's result — report or structured pipeline error —
/// as the wire result object shared by `/check`, `/batch` entries, and
/// JSONL response lines.
pub fn outcome_to_json(package: &str, outcome: &Result<CheckOutcome, Error>) -> String {
    let mut out = String::with_capacity(256);
    outcome_to_json_into(&mut out, package, outcome);
    out
}

/// [`outcome_to_json`] writing into a caller-owned buffer (see
/// [`report_to_json_into`]).
pub fn outcome_to_json_into(
    out: &mut String,
    package: &str,
    outcome: &Result<CheckOutcome, Error>,
) {
    use std::fmt::Write;
    match outcome {
        Ok(checked) => {
            out.push_str("{\"ok\":true,\"package\":\"");
            escape_into(out, &checked.report.package);
            out.push_str("\",\"report\":");
            report_to_json_into(out, &checked.report);
            out.push_str(",\"timings_us\":");
            timings_to_json_into(out, &checked.timings.unwrap_or_default());
            out.push('}');
        }
        Err(error) => {
            out.push_str("{\"ok\":false,\"package\":\"");
            escape_into(out, package);
            let _ = write!(out, "\",\"stage\":\"{}\",\"error\":\"", error.stage());
            escape_into(out, &error.to_string());
            out.push_str("\"}");
        }
    }
}

/// A top-level error body, e.g. `{"error":"overloaded"}`.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::PrivateInfo;
    use ppchecker_core::MissedInfo;

    fn wire_app() -> AppInput {
        let mut manifest = Manifest::new("com.wire.app");
        manifest.add_permission(ppchecker_apk::Permission::AccessFineLocation);
        manifest.add_component(ppchecker_apk::ComponentKind::Activity, "com.wire.app.Main", true);
        let dex = ppchecker_apk::Dex::builder()
            .class("com.wire.app.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        AppInput {
            package: "com.wire.app".to_string(),
            policy_html: "<p>we \"collect\" your location.</p>".to_string(),
            description: "A handy\nmulti-line app.".to_string(),
            apk: Apk::new(manifest, dex),
        }
    }

    #[test]
    fn app_round_trips_through_the_wire() {
        let app = wire_app();
        let doc = parse(&app_to_json(&app)).unwrap();
        let back = parse_app(&doc).unwrap();
        assert_eq!(back.package, app.package);
        assert_eq!(back.policy_html, app.policy_html);
        assert_eq!(back.description, app.description);
        assert_eq!(back.apk.manifest, app.apk.manifest);
        assert_eq!(back.apk.dex().unwrap(), app.apk.dex().unwrap());
    }

    #[test]
    fn package_defaults_to_the_manifest() {
        let app = wire_app();
        let json = app_to_json(&app).replacen("\"package\":\"com.wire.app\",", "", 1);
        let back = parse_app(&parse(&json).unwrap()).unwrap();
        assert_eq!(back.package, "com.wire.app");
    }

    #[test]
    fn missing_fields_name_the_key() {
        let err = parse_app(&parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("manifest"), "{err}");
        let err = parse_app(&parse(r#"{"manifest":"package a","dex":""}"#).unwrap())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("policy_html") || err.contains("dex"), "{err}");
    }

    #[test]
    fn bad_manifest_and_dex_are_named() {
        let err =
            parse_app(&parse(r#"{"manifest":"bogus directive","dex":""}"#).unwrap()).unwrap_err();
        assert!(err.starts_with("manifest:"), "{err}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn empty_report_renders() {
        let json = report_to_json(&Report::default());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"incomplete\":false"));
        assert!(json.contains("\"missed\":[]"));
    }

    #[test]
    fn findings_render_with_fields() {
        let report = Report {
            package: "com.x".to_string(),
            missed: vec![MissedInfo {
                info: PrivateInfo::Location,
                channel: Channel::Code,
                permission: Some(ppchecker_apk::Permission::AccessFineLocation),
                retained: true,
            }],
            libs: vec!["admob".to_string()],
            ..Report::default()
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"info\":\"location\""));
        assert!(json.contains("\"retained\":true"));
        assert!(json.contains("\"permission\":\"ACCESS_FINE_LOCATION\""));
        assert!(json.contains("\"libs\":[\"admob\"]"));
    }

    #[test]
    fn outcome_renders_ok_and_error() {
        let ok = Ok(CheckOutcome {
            report: Report { package: "com.x".into(), ..Report::default() },
            timings: None,
            trace: None,
        });
        let json = outcome_to_json("com.x", &ok);
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\"timings_us\""));
        assert!(parse(&json).is_ok());

        let err: Result<CheckOutcome, Error> = Err(Error::worker("boom"));
        let json = outcome_to_json("com.y", &err);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"stage\":\"batch\""));
        assert!(json.contains("boom"));
        assert!(parse(&json).is_ok());
    }
}
