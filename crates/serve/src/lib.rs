//! # ppchecker-serve
//!
//! The resident analysis daemon: a warm [`ppchecker_engine::Engine`]
//! behind two wire transports, so a fleet of callers amortizes the
//! expensive state — parsed lib policies, the ESA interpretation-vector
//! cache, cross-app taint summaries, the global interner — across the
//! life of one process instead of rebuilding it per invocation.
//!
//! ## Transports
//!
//! - **HTTP/JSON** ([`Server`]): `POST /check` (one app), `POST /batch`
//!   (all-or-nothing admission), `GET /metrics`, `GET /healthz`,
//!   `POST /shutdown`. Interactive callers get fail-fast admission: a
//!   full queue answers `429 {"error":"overloaded"}` immediately.
//! - **JSONL-over-TCP**: one app per line in, one result per line out,
//!   in input order, with *blocking* admission — bulk clients get
//!   backpressure instead of retry loops.
//!
//! Both speak the wire schema in [`json`], both run checks on the
//! engine's resident [`ppchecker_engine::WorkerPool`], and both drain
//! gracefully: `POST /shutdown` or SIGTERM stops admission, finishes
//! every admitted check, and writes every in-flight response before
//! [`ServerHandle::join`] returns.
//!
//! ## Example
//!
//! ```no_run
//! use ppchecker_core::PPChecker;
//! use ppchecker_engine::Engine;
//! use ppchecker_serve::{Client, ServeConfig, Server};
//!
//! let engine = Engine::new(PPChecker::new());
//! let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
//! let handle = Server::start(engine, config).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let (status, body) = client.healthz().unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"status\":\"ok\""));
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! Everything is built on `std::net` plus the workspace's own JSON
//! machinery — the daemon adds no external dependencies.

pub mod client;
pub mod http;
pub mod json;
mod jsonl;
pub mod server;
pub mod wire;

pub use client::{Client, JsonlClient};
pub use server::{Counters, Server, ServerHandle};

use std::sync::atomic::{AtomicBool, Ordering};

/// Daemon configuration: listen addresses, pool sizing, request caps.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// HTTP listen address (`host:port`; port `0` binds ephemerally).
    pub addr: String,
    /// Optional JSONL-over-TCP listen address.
    pub jsonl_addr: Option<String>,
    /// Worker threads in the resident pool.
    pub workers: usize,
    /// Admission slots beyond the workers — the queue. Total capacity is
    /// `workers + queue_depth`; an arriving request past that is
    /// `overloaded`.
    pub queue_depth: usize,
    /// Cap on one HTTP body or JSONL line, in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = ppchecker_engine::available_jobs();
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            jsonl_addr: None,
            workers,
            queue_depth: 2 * workers,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Set by the SIGTERM handler; polled by the accept loops.
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM has been delivered since
/// [`install_sigterm_handler`] ran.
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Installs a SIGTERM handler that initiates a graceful drain (the
/// accept loops poll [`sigterm_received`]). Uses `signal(2)` directly —
/// the handler only stores to an `AtomicBool`, which is async-signal-
/// safe — so no FFI crate is needed. No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm);
    }
}

/// Installs a SIGTERM handler that initiates a graceful drain. No-op on
/// non-Unix targets.
#[cfg(not(unix))]
pub fn install_sigterm_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = ServeConfig::default();
        assert_eq!(config.addr, "127.0.0.1:7171");
        assert!(config.jsonl_addr.is_none());
        assert!(config.workers >= 1);
        assert_eq!(config.queue_depth, 2 * config.workers);
        assert_eq!(config.max_body_bytes, 4 * 1024 * 1024);
    }

    #[test]
    fn sigterm_flag_starts_clear() {
        // The handler install is exercised end-to-end by the wire tests;
        // here just assert the flag's initial state so a future static
        // initializer can't silently flip it.
        assert!(!sigterm_received() || SIGTERM.load(Ordering::SeqCst));
    }
}
