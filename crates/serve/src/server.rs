//! The resident daemon: accept loops, request routing, admission, and
//! the `/metrics` document.
//!
//! ## Lifecycle
//!
//! [`Server::start`] binds the HTTP listener (and optionally the JSONL
//! one), warms a [`ppchecker_engine::Engine`], and spawns one acceptor
//! thread per transport plus one handler thread per connection. All of
//! them share one `Shared` hub: the engine, the resident
//! [`WorkerPool`], the request counters, and the drain flag.
//!
//! ## Admission
//!
//! Checks never run on connection threads — every app goes through the
//! pool's ticket gate. HTTP uses [`WorkerPool::try_admit`] so a full
//! queue answers `429 overloaded` immediately (`/batch` admits
//! all-or-nothing: a batch the queue can't hold entirely is rejected
//! rather than half-admitted). The JSONL transport uses
//! [`WorkerPool::admit_blocking`] — bulk clients want backpressure, not
//! retries.
//!
//! ## Drain
//!
//! `POST /shutdown` (or SIGTERM) flips one flag: acceptors stop
//! accepting, idle keep-alive connections see EOF, admitted work runs to
//! completion, and responses for in-flight requests are still written.
//! [`ServerHandle::join`] returns once the last connection closes and
//! the pool is idle.

use crate::http::{self, HttpRequest, ReadError};
use crate::json;
use crate::jsonl;
use crate::ServeConfig;
use ppchecker_core::{AppInput, DetectorId};
use ppchecker_engine::{AdmitError, CacheStats, Engine, WorkerPool};
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked accept/read loops re-check the drain flag.
const POLL: Duration = Duration::from_millis(20);

/// Monotonic request counters, scraped verbatim into `/metrics`.
#[derive(Debug, Default)]
pub struct Counters {
    /// HTTP requests parsed (any route).
    pub http_requests: AtomicU64,
    /// JSONL request lines received.
    pub jsonl_lines: AtomicU64,
    /// Checks that produced a report.
    pub checks_ok: AtomicU64,
    /// Checks that produced a structured pipeline error.
    pub check_errors: AtomicU64,
    /// Admissions refused with `overloaded`.
    pub overloaded: AtomicU64,
    /// Requests/lines rejected as malformed.
    pub malformed: AtomicU64,
    /// Requests rejected for exceeding the body cap.
    pub oversized: AtomicU64,
    /// `/batch` requests served.
    pub batches: AtomicU64,
    /// Findings emitted per detector, indexed by [`DetectorId::rank`].
    /// Paper detectors mirror the classic report counts; successor
    /// slots stay zero unless the engine's registry runs them.
    pub detector_findings: [AtomicU64; DetectorId::COUNT],
}

/// Everything the daemon's threads share.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) pool: WorkerPool,
    pub(crate) config: ServeConfig,
    pub(crate) counters: Counters,
    started: Instant,
    draining: AtomicBool,
    connections: Mutex<usize>,
    connections_closed: Condvar,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the daemon into drain mode (idempotent): acceptors stop,
    /// new admissions fail with `draining`, admitted work finishes.
    pub(crate) fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.pool.start_drain();
        }
    }

    fn connection_opened(&self) {
        *self.connections.lock().expect("connection count") += 1;
    }

    fn connection_closed(&self) {
        let mut n = self.connections.lock().expect("connection count");
        *n -= 1;
        if *n == 0 {
            self.connections_closed.notify_all();
        }
    }

    fn wait_connections_closed(&self) {
        let mut n = self.connections.lock().expect("connection count");
        while *n > 0 {
            n = self.connections_closed.wait(n).expect("connection count");
        }
    }

    /// Runs one admitted check on the pool and waits for its outcome,
    /// already rendered as a wire result object.
    pub(crate) fn run_check(
        self: &Arc<Self>,
        mut ticket: ppchecker_engine::AdmitTicket,
        app: AppInput,
    ) -> String {
        let (tx, rx) = mpsc::sync_channel(1);
        self.submit_check(&mut ticket, app, 0, tx);
        match rx.recv() {
            Ok((_seq, rendered)) => rendered,
            Err(_) => json::error_body("worker lost").trim_end().to_string(),
        }
    }

    /// Submits one check job; the rendered result arrives as
    /// `(seq, json)` on `tx`.
    pub(crate) fn submit_check(
        self: &Arc<Self>,
        ticket: &mut ppchecker_engine::AdmitTicket,
        app: AppInput,
        seq: u64,
        tx: mpsc::SyncSender<(u64, String)>,
    ) {
        let shared = Arc::clone(self);
        self.pool.submit(ticket, move || {
            let result = shared.engine.check_one(&app);
            let counter = if result.is_ok() {
                &shared.counters.checks_ok
            } else {
                &shared.counters.check_errors
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if let Ok(outcome) = &result {
                for &id in DetectorId::ALL {
                    let n = outcome.detector_findings(id) as u64;
                    if n > 0 {
                        shared.counters.detector_findings[id.rank()]
                            .fetch_add(n, Ordering::Relaxed);
                    }
                }
            }
            let _ = tx.send((seq, json::outcome_to_json(&app.package, &result)));
        });
    }
}

/// A bound, running daemon. Dropping the handle does NOT stop the
/// server; call [`shutdown`](ServerHandle::shutdown) (or hit
/// `POST /shutdown`) and then [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: SocketAddr,
    jsonl_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptors: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound HTTP address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound JSONL address, when that transport was enabled.
    pub fn jsonl_addr(&self) -> Option<SocketAddr> {
        self.jsonl_addr
    }

    /// Starts a graceful drain, as if `POST /shutdown` had arrived.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the daemon has fully drained: acceptors exited, all
    /// connections closed, all admitted work completed.
    pub fn join(self) {
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        self.shared.wait_connections_closed();
        self.shared.pool.wait_idle();
    }
}

/// Constructor namespace for the daemon.
pub struct Server;

impl Server {
    /// Binds the configured listeners over a warm engine and starts
    /// serving. Metrics collection ([`ppchecker_obs`]) is switched on —
    /// a daemon without its `/metrics` endpoint populated is blind.
    pub fn start(engine: Engine, config: ServeConfig) -> io::Result<ServerHandle> {
        ppchecker_obs::set_enabled(true);
        let http_listener = TcpListener::bind(&config.addr)?;
        let addr = http_listener.local_addr()?;
        let jsonl_listener = match &config.jsonl_addr {
            Some(spec) => Some(TcpListener::bind(spec)?),
            None => None,
        };
        let jsonl_addr = match &jsonl_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let pool = WorkerPool::new(config.workers, config.queue_depth);
        let shared = Arc::new(Shared {
            engine,
            pool,
            config,
            counters: Counters::default(),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            connections: Mutex::new(0),
            connections_closed: Condvar::new(),
        });

        let mut acceptors = Vec::new();
        let hub = Arc::clone(&shared);
        acceptors.push(
            thread::Builder::new()
                .name("ppchecker-accept-http".to_string())
                .spawn(move || accept_loop(hub, http_listener, handle_http_connection))
                .expect("spawn acceptor"),
        );
        if let Some(listener) = jsonl_listener {
            let hub = Arc::clone(&shared);
            acceptors.push(
                thread::Builder::new()
                    .name("ppchecker-accept-jsonl".to_string())
                    .spawn(move || accept_loop(hub, listener, jsonl::handle_connection))
                    .expect("spawn acceptor"),
            );
        }

        Ok(ServerHandle { addr, jsonl_addr, shared, acceptors })
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, handler: fn(Arc<Shared>, TcpStream)) {
    listener.set_nonblocking(true).expect("nonblocking listener");
    loop {
        if crate::sigterm_received() {
            shared.begin_shutdown();
        }
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                shared.connection_opened();
                let hub = Arc::clone(&shared);
                let spawned =
                    thread::Builder::new().name("ppchecker-conn".to_string()).spawn(move || {
                        let _guard = ConnGuard(&hub);
                        handler(Arc::clone(&hub), stream);
                    });
                if spawned.is_err() {
                    shared.connection_closed();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Decrements the connection count when a handler thread exits, however
/// it exits.
struct ConnGuard<'a>(&'a Arc<Shared>);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

/// A [`Read`] wrapper that turns socket timeouts into either a retry
/// (normal operation) or EOF (the daemon is draining), so keep-alive
/// connections park cheaply yet exit promptly on shutdown.
pub(crate) struct PatientReader {
    pub(crate) stream: TcpStream,
    pub(crate) shared: Arc<Shared>,
}

impl Read for PatientReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if self.shared.draining() {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

/// What `route` decided: a status, a body, and lifecycle side effects.
struct Response {
    status: u16,
    body: String,
    close: bool,
    begin_shutdown: bool,
}

impl Response {
    fn ok(body: String) -> Self {
        Response { status: 200, body, close: false, begin_shutdown: false }
    }

    fn error(status: u16, message: &str) -> Self {
        Response { status, body: json::error_body(message), close: false, begin_shutdown: false }
    }
}

fn handle_http_connection(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(PatientReader { stream, shared: Arc::clone(&shared) });
    loop {
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => {
                shared.counters.http_requests.fetch_add(1, Ordering::Relaxed);
                let _span = ppchecker_obs::span!("serve.request");
                let response = route(&shared, &request);
                let keep_alive = request.keep_alive && !response.close;
                let written =
                    http::write_response(&mut writer, response.status, &response.body, keep_alive);
                if response.begin_shutdown {
                    shared.begin_shutdown();
                }
                if written.is_err() || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(message)) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(&mut writer, 400, &json::error_body(&message), false);
                return;
            }
            Err(ReadError::TooLarge(len)) => {
                shared.counters.oversized.fetch_add(1, Ordering::Relaxed);
                let message =
                    format!("body of {len} bytes exceeds cap of {}", shared.config.max_body_bytes);
                let _ = http::write_response(&mut writer, 413, &json::error_body(&message), false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

fn route(shared: &Arc<Shared>, request: &HttpRequest) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/check") => handle_check(shared, &request.body),
        ("POST", "/batch") => handle_batch(shared, &request.body),
        ("GET", "/metrics") => Response::ok(metrics_to_json(shared)),
        ("GET", "/healthz") => Response::ok(healthz_to_json(shared)),
        ("POST", "/shutdown") => Response {
            status: 200,
            body: "{\"status\":\"draining\"}".to_string(),
            close: true,
            begin_shutdown: true,
        },
        ("GET", "/check" | "/batch" | "/shutdown") | ("POST", "/metrics" | "/healthz") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such route"),
    }
}

fn handle_check(shared: &Arc<Shared>, body: &str) -> Response {
    let parsed = json::parse(body).and_then(|doc| json::parse_app(&doc));
    let app = match parsed {
        Ok(app) => app,
        Err(message) => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &message);
        }
    };
    match shared.pool.try_admit(1) {
        Ok(ticket) => Response::ok(shared.run_check(ticket, app)),
        Err(AdmitError::Overloaded) => {
            shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            Response::error(429, "overloaded")
        }
        Err(AdmitError::Draining) => Response::error(503, "draining"),
    }
}

fn handle_batch(shared: &Arc<Shared>, body: &str) -> Response {
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(message) => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &message);
        }
    };
    let Some(entries) = doc.get("apps").and_then(json::Value::as_array) else {
        shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
        return Response::error(400, "missing \"apps\" array");
    };
    let mut apps = Vec::with_capacity(entries.len());
    for (index, entry) in entries.iter().enumerate() {
        match json::parse_app(entry) {
            Ok(app) => apps.push(app),
            Err(message) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return Response::error(400, &format!("apps[{index}]: {message}"));
            }
        }
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    let count = apps.len();
    if count == 0 {
        return Response::ok("{\"count\":0,\"results\":[]}".to_string());
    }
    // All-or-nothing admission: either the queue holds the whole batch
    // or the caller gets an immediate `overloaded` and retries later —
    // never a half-admitted batch wedged against its own remainder.
    let mut ticket = match shared.pool.try_admit(count) {
        Ok(ticket) => ticket,
        Err(AdmitError::Overloaded) => {
            shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "overloaded");
        }
        Err(AdmitError::Draining) => return Response::error(503, "draining"),
    };
    let (tx, rx) = mpsc::sync_channel(count);
    for (index, app) in apps.into_iter().enumerate() {
        shared.submit_check(&mut ticket, app, index as u64, tx.clone());
    }
    drop(tx);
    let mut results = vec![String::new(); count];
    for (index, rendered) in rx {
        results[index as usize] = rendered;
    }
    Response::ok(format!("{{\"count\":{count},\"results\":[{}]}}", results.join(",")))
}

fn healthz_to_json(shared: &Shared) -> String {
    let status = if shared.draining() { "draining" } else { "ok" };
    format!(
        "{{\"status\":\"{status}\",\"inflight\":{},\"uptime_ms\":{}}}",
        shared.pool.stats().inflight,
        shared.started.elapsed().as_millis(),
    )
}

fn cache_to_json(stats: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"hit_rate\":{:.4}}}",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate(),
    )
}

/// Renders the persistent-store section of `/metrics`, or the literal
/// `null` when the daemon runs without a store.
fn store_to_json(store: Option<&ppchecker_engine::StoreSummary>) -> String {
    let Some(s) = store else {
        return "null".to_string();
    };
    let kind = |stats: &ppchecker_store::StoreStats| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"writes\":{},\"corrupt\":{}}}",
            stats.hits, stats.misses, stats.writes, stats.corrupt,
        )
    };
    format!(
        "{{\"apps_skipped\":{},\"reports\":{},\"policies\":{},\"lib_summaries\":{}}}",
        s.apps_skipped,
        kind(&s.reports),
        kind(&s.policies),
        kind(&s.lib_summaries),
    )
}

/// Renders the full `/metrics` document: request counters, queue
/// occupancy, cache effectiveness, interner occupancy, and per-span
/// latency quantiles — cumulative since process start (scrape twice and
/// difference for a window).
fn metrics_to_json(shared: &Shared) -> String {
    let counters = &shared.counters;
    let detectors: Vec<String> = DetectorId::ALL
        .iter()
        .map(|&id| {
            format!(
                "\"{}\":{}",
                id.as_str(),
                counters.detector_findings[id.rank()].load(Ordering::Relaxed)
            )
        })
        .collect();
    let queue = shared.pool.stats();
    let engine = shared.engine.metrics_snapshot();
    let interner = engine.interner;
    let spans: Vec<String> = ppchecker_obs::snapshot()
        .iter()
        .map(|(name, snap)| {
            format!(
                "\"{}\":{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\
                 \"max_us\":{},\"total_us\":{}}}",
                json::escape(name),
                snap.count,
                snap.p50().as_micros(),
                snap.p90().as_micros(),
                snap.p99().as_micros(),
                snap.max_duration().as_micros(),
                snap.total().as_micros(),
            )
        })
        .collect();
    format!(
        "{{\"uptime_ms\":{},\
         \"requests\":{{\"http\":{},\"jsonl_lines\":{},\"checks_ok\":{},\"check_errors\":{},\
         \"overloaded\":{},\"malformed\":{},\"oversized\":{},\"batches\":{}}},\
         \"detectors\":{{{}}},\
         \"queue\":{{\"workers\":{},\"capacity\":{},\"inflight\":{},\"draining\":{}}},\
         \"lib_policies\":{},\
         \"caches\":{{\"policy\":{},\"policy_cap\":{},\"esa_vectors\":{},\"esa_pair_memo\":{},\
         \"esa_pruned\":{},\"taint_summaries\":{}}},\
         \"store\":{},\
         \"interner\":{{\"symbols\":{},\"preseeded\":{},\"bytes\":{},\"soft_cap_bytes\":{},\
         \"over_soft_cap\":{},\"over_cap_interns\":{}}},\
         \"spans\":{{{}}}}}",
        shared.started.elapsed().as_millis(),
        counters.http_requests.load(Ordering::Relaxed),
        counters.jsonl_lines.load(Ordering::Relaxed),
        counters.checks_ok.load(Ordering::Relaxed),
        counters.check_errors.load(Ordering::Relaxed),
        counters.overloaded.load(Ordering::Relaxed),
        counters.malformed.load(Ordering::Relaxed),
        counters.oversized.load(Ordering::Relaxed),
        counters.batches.load(Ordering::Relaxed),
        detectors.join(","),
        queue.workers,
        queue.capacity,
        queue.inflight,
        queue.draining,
        engine.lib_policies,
        cache_to_json(&engine.policy_cache),
        shared.engine.cache().cap(),
        cache_to_json(&engine.esa_cache),
        cache_to_json(&engine.esa_pair_memo),
        engine.esa_pruned,
        cache_to_json(&engine.taint_summary_cache),
        store_to_json(engine.store.as_ref()),
        interner.symbols,
        interner.preseeded,
        interner.bytes,
        interner.soft_cap_bytes,
        interner.over_soft_cap,
        ppchecker_nlp::Interner::global().over_cap_interns(),
        spans.join(","),
    )
}
