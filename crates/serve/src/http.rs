//! A deliberately small HTTP/1.1 layer: enough for `POST /check` with
//! JSON bodies, keep-alive, and bounded request sizes — no chunked
//! encoding, no TLS, no multipart. Hand-rolled on `std::net` so the
//! daemon stays inside the workspace's zero-dependency budget.

use std::io::{self, BufRead, Write};

/// Ceiling on the request line plus all headers, combined. Anything
/// larger is malformed by fiat (real requests are a few hundred bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request head plus its body.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included, verbatim.
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection (or the server is draining) before
    /// a request line arrived — the normal end of a keep-alive session.
    Closed,
    /// The bytes on the wire are not an HTTP request we understand.
    Malformed(String),
    /// `Content-Length` exceeds the configured body cap. The body has
    /// NOT been consumed; the connection must be closed.
    TooLarge(usize),
    /// The socket failed mid-read.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request off `reader`. Blocks until a full request (or EOF)
/// arrives; the caller bounds patience via socket timeouts.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<HttpRequest, ReadError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut head_bytes = line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".to_string()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line missing path".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol {version:?}")));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ReadError::Malformed("connection closed mid-headers".to_string()));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block exceeds 16 KiB".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::Malformed(format!("header without colon: {header:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }

    if content_length > max_body {
        return Err(ReadError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("body is not UTF-8".to_string()))?;

    Ok(HttpRequest { method, path, body, keep_alive })
}

/// The standard reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response (status line, headers, JSON body) and
/// flushes.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str, max_body: usize) -> Result<HttpRequest, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read("POST /check HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{}}", 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/check");
        assert_eq!(req.body, "{{}}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_is_honored() {
        let req = read("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn eof_before_request_line_is_closed() {
        assert!(matches!(read("", 1024), Err(ReadError::Closed)));
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(read("NOT AN HTTP LINE\r\n\r\n", 1024), Err(ReadError::Malformed(_))));
        assert!(matches!(
            read("POST /check HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 1024),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("POST /check HTTP/1.1\r\nno-colon-here\r\n\r\n", 1024),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_unread() {
        match read("POST /check HTTP/1.1\r\ncontent-length: 999\r\n\r\n", 16) {
            Err(ReadError::TooLarge(999)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_block_is_malformed() {
        let huge = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(read(&huge, 1024), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
