//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal, dependency-free implementation of the `rand 0.8`
//! API surface it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen`], and the
//! [`rngs::StdRng`] type. The generator is a SplitMix64 — statistically
//! solid for corpus generation and, crucially, *deterministic across
//! platforms and runs*, which the synthetic-dataset calibration depends
//! on.
//!
//! This is not a cryptographic RNG and does not pretend to match the
//! stream of the real `rand::rngs::StdRng`; the corpus phrase pools are
//! calibrated against *this* stream.

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Uniform: Sized {
    /// Draws one value from the raw 64-bit stream.
    fn from_u64(raw: u64) -> Self;
}

impl Uniform for u8 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 56) as u8
    }
}

impl Uniform for u16 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 48) as u16
    }
}

impl Uniform for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Uniform for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Uniform for usize {
    fn from_u64(raw: u64) -> Self {
        raw as usize
    }
}

impl Uniform for bool {
    fn from_u64(raw: u64) -> Self {
        raw & (1 << 63) != 0
    }
}

impl Uniform for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait RangeSample: Copy + PartialOrd {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

/// The random-generator trait: the subset of `rand::Rng` this workspace
/// calls.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform draw from `range` (half-open, like `rand`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the small pool sizes used here and the mapping
        // is deterministic, which is what matters.
        let raw = self.next_u64();
        let mapped = ((raw as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + mapped)
    }

    /// A uniform draw from `[0, 1)`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64.
    ///
    /// Passes BigCrush in its 64-bit output form and is trivially
    /// seedable — more than adequate for phrase-pool selection.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0x5155_7472_6173_6F6E };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// The prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_pools() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all pool slots reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
