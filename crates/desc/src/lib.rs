//! # ppchecker-desc
//!
//! The description analysis module (AutoCog substitute): maps an app's
//! Google Play description to the permissions its text implies, then maps
//! those permissions to private information (`Info_desc`).
//!
//! AutoCog builds a semantic model relating description noun phrases to
//! permissions; this reproduction compares each description noun phrase
//! against a semantic profile per permission using the same ESA similarity
//! and 0.67 threshold the rest of the pipeline uses.
//!
//! # Examples
//!
//! ```
//! use ppchecker_desc::analyze_description;
//! use ppchecker_apk::{Permission, PrivateInfo};
//!
//! let a = analyze_description(
//!     "Location aware tasks will help you to utilize your field force in optimum way.",
//! );
//! assert!(a.permissions.contains(&Permission::AccessFineLocation));
//! assert!(a.info.contains(&PrivateInfo::Location));
//! ```

use ppchecker_apk::{Permission, PrivateInfo};
use ppchecker_esa::{BoundSoa, Interpreter, SparseVector};
use ppchecker_nlp::chunk::chunk_nps;
use ppchecker_nlp::sentence::split_sentences;
use ppchecker_nlp::tagger::tag_str;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// One matched description phrase and the permission it implies.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The description noun phrase.
    pub phrase: String,
    /// The inferred permission.
    pub permission: Permission,
    /// ESA similarity against the permission's semantic profile.
    pub similarity: f64,
}

/// The result of analyzing a description.
#[derive(Debug, Clone, Default)]
pub struct DescriptionAnalysis {
    /// Permissions the description implies.
    pub permissions: BTreeSet<Permission>,
    /// `Info_desc`: private information implied by those permissions.
    pub info: BTreeSet<PrivateInfo>,
    /// Phrase-level evidence.
    pub evidence: Vec<Evidence>,
}

/// Semantic profiles: `(permission, profile text)` pairs the description
/// phrases are compared against (the AutoCog semantic-model substitute).
pub fn permission_profiles() -> &'static [(Permission, &'static str)] {
    use Permission::*;
    const PROFILES: &[(Permission, &str)] = &[
        (AccessFineLocation, "location latitude longitude gps"),
        (AccessCoarseLocation, "nearby city area around"),
        (Camera, "camera photo picture"),
        (ReadContacts, "contacts phonebook"),
        (WriteContacts, "merge duplicate entries cleanup"),
        (GetAccounts, "account sign-in login"),
        (ReadCalendar, "calendar events schedule"),
        (RecordAudio, "microphone voice recording"),
        (ReadSms, "sms text messages"),
        (ReadPhoneState, "phone number device"),
        (ReadCallLog, "call history log"),
        (GetTasks, "running apps list"),
        (ReadHistoryBookmarks, "browsing history bookmarks"),
    ];
    PROFILES
}

/// Analyzes a description with the shared ESA interpreter.
pub fn analyze_description(text: &str) -> DescriptionAnalysis {
    analyze_description_with(text, Interpreter::shared())
}

/// Permission profiles as interpretation vectors, paired with their
/// norm-bound SoA arrays for the batch prune.
type ProfileSet = (Vec<(Permission, Arc<SparseVector>)>, BoundSoa);

/// The resolved [`ProfileSet`]: once per process for the shared
/// interpreter (the common case), per call for a custom one.
fn profile_vectors(esa: &Interpreter) -> std::borrow::Cow<'static, ProfileSet> {
    use std::borrow::Cow;
    fn resolve(esa: &Interpreter) -> ProfileSet {
        let profiles: Vec<(Permission, Arc<SparseVector>)> = permission_profiles()
            .iter()
            .map(|(perm, text)| (perm.clone(), esa.vector_of(text)))
            .collect();
        let soa = BoundSoa::build(profiles.iter().map(|(_, v)| v.as_ref()));
        (profiles, soa)
    }
    if std::ptr::eq(esa, Interpreter::shared()) {
        static SHARED: OnceLock<ProfileSet> = OnceLock::new();
        Cow::Borrowed(SHARED.get_or_init(|| resolve(esa)))
    } else {
        Cow::Owned(resolve(esa))
    }
}

/// Analyzes a description with an explicit ESA interpreter.
///
/// Every noun phrase of every sentence is compared against each permission
/// profile; a similarity at or above [`ppchecker_esa::SIMILARITY_THRESHOLD`]
/// infers the permission.
pub fn analyze_description_with(text: &str, esa: &Interpreter) -> DescriptionAnalysis {
    let _span = ppchecker_obs::span!("desc.analyze");
    let mut out = DescriptionAnalysis::default();
    // Resolve each profile's interpretation vector once per description
    // (not once per noun phrase), then compare phrase vectors against them
    // directly: same cosines as `esa.similarity`, without a vector-cache
    // probe per (phrase, profile) pair. For the shared interpreter the
    // profile vectors are resolved once per process.
    let cached = profile_vectors(esa);
    let (profiles, soa) = (&cached.0, &cached.1);
    let mut survive: Vec<bool> = Vec::new();
    for sent in split_sentences(text) {
        let tokens = tag_str(&sent);
        for np in chunk_nps(&tokens) {
            let phrase = np.content_text(&tokens);
            if phrase.is_empty() {
                continue;
            }
            let phrase_vec = esa.vector_of(&phrase);
            if phrase_vec.is_empty() {
                // No known terms: similarity against every profile is 0.
                continue;
            }
            // One SIMD-folded norm-bound pass over all profiles prunes
            // most of them before any per-pair work; survivors still go
            // through the exact per-pair predicate, so verdicts are
            // unchanged (the batch bound never prunes a pair the per-pair
            // bound would keep).
            let survivors =
                soa.survivors(&phrase_vec, ppchecker_esa::SIMILARITY_THRESHOLD, &mut survive);
            esa.note_pruned((profiles.len() - survivors) as u64);
            if survivors == 0 {
                continue;
            }
            for (slot, (perm, profile_vec)) in profiles.iter().enumerate() {
                if !survive[slot] {
                    continue;
                }
                let Some(sim) = esa.similarity_above(
                    &phrase_vec,
                    profile_vec,
                    ppchecker_esa::SIMILARITY_THRESHOLD,
                ) else {
                    continue;
                };
                out.permissions.insert(perm.clone());
                for &info in PrivateInfo::from_permission(perm) {
                    out.info.insert(info);
                }
                out.evidence.push(Evidence {
                    phrase: phrase.clone(),
                    permission: perm.clone(),
                    similarity: sim,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dooing_description_implies_location() {
        // Fig. 2's description sentence.
        let a = analyze_description(
            "Location aware tasks will help you to utilize your field force in optimum way.",
        );
        assert!(a.permissions.iter().any(|p| matches!(
            p,
            Permission::AccessFineLocation | Permission::AccessCoarseLocation
        )));
        assert!(a.info.contains(&PrivateInfo::Location));
    }

    #[test]
    fn paper_birthdaylist_description_implies_contacts() {
        // §V-D: "This app synchronizes all birthdays with your contacts
        // list and facebook."
        let a = analyze_description(
            "This app synchronizes all birthdays with your contacts list and facebook.",
        );
        assert!(a.permissions.contains(&Permission::ReadContacts));
        assert!(a.info.contains(&PrivateInfo::Contact));
    }

    #[test]
    fn neutral_description_implies_nothing() {
        let a = analyze_description(
            "A fun and addictive puzzle game with hundreds of levels. Beat your high score!",
        );
        assert!(a.permissions.is_empty());
        assert!(a.info.is_empty());
    }

    #[test]
    fn camera_description() {
        let a = analyze_description("Take beautiful photos with powerful camera filters.");
        assert!(a.permissions.contains(&Permission::Camera));
        assert!(a.info.contains(&PrivateInfo::Camera));
    }

    #[test]
    fn evidence_records_similarity() {
        let a = analyze_description("See the weather at your current location now.");
        assert!(a.evidence.iter().any(|e| e.similarity >= 0.67));
    }
}
