//! Sustained throughput and tail latency of the resident daemon over a
//! mixed cold/warm corpus.
//!
//! The workload models a fleet of callers against one warm process: a
//! cold pass (every policy text, lib summary, and ESA vector computed
//! fresh), then warm passes over the same corpus (served from the
//! resident caches), then a concurrent phase with several keep-alive
//! clients. Emits `BENCH_serve.json` at the repo root (see
//! [`ppchecker_bench::emit`]) with every request latency and the
//! sustained requests/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::emit::BenchResult;
use ppchecker_core::{AppInput, PPChecker};
use ppchecker_corpus::small_dataset;
use ppchecker_engine::Engine;
use ppchecker_serve::{Client, ServeConfig, Server, ServerHandle};
use std::hint::black_box;
use std::thread;
use std::time::{Duration, Instant};

const APPS: usize = 48;
const WARM_PASSES: usize = 2;
const CLIENTS: usize = 4;

fn boot(workers: usize) -> (ServerHandle, Vec<AppInput>) {
    let dataset = small_dataset(42, APPS);
    let engine = Engine::with_lib_policies(
        PPChecker::new(),
        dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone())),
    );
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jsonl_addr: None,
        workers,
        queue_depth: 2 * workers,
        ..ServeConfig::default()
    };
    let handle = Server::start(engine, config).expect("daemon boots");
    (handle, dataset.iter_apps().cloned().collect())
}

/// One serial pass; returns each request's latency. A 429 is the daemon
/// shedding load as designed (the sustained phase can briefly exceed
/// queue capacity on small machines) — back off and retry, and time
/// only the accepted attempt.
fn timed_pass(client: &mut Client, apps: &[AppInput]) -> Vec<Duration> {
    apps.iter()
        .map(|app| loop {
            let t = Instant::now();
            let (status, body) = client.check(app).expect("check succeeds");
            match status {
                200 => break t.elapsed(),
                429 => thread::sleep(Duration::from_millis(2)),
                other => panic!("unexpected status {other}: {body}"),
            }
        })
        .collect()
}

fn mean(latencies: &[Duration]) -> Duration {
    latencies.iter().sum::<Duration>() / latencies.len().max(1) as u32
}

/// The one-shot measurement behind `BENCH_serve.json`, printed before
/// criterion's sampled benches.
fn report_and_emit() {
    let workers = ppchecker_engine::available_jobs();
    let (handle, apps) = boot(workers);
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let cold = timed_pass(&mut client, &apps);
    let mut warm = Vec::new();
    for _ in 0..WARM_PASSES {
        warm.extend(timed_pass(&mut client, &apps));
    }
    println!(
        "serve_throughput: {} apps, cold mean {:?}, warm mean {:?} over {WARM_PASSES} passes",
        apps.len(),
        mean(&cold),
        mean(&warm),
    );

    // Sustained phase: CLIENTS keep-alive connections hammering the warm
    // corpus concurrently. Throughput is measured over this window.
    let sustained_start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let apps = apps.clone();
            let addr = handle.addr();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                timed_pass(&mut client, &apps)
            })
        })
        .collect();
    let mut sustained = Vec::new();
    for t in threads {
        sustained.extend(t.join().expect("client thread"));
    }
    let window = sustained_start.elapsed();
    let throughput = sustained.len() as f64 / window.as_secs_f64();
    println!(
        "  sustained: {} requests over {CLIENTS} clients in {window:?} = {throughput:.1} req/s",
        sustained.len(),
    );

    let metrics = client.metrics().expect("metrics scrape");
    let hits = |cache: &str| {
        metrics
            .get("caches")
            .and_then(|c| c.get(cache))
            .and_then(|c| c.get("hits"))
            .and_then(ppchecker_serve::json::Value::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "  warm caches: policy {} hits, taint summaries {} hits, esa vectors {} hits",
        hits("policy"),
        hits("taint_summaries"),
        hits("esa_vectors"),
    );

    let mut runs = cold.clone();
    runs.extend(warm.iter().copied());
    runs.extend(sustained.iter().copied());
    let result = BenchResult {
        bench: "serve_throughput".to_string(),
        config: vec![
            ("apps".to_string(), apps.len().to_string()),
            ("workers".to_string(), workers.to_string()),
            ("warm_passes".to_string(), WARM_PASSES.to_string()),
            ("clients".to_string(), CLIENTS.to_string()),
        ],
        runs,
        throughput,
    };
    let path = result.write("serve").expect("write BENCH_serve.json");
    println!("  wrote {}", path.display());

    client.shutdown().expect("shutdown accepted");
    handle.join();
}

fn bench_serve(c: &mut Criterion) {
    report_and_emit();

    // Sampled bench: one warm request against a resident daemon.
    let (handle, apps) = boot(ppchecker_engine::available_jobs());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    // Prime every cache so the sampled numbers are steady-state.
    let _ = timed_pass(&mut client, &apps);
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("warm_check", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let app = &apps[i % apps.len()];
            i += 1;
            black_box(client.check(app).expect("check succeeds"))
        })
    });
    g.finish();
    client.shutdown().expect("shutdown accepted");
    handle.join();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
