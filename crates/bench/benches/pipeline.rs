//! Component-level throughput benchmarks for every stage of the PPChecker
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::{sample_app, SAMPLE_POLICY};
use ppchecker_core::PPChecker;
use ppchecker_esa::Interpreter;
use ppchecker_nlp::depparse;
use ppchecker_nlp::tagger;
use ppchecker_nlp::token;
use ppchecker_policy::PolicyAnalyzer;
use std::hint::black_box;

const SENTENCE: &str =
    "we will provide your information to third party companies to improve service if you agree";

fn bench_nlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("nlp");
    g.bench_function("tokenize", |b| b.iter(|| token::tokenize(black_box(SENTENCE))));
    g.bench_function("tag", |b| b.iter(|| tagger::tag_str(black_box(SENTENCE))));
    g.bench_function("depparse", |b| b.iter(|| depparse::parse(black_box(SENTENCE))));
    g.finish();
}

fn bench_esa(c: &mut Criterion) {
    let esa = Interpreter::shared();
    let mut g = c.benchmark_group("esa");
    g.bench_function("similarity_short", |b| {
        b.iter(|| esa.similarity(black_box("location"), black_box("gps coordinates")))
    });
    g.bench_function("similarity_phrase", |b| {
        b.iter(|| {
            esa.similarity(
                black_box("your personal information"),
                black_box("contact list and address book"),
            )
        })
    });
    g.finish();
}

fn bench_policy(c: &mut Criterion) {
    let analyzer = PolicyAnalyzer::new();
    let mut g = c.benchmark_group("policy");
    g.bench_function("analyze_policy_html", |b| {
        b.iter(|| analyzer.analyze_html(black_box(SAMPLE_POLICY)))
    });
    g.finish();
}

fn bench_static(c: &mut Criterion) {
    let app = sample_app();
    let mut g = c.benchmark_group("static");
    g.bench_function("analyze_apk", |b| {
        b.iter(|| ppchecker_static::analyze(black_box(&app.apk)).unwrap())
    });
    let packed =
        ppchecker_apk::Apk::new_packed(app.apk.manifest.clone(), &app.apk.dex().unwrap(), 0x5A);
    g.bench_function("unpack_and_analyze", |b| {
        b.iter(|| ppchecker_static::analyze(black_box(&packed)).unwrap())
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let checker = PPChecker::new();
    let app = sample_app();
    let mut g = c.benchmark_group("end_to_end");
    g.bench_function("check_one_app", |b| b.iter(|| checker.check_app(black_box(&app)).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_nlp, bench_esa, bench_policy, bench_static, bench_end_to_end);
criterion_main!(benches);
