//! Microbench of the ESA similarity kernel: CSR two-pointer merge vs the
//! retained HashMap reference implementation, plus the fully-wired verdict
//! predicate (norm-bound pruning + symbol-pair memo).
//!
//! Prints a one-shot pairwise-similarity comparison (the PR-3 acceptance
//! bar is ≥ 2× on this number) before the sampled criterion groups.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::emit::BenchResult;
use ppchecker_esa::{kb, kernel, ConceptVector, Interpreter, SparseVector};
use ppchecker_nlp::{intern, Symbol};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A phrase mix shaped like real detector traffic: canonical resource
/// phrases, policy-side surface forms, knowledge-base titles, and a tail
/// of multi-word phrases assembled from article vocabulary.
fn phrases() -> Vec<String> {
    let mut out: Vec<String> =
        ppchecker_nlp::intern::SENSITIVE_RESOURCES.iter().map(|s| s.to_string()).collect();
    out.extend(kb::concepts().iter().map(|c| c.title.to_lowercase()));
    let vocab: Vec<&str> = {
        let mut v: Vec<&str> =
            kb::concepts().iter().flat_map(|c| c.text.split_whitespace()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Deterministic two- and three-word phrases off a fixed stride walk.
    for i in 0..60usize {
        let a = vocab[(i * 37) % vocab.len()];
        let b = vocab[(i * 53 + 11) % vocab.len()];
        out.push(format!("{a} {b}"));
        if i % 2 == 0 {
            let c = vocab[(i * 71 + 29) % vocab.len()];
            out.push(format!("{a} {b} {c}"));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The pre-PR-3 numeric core: HashMap concept vectors with precomputed
/// norms, dot by probing the smaller map into the larger.
fn hashmap_cosine(a: &(ConceptVector, f64), b: &(ConceptVector, f64)) -> f64 {
    if a.1 == 0.0 || b.1 == 0.0 {
        return 0.0;
    }
    let (small, large) = if a.0.len() <= b.0.len() { (&a.0, &b.0) } else { (&b.0, &a.0) };
    let dot: f64 = small.iter().filter_map(|(k, va)| large.get(k).map(|vb| va * vb)).sum();
    (dot / (a.1 * b.1)).clamp(0.0, 1.0)
}

fn pairwise_hashmap(vectors: &[(ConceptVector, f64)]) -> f64 {
    let mut acc = 0.0;
    for a in vectors {
        for b in vectors {
            acc += hashmap_cosine(a, b);
        }
    }
    acc
}

fn pairwise_kernel(vectors: &[SparseVector]) -> f64 {
    let mut acc = 0.0;
    for a in vectors {
        for b in vectors {
            acc += kernel::cosine(a, b);
        }
    }
    acc
}

fn pairwise_verdicts(esa: &Interpreter, syms: &[Symbol]) -> usize {
    let mut matches = 0;
    for &a in syms {
        for &b in syms {
            if esa.same_thing_sym(a, b) {
                matches += 1;
            }
        }
    }
    matches
}

/// One-shot report: pairwise similarity over the full phrase set, HashMap
/// reference vs CSR kernel, plus the memoized verdict predicate.
fn report_kernel(esa: &Interpreter, texts: &[String]) {
    let hashmap_vectors: Vec<(ConceptVector, f64)> = texts
        .iter()
        .map(|t| {
            let v = esa.interpret(t);
            let norm = v.values().map(|w| w * w).sum::<f64>().sqrt();
            (v, norm)
        })
        .collect();
    let kernel_vectors: Vec<SparseVector> = texts.iter().map(|t| esa.interpret_sparse(t)).collect();
    let syms: Vec<Symbol> = texts.iter().map(|t| intern(t)).collect();
    let pairs = texts.len() * texts.len();
    println!("esa_kernel: {} phrases, {} pairs per pass", texts.len(), pairs);

    const PASSES: usize = 50;
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..PASSES {
        acc += black_box(pairwise_hashmap(&hashmap_vectors));
    }
    let hashmap_dt = t.elapsed();
    let t = Instant::now();
    for _ in 0..PASSES {
        acc += black_box(pairwise_kernel(&kernel_vectors));
    }
    let kernel_dt = t.elapsed();
    let t = Instant::now();
    let mut verdicts = 0;
    for _ in 0..PASSES {
        verdicts += black_box(pairwise_verdicts(esa, &syms));
    }
    let verdict_dt = t.elapsed();
    black_box((acc, verdicts));

    let speedup = hashmap_dt.as_secs_f64() / kernel_dt.as_secs_f64();
    println!("  hashmap reference: {:?} for {PASSES} passes", hashmap_dt);
    println!("  csr kernel:        {:?} for {PASSES} passes  speedup: {speedup:.2}x", kernel_dt);
    println!("  verdict predicate: {:?} for {PASSES} passes (memo + pruning)", verdict_dt);
    let (memo_hits, memo_misses) = esa.pair_memo_stats();
    println!(
        "  pair memo: {} hits / {} misses ({} entries); {} comparisons pruned",
        memo_hits,
        memo_misses,
        esa.pair_memo_len(),
        esa.pruned_comparisons()
    );
}

/// One-shot scalar-vs-SIMD comparison of the merge-dot kernel over the
/// intersecting pairs of the pairwise workload (disjoint pairs exit on
/// the occupancy-mask AND before any merge runs, identically on both
/// paths, so including them would only dilute the kernel ratio), using
/// the runtime dispatch test hook. The acceptance bar for the
/// accelerated dot is ≥ 1.5× over the scalar merge on AVX2 hardware;
/// both paths produce bit-identical sums, so the accumulated totals are
/// asserted equal.
fn report_simd(kernel_vectors: &[SparseVector]) {
    const PASSES: usize = 50;
    println!("esa_kernel: merge-dot scalar vs simd (detected path: {})", {
        ppchecker_esa::force_scalar(false);
        ppchecker_esa::active_path()
    });
    let pairs: Vec<(&SparseVector, &SparseVector)> = kernel_vectors
        .iter()
        .flat_map(|a| kernel_vectors.iter().map(move |b| (a, b)))
        .filter(|(a, b)| kernel::cosine(a, b) > 0.0)
        .collect();
    println!("  {} intersecting pairs per pass", pairs.len());
    let sum_dots = |pairs: &[(&SparseVector, &SparseVector)]| -> f64 {
        pairs.iter().map(|(a, b)| kernel::dot(a, b)).sum()
    };

    ppchecker_esa::force_scalar(true);
    black_box(sum_dots(&pairs));
    let t = Instant::now();
    let mut scalar_acc = 0.0;
    for _ in 0..PASSES {
        scalar_acc += black_box(sum_dots(&pairs));
    }
    let scalar_dt = t.elapsed();

    ppchecker_esa::force_scalar(false);
    black_box(sum_dots(&pairs));
    let t = Instant::now();
    let mut simd_acc = 0.0;
    for _ in 0..PASSES {
        simd_acc += black_box(sum_dots(&pairs));
    }
    let simd_dt = t.elapsed();

    assert_eq!(scalar_acc, simd_acc, "simd and scalar merge-dot must agree bit-for-bit");
    let speedup = scalar_dt.as_secs_f64() / simd_dt.as_secs_f64();
    println!("  scalar merge: {scalar_dt:?} for {PASSES} passes");
    println!("  simd merge:   {simd_dt:?} for {PASSES} passes  speedup: {speedup:.2}x");
}

/// Per-pass pairwise-kernel latencies on the detected SIMD path, emitted
/// as `BENCH_esa.json` (see [`ppchecker_bench::emit`]); warmup passes
/// are discarded so the quantiles report steady state.
fn emit_bench_json(kernel_vectors: &[SparseVector]) {
    const WARMUP: usize = 2;
    const RUNS: usize = 10;
    ppchecker_esa::force_scalar(false);
    for _ in 0..WARMUP {
        black_box(pairwise_kernel(kernel_vectors));
    }
    let mut runs = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t = Instant::now();
        black_box(pairwise_kernel(kernel_vectors));
        runs.push(t.elapsed());
    }
    let pairs = kernel_vectors.len() * kernel_vectors.len();
    let total: f64 = runs.iter().map(Duration::as_secs_f64).sum();
    let throughput = (RUNS * pairs) as f64 / total;
    let result = BenchResult {
        bench: "esa_kernel".to_string(),
        config: vec![
            ("phrases".to_string(), kernel_vectors.len().to_string()),
            ("pairs".to_string(), pairs.to_string()),
            ("simd".to_string(), format!("\"{}\"", ppchecker_esa::active_path())),
            ("warmup".to_string(), WARMUP.to_string()),
            ("runs".to_string(), RUNS.to_string()),
        ],
        runs,
        throughput,
    };
    let path = result.write("esa").expect("write BENCH_esa.json");
    println!("esa_kernel: {throughput:.0} cosine pairs/s sustained, wrote {}", path.display());
}

fn bench_kernel(c: &mut Criterion) {
    let esa = Interpreter::shared();
    let texts = phrases();
    report_kernel(esa, &texts);

    let hashmap_vectors: Vec<(ConceptVector, f64)> = texts
        .iter()
        .map(|t| {
            let v = esa.interpret(t);
            let norm = v.values().map(|w| w * w).sum::<f64>().sqrt();
            (v, norm)
        })
        .collect();
    let kernel_vectors: Vec<SparseVector> = texts.iter().map(|t| esa.interpret_sparse(t)).collect();
    let syms: Vec<Symbol> = texts.iter().map(|t| intern(t)).collect();

    report_simd(&kernel_vectors);
    emit_bench_json(&kernel_vectors);

    let mut g = c.benchmark_group("esa");
    g.sample_size(20);
    g.bench_function("pairwise_hashmap_reference", |b| {
        b.iter(|| black_box(pairwise_hashmap(&hashmap_vectors)))
    });
    g.bench_function("pairwise_csr_kernel", |b| {
        b.iter(|| black_box(pairwise_kernel(&kernel_vectors)))
    });
    g.bench_function("pairwise_verdicts_memoized", |b| {
        b.iter(|| black_box(pairwise_verdicts(esa, &syms)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
