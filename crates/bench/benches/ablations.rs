//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! entry-point reachability analysis (the paper's improvement over Slavin
//! et al.), content-provider URI analysis, and bootstrapped patterns vs.
//! the five seeds alone.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::sample_app;
use ppchecker_nlp::depparse::parse;
use ppchecker_policy::{match_sentence, Pattern, PolicyAnalyzer};
use ppchecker_static::{analyze_with, AnalysisOptions};
use std::hint::black_box;

fn bench_reachability_ablation(c: &mut Criterion) {
    let app = sample_app();
    let mut g = c.benchmark_group("ablation_reachability");
    g.bench_function("with_reachability", |b| {
        b.iter(|| {
            analyze_with(
                black_box(&app.apk),
                AnalysisOptions { reachability: true, uri_analysis: true },
            )
            .unwrap()
        })
    });
    g.bench_function("without_reachability", |b| {
        b.iter(|| {
            analyze_with(
                black_box(&app.apk),
                AnalysisOptions { reachability: false, uri_analysis: true },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_uri_ablation(c: &mut Criterion) {
    let app = sample_app();
    let mut g = c.benchmark_group("ablation_uri_analysis");
    g.bench_function("with_uri_analysis", |b| {
        b.iter(|| {
            analyze_with(
                black_box(&app.apk),
                AnalysisOptions { reachability: true, uri_analysis: true },
            )
            .unwrap()
        })
    });
    g.bench_function("without_uri_analysis", |b| {
        b.iter(|| {
            analyze_with(
                black_box(&app.apk),
                AnalysisOptions { reachability: true, uri_analysis: false },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_pattern_ablation(c: &mut Criterion) {
    let sentences = [
        "we may harvest your contacts",
        "we have access to your contacts",
        "we will collect your location",
        "your personal information will be used",
        "we may view your photos",
    ];
    let parses: Vec<_> = sentences.iter().map(|s| parse(s)).collect();
    let seeds = Pattern::seeds();
    let full = PolicyAnalyzer::new().patterns().to_vec();
    let mut g = c.benchmark_group("ablation_patterns");
    g.bench_function("seed_patterns_only", |b| {
        b.iter(|| parses.iter().filter(|p| match_sentence(black_box(p), &seeds).is_some()).count())
    });
    g.bench_function("bootstrapped_patterns", |b| {
        b.iter(|| parses.iter().filter(|p| match_sentence(black_box(p), &full).is_some()).count())
    });
    g.finish();
}

criterion_group!(benches, bench_reachability_ablation, bench_uri_ablation, bench_pattern_ablation);
criterion_main!(benches);
