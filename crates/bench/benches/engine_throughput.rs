//! Serial-vs-parallel throughput of the batch engine over the paper's
//! 1,197-app dataset.
//!
//! Beyond the criterion timings, the bench prints a one-shot comparison:
//! wall time at `jobs=1` vs `jobs=N`, the resulting speedup (the issue's
//! acceptance bar is >2× on multi-core hardware), and the policy-cache
//! hit counts proving that the 81 lib policies are analyzed exactly once
//! per run.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::emit::BenchResult;
use ppchecker_core::PPChecker;
use ppchecker_corpus::{paper_dataset, small_dataset, Dataset};
use ppchecker_engine::{available_jobs, Engine};
use std::hint::black_box;
use std::time::Instant;

fn engine_for(dataset: &Dataset) -> Engine {
    Engine::with_lib_policies(
        PPChecker::new(),
        dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone())),
    )
}

fn run_once(dataset: &Dataset, jobs: usize) -> (std::time::Duration, u64, u64) {
    let engine = engine_for(dataset).with_jobs(jobs);
    let t = Instant::now();
    let batch = engine.run(dataset.iter_apps().cloned());
    let wall = t.elapsed();
    assert_eq!(batch.metrics.errors, 0, "generated corpora analyze cleanly");
    (wall, batch.metrics.policy_cache.hits, batch.metrics.policy_cache.misses)
}

/// One-shot full-corpus comparison, printed once before the sampled
/// benches (criterion sampling over the full 1,197-app corpus would take
/// minutes per data point).
fn report_full_corpus() {
    let dataset = paper_dataset(42);
    let jobs = available_jobs();
    println!("engine_throughput: full corpus, {} apps", dataset.apps.len());

    let (serial, _, serial_misses) = run_once(&dataset, 1);
    let (parallel, hits, misses) = run_once(&dataset, jobs);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    println!("  jobs=1: {serial:?}  jobs={jobs}: {parallel:?}  speedup: {speedup:.2}x");
    println!(
        "  policy cache at jobs={jobs}: {hits} hits / {misses} misses \
         (jobs=1 misses: {serial_misses}) — each distinct policy text analyzed once"
    );
    // Per-engine caches: lib policies are registered at construction, so a
    // run only pays misses for distinct app policy texts.
    let engine = engine_for(&dataset);
    let lib_stats = engine.cache().stats();
    println!(
        "  lib policies: {} registered, {} distinct texts analyzed ({} served from cache)",
        dataset.lib_policies.len(),
        lib_stats.misses,
        lib_stats.hits
    );
}

/// Repeated parallel runs over a 150-app slice, emitted as
/// `BENCH_engine.json` at the repo root (same schema as the serve
/// bench; see [`ppchecker_bench::emit`]).
///
/// The first `WARMUP` runs are discarded: the cold run pays lazy-init
/// costs (knowledge-base construction, policy-cache population, page
/// faults) that made p90/p99 report startup, not steady state — the
/// pre-warmup artifacts carried a ~10.3ms cold outlier against a 7.6ms
/// steady-state p50.
fn emit_bench_json() {
    const SLICE: usize = 150;
    const WARMUP: usize = 2;
    const RUNS: usize = 5;
    let dataset = small_dataset(42, SLICE);
    let jobs = available_jobs();
    for _ in 0..WARMUP {
        black_box(run_once(&dataset, jobs));
    }
    let mut runs = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (wall, _, _) = run_once(&dataset, jobs);
        runs.push(wall);
    }
    let total: f64 = runs.iter().map(std::time::Duration::as_secs_f64).sum();
    let throughput = (RUNS * SLICE) as f64 / total;
    let result = BenchResult {
        bench: "engine_throughput".to_string(),
        config: vec![
            ("apps".to_string(), SLICE.to_string()),
            ("jobs".to_string(), jobs.to_string()),
            ("warmup".to_string(), WARMUP.to_string()),
            ("runs".to_string(), RUNS.to_string()),
            ("seed".to_string(), "42".to_string()),
        ],
        runs,
        throughput,
    };
    let path = result.write("engine").expect("write BENCH_engine.json");
    println!("engine_throughput: {throughput:.1} apps/s sustained, wrote {}", path.display());
}

fn bench_engine(c: &mut Criterion) {
    report_full_corpus();
    emit_bench_json();

    // Sampled benches on a 150-app slice keep criterion's runtime sane
    // while preserving the serial-vs-parallel contrast.
    let dataset = small_dataset(42, 150);
    let jobs = available_jobs();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("batch_150_serial", |b| {
        let engine = engine_for(&dataset).with_jobs(1);
        b.iter(|| black_box(engine.run(dataset.iter_apps().cloned())))
    });
    g.bench_function("batch_150_parallel", |b| {
        let engine = engine_for(&dataset).with_jobs(jobs);
        b.iter(|| black_box(engine.run(dataset.iter_apps().cloned())))
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
