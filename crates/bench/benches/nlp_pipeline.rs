//! Front-end microbenches: the tokenize → tag → parse → analyze path in
//! isolation from the engine, so the cost of the NLP pipeline per policy
//! is visible on its own.
//!
//! Prints a one-shot report with tokens/sec, sentences/sec and
//! policy-analyses/sec over a seeded 50-app corpus sample, plus the
//! allocation count and heap traffic per analyzed policy measured through
//! a counting global allocator. The interning refactor is judged by these
//! numbers: fewer allocations per policy at equal or better throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_corpus::small_dataset;
use ppchecker_nlp::sentence::split_sentences;
use ppchecker_nlp::token::tokenize;
use ppchecker_policy::html::extract_text;
use ppchecker_policy::PolicyAnalyzer;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wraps the system allocator with allocation counters so the bench can
/// report allocations per policy, not just wall time.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// One-shot throughput + allocation report over a seeded 50-app sample.
fn report_pipeline() {
    let dataset = small_dataset(42, 50);
    let texts: Vec<String> =
        dataset.apps.iter().map(|app| extract_text(&app.input.policy_html)).collect();
    let sentences: Vec<String> = texts.iter().flat_map(|t| split_sentences(t)).collect();
    let analyzer = PolicyAnalyzer::new();

    // Warm every lazily-initialized table (lexicon, patterns, interner)
    // so the report measures steady-state per-policy cost.
    for app in &dataset.apps {
        black_box(analyzer.analyze_html(&app.input.policy_html));
    }

    println!("nlp_pipeline: {} policies, {} sentences", dataset.apps.len(), sentences.len());

    let t = Instant::now();
    let mut n_tokens = 0usize;
    for s in &sentences {
        n_tokens += black_box(tokenize(s)).len();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "  tokenize: {n_tokens} tokens in {:.2}ms  ({:.2}M tokens/sec)",
        dt * 1e3,
        n_tokens as f64 / dt / 1e6
    );

    let t = Instant::now();
    let mut n_sents = 0usize;
    for text in &texts {
        n_sents += black_box(split_sentences(text)).len();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "  split: {n_sents} sentences in {:.2}ms  ({:.0}k sentences/sec)",
        dt * 1e3,
        n_sents as f64 / dt / 1e3
    );

    let (calls0, bytes0) = alloc_snapshot();
    let t = Instant::now();
    for app in &dataset.apps {
        black_box(analyzer.analyze_html(&app.input.policy_html));
    }
    let dt = t.elapsed().as_secs_f64();
    let (calls1, bytes1) = alloc_snapshot();
    let n = dataset.apps.len() as u64;
    println!("  analyze: {} policies in {:.2}ms  ({:.0} analyses/sec)", n, dt * 1e3, n as f64 / dt);
    println!(
        "  allocations: {} calls / {} KiB total  ({} calls, {:.1} KiB per policy)",
        calls1 - calls0,
        (bytes1 - bytes0) / 1024,
        (calls1 - calls0) / n,
        (bytes1 - bytes0) as f64 / n as f64 / 1024.0
    );
}

fn bench_pipeline(c: &mut Criterion) {
    report_pipeline();

    let dataset = small_dataset(42, 50);
    let texts: Vec<String> =
        dataset.apps.iter().map(|app| extract_text(&app.input.policy_html)).collect();
    let sentences: Vec<String> = texts.iter().flat_map(|t| split_sentences(t)).collect();
    let analyzer = PolicyAnalyzer::new();

    let mut g = c.benchmark_group("nlp");
    g.sample_size(10);
    g.bench_function("tokenize_corpus_sentences", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for s in &sentences {
                n += black_box(tokenize(s)).len();
            }
            n
        })
    });
    g.bench_function("split_corpus_texts", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += black_box(split_sentences(t)).len();
            }
            n
        })
    });
    g.bench_function("analyze_50_policies", |b| {
        b.iter(|| {
            for app in &dataset.apps {
                black_box(analyzer.analyze_html(&app.input.policy_html));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
