//! Cold-vs-warm re-analysis over a versioned corpus: the persistent
//! artifact store's headline workload.
//!
//! The bench builds a [`ppchecker_corpus::versioned_history`] — a base
//! snapshot plus mutated releases (policy drift, permission adds, lib
//! swaps on ~10% of apps per version) — then measures three regimes
//! against one on-disk store:
//!
//! 1. **cold** — empty store, every app analyzed from scratch;
//! 2. **warm** — same snapshot re-run through a fresh engine: every
//!    report replays from disk (the issue's acceptance bar is a ≥3×
//!    wall-clock win);
//! 3. **incremental** — the next release re-run warm: only the mutated
//!    apps pay for analysis.
//!
//! Headline numbers land in `BENCH_store.json` at the repo root (stable
//! schema, see [`ppchecker_bench::emit`]): `runs` holds the warm
//! wall-times, and `config` records the cold baseline and speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::emit::BenchResult;
use ppchecker_corpus::{versioned_history, CorpusVersion, VersionedHistory};
use ppchecker_engine::Engine;
use ppchecker_store::Store;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const APPS: usize = 150;
const VERSIONS: usize = 3;
const CHANGE_PERCENT: u64 = 10;
const SEED: u64 = 42;
const WARM_RUNS: usize = 5;

fn scratch_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppbench-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one snapshot through a fresh engine over `store`, returning the
/// wall time and how many apps replayed from disk.
fn run_version(
    history: &VersionedHistory,
    version: &CorpusVersion,
    store: &Arc<Store>,
) -> (Duration, u64) {
    let engine = Engine::new(history.make_checker()).with_store(Arc::clone(store));
    let t = Instant::now();
    let batch = engine.run(version.apps.iter().map(|a| a.input.clone()));
    let wall = t.elapsed();
    assert_eq!(batch.metrics.errors, 0, "generated corpora analyze cleanly");
    let skipped = batch.metrics.store.map(|s| s.apps_skipped).unwrap_or(0);
    (wall, skipped)
}

fn emit_bench_json() {
    let history = versioned_history(SEED, APPS, VERSIONS, CHANGE_PERCENT);
    let dir = scratch_store("emit");
    let store = Arc::new(Store::open(&dir).expect("open scratch store"));
    let base = &history.versions[0];

    let (cold, cold_skipped) = run_version(&history, base, &store);
    assert_eq!(cold_skipped, 0, "cold run must analyze everything");

    let mut warm_runs = Vec::with_capacity(WARM_RUNS);
    for _ in 0..WARM_RUNS {
        let (wall, skipped) = run_version(&history, base, &store);
        assert_eq!(skipped as usize, APPS, "warm run must replay every app");
        warm_runs.push(wall);
    }
    let warm_total: f64 = warm_runs.iter().map(Duration::as_secs_f64).sum();
    let warm_mean = warm_total / WARM_RUNS as f64;
    let speedup = cold.as_secs_f64() / warm_mean;

    // The incremental regime: the next release over the same store.
    let next = &history.versions[1];
    let (incr, incr_skipped) = run_version(&history, next, &store);
    let changed = next.changes.len();
    assert_eq!(
        incr_skipped as usize,
        APPS - changed,
        "incremental run must re-analyze exactly the changed apps"
    );

    let throughput = (WARM_RUNS * APPS) as f64 / warm_total;
    let result = BenchResult {
        bench: "incremental_reanalysis".to_string(),
        config: vec![
            ("apps".to_string(), APPS.to_string()),
            ("versions".to_string(), VERSIONS.to_string()),
            ("change_percent".to_string(), CHANGE_PERCENT.to_string()),
            ("seed".to_string(), SEED.to_string()),
            ("cold_us".to_string(), (cold.as_micros() as u64).to_string()),
            ("incremental_us".to_string(), (incr.as_micros() as u64).to_string()),
            ("incremental_changed".to_string(), changed.to_string()),
            ("warm_speedup".to_string(), format!("{speedup:.2}")),
        ],
        runs: warm_runs,
        throughput,
    };
    let path = result.write("store").expect("write BENCH_store.json");
    println!(
        "incremental_reanalysis: cold {cold:?}, warm mean {:.1?} ({speedup:.1}x), \
         incremental {incr:?} over {changed}/{APPS} changed apps; wrote {}",
        Duration::from_secs_f64(warm_mean),
        path.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_incremental(c: &mut Criterion) {
    emit_bench_json();

    let history = versioned_history(SEED, 60, 2, CHANGE_PERCENT);
    let base = &history.versions[0];
    let next = &history.versions[1];
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.bench_function("cold_60", |b| {
        b.iter(|| {
            let dir = scratch_store("cold");
            let store = Arc::new(Store::open(&dir).expect("open scratch store"));
            black_box(run_version(&history, base, &store));
            let _ = std::fs::remove_dir_all(&dir);
        })
    });
    {
        let dir = scratch_store("warm");
        let store = Arc::new(Store::open(&dir).expect("open scratch store"));
        run_version(&history, base, &store);
        g.bench_function("warm_60", |b| b.iter(|| black_box(run_version(&history, base, &store))));
        g.bench_function("incremental_60", |b| {
            b.iter(|| black_box(run_version(&history, next, &store)))
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
