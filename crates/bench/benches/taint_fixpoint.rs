//! Microbench of the static-analysis taint core: the dense-ID bitset
//! kernel vs the retained BTreeSet reference engine, over the 50-app
//! golden corpus (cold fixpoint, warm library-summary cache,
//! reachability-only).
//!
//! Prints a one-shot comparison (the PR-4 acceptance bar is ≥ 2× on the
//! cold fixpoint) with per-app allocation counts from a counting global
//! allocator, before the sampled criterion groups.

use criterion::{criterion_group, criterion_main, Criterion};
use ppchecker_bench::emit::BenchResult;
use ppchecker_corpus::small_dataset;
use ppchecker_static::apg::Apg;
use ppchecker_static::graph::NodeId;
use ppchecker_static::{reach, taint};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wraps the system allocator with counters so the bench reports
/// allocations per analyzed app, not just wall time.
struct CountingAlloc;

static ALLOC_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ALLOC_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(std::sync::atomic::Ordering::Relaxed),
        ALLOC_BYTES.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// The 50-app golden corpus, pre-built to APGs with their reachable sets
/// so the bench isolates the taint fixpoint from dex parsing.
fn golden_apgs() -> Vec<(Apg, HashSet<NodeId>)> {
    small_dataset(42, 50)
        .apps
        .iter()
        .filter_map(|app| Apg::build(&app.input.apk).ok())
        .map(|apg| {
            let methods = reach::reachable_methods(&apg);
            (apg, methods)
        })
        .collect()
}

fn run_reference(apps: &[(Apg, HashSet<NodeId>)]) -> usize {
    apps.iter().map(|(apg, methods)| taint::analyze_reference(apg, methods).len()).sum()
}

fn run_kernel_cold(apps: &[(Apg, HashSet<NodeId>)]) -> usize {
    apps.iter().map(|(apg, methods)| taint::analyze(apg, methods).len()).sum()
}

fn run_kernel_cached(
    apps: &[(Apg, HashSet<NodeId>)],
    cache: &ppchecker_static::TaintSummaryCache,
) -> usize {
    apps.iter().map(|(apg, methods)| taint::analyze_cached(apg, methods, Some(cache)).len()).sum()
}

fn run_reachability(apps: &[(Apg, HashSet<NodeId>)]) -> usize {
    apps.iter().map(|(apg, _)| reach::reachable_methods(apg).len()).sum()
}

/// Runs `f` for `reps` timed rounds and returns the fastest — the usual
/// microbench defense against scheduler noise on a shared box.
fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

/// One-shot report: cold fixpoint reference vs kernel (the acceptance
/// number), warm summary-cache pass, reachability-only, and per-app
/// allocation counts for both engines. Every duration is best-of-3.
fn report_taint(apps: &[(Apg, HashSet<NodeId>)]) {
    let n = apps.len();
    println!("taint_fixpoint: {n} apps (golden corpus)");

    const PASSES: usize = 50;
    // Warm-up: fault in lazy tables so the timed passes are steady-state.
    black_box(run_reference(apps));
    black_box(run_kernel_cold(apps));

    // Allocation counts from one steady-state pass of each engine.
    let (calls0, bytes0) = alloc_snapshot();
    black_box(run_reference(apps));
    let (calls1, bytes1) = alloc_snapshot();
    let ref_allocs = (calls1 - calls0) / n as u64;
    let ref_bytes = (bytes1 - bytes0) / n as u64;
    let (calls0, bytes0) = alloc_snapshot();
    black_box(run_kernel_cold(apps));
    let (calls1, bytes1) = alloc_snapshot();
    let kernel_allocs = (calls1 - calls0) / n as u64;
    let kernel_bytes = (bytes1 - bytes0) / n as u64;

    let reference_dt = best_of(3, || (0..PASSES).map(|_| run_reference(apps)).sum());
    let kernel_dt = best_of(3, || (0..PASSES).map(|_| run_kernel_cold(apps)).sum());

    let cache = ppchecker_static::TaintSummaryCache::new();
    black_box(run_kernel_cached(apps, &cache)); // populate the cache
    let warm_dt = best_of(3, || (0..PASSES).map(|_| run_kernel_cached(apps, &cache)).sum());
    let (cache_hits, cache_misses, cache_entries) = (cache.hits(), cache.misses(), cache.entries());

    let reach_dt = best_of(3, || (0..PASSES).map(|_| run_reachability(apps)).sum());

    let speedup = reference_dt.as_secs_f64() / kernel_dt.as_secs_f64();
    println!("  btreeset reference: {reference_dt:?} for {PASSES} passes");
    println!("  bitset kernel cold: {kernel_dt:?} for {PASSES} passes  speedup: {speedup:.2}x");
    println!("  bitset kernel warm summary cache: {warm_dt:?} for {PASSES} passes");
    println!(
        "  summary cache: {cache_hits} hits / {cache_misses} misses ({cache_entries} entries)"
    );
    println!("  reachability only: {reach_dt:?} for {PASSES} passes");
    println!("  allocations/app: reference {ref_allocs} calls / {ref_bytes} B, kernel {kernel_allocs} calls / {kernel_bytes} B");
}

/// A lib-heavy workload: `n` distinct apps all embedding the same fat ad
/// library whose methods are *reachable* (the activity calls into the SDK
/// entry chain), so the summary cache's interpretation savings show up —
/// unlike the paper corpus, whose embedded lib code is dead weight.
///
/// Each SDK method is self-contained the way analytics initializers are:
/// it sources identifiers, launders them through a pile of framework
/// calls, and logs them locally; the chain call into the next class
/// passes an untainted handle and no return value. That shape is the
/// summary cache's home turf — replaying `F_m(∅)` leaves every lib
/// method's inputs at ∅, so the warm fixpoint skips their
/// interpretation entirely instead of re-queueing them.
fn lib_heavy_apps(n: usize) -> Vec<(Apg, HashSet<NodeId>)> {
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};
    (0..n)
        .map(|i| {
            let pkg = format!("com.libheavy{i}");
            let main = format!("{pkg}.Main");
            let mut manifest = Manifest::new(&pkg);
            manifest.add_component(ComponentKind::Activity, &main, true);
            let mut builder = Dex::builder().class(&main, |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_static("com.google.android.gms.ads.Sdk0", "init", &[0], Some(1));
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
            });
            // One shared library, identical bytes in every app.
            for k in 0..24 {
                let cls = format!("com.google.android.gms.ads.Sdk{k}");
                let next = format!("com.google.android.gms.ads.Sdk{}", k + 1);
                builder = builder.class(&cls, |c| {
                    c.method("init", 1, |m| {
                        m.invoke_virtual(
                            "android.telephony.TelephonyManager",
                            "getDeviceId",
                            &[0],
                            Some(2),
                        );
                        m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(3));
                        m.invoke_virtual("java.lang.StringBuilder", "append", &[5, 2], Some(4));
                        for _ in 0..7 {
                            m.invoke_virtual("java.lang.StringBuilder", "append", &[4, 3], Some(4));
                            m.invoke_virtual("java.lang.StringBuilder", "append", &[4, 2], Some(4));
                        }
                        m.invoke_static("android.util.Log", "d", &[4], None);
                        if k + 1 < 24 {
                            m.invoke_static(&next, "init", &[6], Some(7));
                        }
                    });
                });
            }
            let apk = Apk::new(manifest, builder.build());
            let apg = Apg::build(&apk).unwrap();
            let methods = reach::reachable_methods(&apg);
            (apg, methods)
        })
        .collect()
}

fn report_lib_heavy() {
    let apps = lib_heavy_apps(40);
    println!("taint_fixpoint: lib-heavy workload ({} apps sharing one reachable SDK)", apps.len());
    const PASSES: usize = 20;
    black_box(run_kernel_cold(&apps));
    let cold_dt = best_of(3, || (0..PASSES).map(|_| run_kernel_cold(&apps)).sum());

    let cache = ppchecker_static::TaintSummaryCache::new();
    black_box(run_kernel_cached(&apps, &cache));
    let warm_dt = best_of(3, || (0..PASSES).map(|_| run_kernel_cached(&apps, &cache)).sum());
    let speedup = cold_dt.as_secs_f64() / warm_dt.as_secs_f64();
    println!("  kernel cold:              {cold_dt:?} for {PASSES} passes");
    println!(
        "  kernel warm summary cache: {warm_dt:?} for {PASSES} passes  speedup: {speedup:.2}x"
    );
    println!(
        "  summary cache: {} hits / {} misses ({} entries)",
        cache.hits(),
        cache.misses(),
        cache.entries()
    );
}

/// Per-run cold-fixpoint latencies over the golden corpus, emitted as
/// `BENCH_taint.json` (see [`ppchecker_bench::emit`]); warmup runs are
/// discarded so the quantiles report steady state, not lazy-init cost.
fn emit_bench_json(apps: &[(Apg, HashSet<NodeId>)]) {
    const WARMUP: usize = 2;
    const RUNS: usize = 10;
    for _ in 0..WARMUP {
        black_box(run_kernel_cold(apps));
    }
    let mut runs = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t = Instant::now();
        black_box(run_kernel_cold(apps));
        runs.push(t.elapsed());
    }
    let total: f64 = runs.iter().map(Duration::as_secs_f64).sum();
    let throughput = (RUNS * apps.len()) as f64 / total;
    let result = BenchResult {
        bench: "taint_fixpoint".to_string(),
        config: vec![
            ("apps".to_string(), apps.len().to_string()),
            ("warmup".to_string(), WARMUP.to_string()),
            ("runs".to_string(), RUNS.to_string()),
            ("seed".to_string(), "42".to_string()),
        ],
        runs,
        throughput,
    };
    let path = result.write("taint").expect("write BENCH_taint.json");
    println!("taint_fixpoint: {throughput:.0} apps/s cold, wrote {}", path.display());
}

fn bench_taint(c: &mut Criterion) {
    let apps = golden_apgs();
    report_taint(&apps);
    report_lib_heavy();
    emit_bench_json(&apps);

    let mut g = c.benchmark_group("taint");
    g.sample_size(20);
    g.bench_function("cold_reference", |b| b.iter(|| black_box(run_reference(&apps))));
    g.bench_function("cold_kernel", |b| b.iter(|| black_box(run_kernel_cold(&apps))));
    let cache = ppchecker_static::TaintSummaryCache::new();
    black_box(run_kernel_cached(&apps, &cache));
    g.bench_function("warm_summary_cache", |b| {
        b.iter(|| black_box(run_kernel_cached(&apps, &cache)))
    });
    g.bench_function("reachability_only", |b| b.iter(|| black_box(run_reachability(&apps))));
    g.finish();
}

criterion_group!(benches, bench_taint);
criterion_main!(benches);
