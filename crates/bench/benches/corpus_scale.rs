//! Streamed corpus scale-out: sustain ≥100k generated apps through the
//! pipelined generate→analyze path with bounded memory.
//!
//! This is the evidence bench for the streaming engine path: apps are
//! produced by sharded background generators ([`stream_scaled_sharded`])
//! and analyzed through [`Engine::run_streamed`] without ever
//! materializing the corpus — peak memory is the in-flight window, not
//! the app count. Two phases run in one process:
//!
//! 1. a 10k-app streamed run (after warmup), recording wall time and the
//!    process peak RSS (`VmHWM`) as the small-scale reference;
//! 2. a 100k-app streamed run measured as ten 10k-app windows (the
//!    per-window wall times become the artifact's `runs`, so the
//!    quantiles expose throughput sag over the stream), recording peak
//!    RSS again.
//!
//! The bench then asserts the memory headline: the 100k peak must stay
//! within a fixed additive slack of the 10k peak. A linear-in-N buffer
//! anywhere on the path (generator, reorder window, record sink) blows
//! that bound immediately — 10× the apps may not cost 10× the memory.
//!
//! Emits `BENCH_scale.json` (schema in [`ppchecker_bench::emit`]) and
//! joins the strict `BENCH_BASELINE.json` gate like every other
//! throughput bench.

use ppchecker_bench::emit::BenchResult;
use ppchecker_core::PPChecker;
use ppchecker_corpus::stream_scaled_sharded;
use ppchecker_engine::{available_jobs, Engine};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const WINDOW: usize = 10_000;
const SMALL: usize = 10_000;
const LARGE: usize = 100_000;
/// Additive slack for the bounded-memory assertion, in KiB. Covers the
/// parts that legitimately grow sub-linearly with apps seen (interner
/// symbols from novel index digits, histogram buckets, allocator
/// high-water marks) with a wide margin; a linear buffer of app inputs
/// or records (~1 MiB per 100 apps) would overshoot it at once.
const RSS_SLACK_KB: u64 = 262_144;

fn engine() -> Engine {
    let libs = ppchecker_corpus::libs::lib_policies()
        .into_iter()
        .map(|lp| (lp.lib.id.to_string(), lp.html));
    Engine::with_lib_policies(PPChecker::new(), libs).with_jobs(available_jobs())
}

/// Process peak RSS (`VmHWM`) in KiB, from `/proc/self/status`; 0 when
/// the file is unavailable (non-Linux), which disables the assertion.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Streams `n` apps through the engine, returning per-window wall times
/// (every `WINDOW` completed records) and the run's problem-app count.
fn run_streamed(engine: &Engine, n: usize) -> (Vec<Duration>, usize) {
    let shards = available_jobs();
    let apps = stream_scaled_sharded(SEED, n, shards).map(|g| g.input);
    let mut windows = Vec::with_capacity(n / WINDOW);
    let mut seen = 0usize;
    let mut window_start = Instant::now();
    let summary = engine.run_streamed(apps, |record| {
        std::hint::black_box(&record);
        seen += 1;
        if seen.is_multiple_of(WINDOW) {
            windows.push(window_start.elapsed());
            window_start = Instant::now();
        }
    });
    assert_eq!(summary.aggregate.apps, n, "every streamed app must be analyzed");
    assert_eq!(summary.aggregate.errors, 0, "generated corpora analyze cleanly");
    (windows, summary.aggregate.problem_apps)
}

fn main() {
    let engine = engine();
    let jobs = available_jobs();
    println!("corpus_scale: streaming via {} generator shard(s), {jobs} job(s)", jobs);

    // Warmup pays one-time costs (KB construction, lib-policy analysis)
    // outside the measured windows.
    let _ = run_streamed(&engine, 2_000);

    let t = Instant::now();
    let _ = run_streamed(&engine, SMALL);
    let small_wall = t.elapsed();
    let rss_small = peak_rss_kb();
    println!(
        "corpus_scale: {SMALL} apps in {small_wall:?} ({:.0} apps/s), peak RSS {} MiB",
        SMALL as f64 / small_wall.as_secs_f64(),
        rss_small / 1024
    );

    let t = Instant::now();
    let (windows, problems) = run_streamed(&engine, LARGE);
    let large_wall = t.elapsed();
    let rss_large = peak_rss_kb();
    let throughput = LARGE as f64 / large_wall.as_secs_f64();
    println!(
        "corpus_scale: {LARGE} apps in {large_wall:?} ({throughput:.0} apps/s sustained, \
         {problems} problem apps), peak RSS {} MiB",
        rss_large / 1024
    );

    // The memory headline: 10× the apps must not cost linear memory.
    if rss_small > 0 {
        assert!(
            rss_large <= rss_small + RSS_SLACK_KB,
            "peak RSS grew from {rss_small} KiB (10k apps) to {rss_large} KiB (100k apps) — \
             more than the {RSS_SLACK_KB} KiB slack; something buffers linearly in N"
        );
        println!(
            "corpus_scale: peak RSS delta {} KiB within the {} KiB bound",
            rss_large - rss_small,
            RSS_SLACK_KB
        );
    }

    let result = BenchResult {
        bench: "corpus_scale".to_string(),
        config: vec![
            ("apps".to_string(), LARGE.to_string()),
            ("window".to_string(), WINDOW.to_string()),
            ("jobs".to_string(), jobs.to_string()),
            ("shards".to_string(), jobs.to_string()),
            ("seed".to_string(), SEED.to_string()),
            ("peak_rss_10k_kb".to_string(), rss_small.to_string()),
            ("peak_rss_100k_kb".to_string(), rss_large.to_string()),
        ],
        runs: windows,
        throughput,
    };
    let path = result.write("scale").expect("write BENCH_scale.json");
    println!("corpus_scale: wrote {}", path.display());
}
