//! Per-experiment benchmarks: one bench per table/figure of the paper's
//! evaluation section. Each bench exercises exactly the workload that the
//! matching `repro_*` binary uses to regenerate the table.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppchecker_corpus::fig12::{best_n, fig12_corpus, run_sweep};
use ppchecker_corpus::{evaluate, small_dataset};
use ppchecker_policy::bootstrap::score_patterns;
use ppchecker_policy::Bootstrapper;
use std::hint::black_box;

/// Fig. 12 — pattern bootstrapping + Eq. 1 scoring + n-sweep.
fn bench_fig12(c: &mut Criterion) {
    let corpus = fig12_corpus();
    let mut g = c.benchmark_group("fig12_pattern_selection");
    g.sample_size(20);
    g.bench_function("mine_patterns", |b| {
        let bs = Bootstrapper::default();
        b.iter(|| bs.mine(black_box(&corpus.mining)))
    });
    g.bench_function("score_patterns", |b| {
        let pats = Bootstrapper::default().mine(&corpus.mining);
        b.iter(|| score_patterns(black_box(&pats), &corpus.positive, &corpus.negative))
    });
    g.bench_function("full_sweep", |b| {
        b.iter(|| {
            let sweep = run_sweep(black_box(&corpus), 10);
            best_n(&sweep)
        })
    });
    g.finish();
}

/// Table III — incomplete-via-description detection over the
/// description-detected slice of the corpus (apps 0..64).
fn bench_table3(c: &mut Criterion) {
    let dataset = small_dataset(42, 64);
    let checker = dataset.make_checker();
    let mut g = c.benchmark_group("tab3_incomplete_desc");
    g.sample_size(10);
    g.bench_function("detect_64_apps", |b| {
        b.iter(|| {
            let mut flagged = 0usize;
            for app in &dataset.apps {
                let r = checker.check_app(black_box(&app.input)).unwrap();
                if r.missed_via_description().count() > 0 {
                    flagged += 1;
                }
            }
            flagged
        })
    });
    g.finish();
}

/// Fig. 13 — incomplete-via-code detection over a code-only slice
/// (apps 64..164).
fn bench_fig13(c: &mut Criterion) {
    let dataset = small_dataset(42, 164);
    let checker = dataset.make_checker();
    let slice: Vec<_> = dataset.apps.iter().skip(64).collect();
    let mut g = c.benchmark_group("fig13_incomplete_code");
    g.sample_size(10);
    g.bench_function("detect_100_apps", |b| {
        b.iter(|| {
            let mut records = 0usize;
            for app in &slice {
                let r = checker.check_app(black_box(&app.input)).unwrap();
                records += r.missed_via_code().count();
            }
            records
        })
    });
    g.finish();
}

/// Table IV — inconsistency detection over the fresh-inconsistency slice
/// (apps 250..310) with all 81 lib policies registered.
fn bench_table4(c: &mut Criterion) {
    let dataset = small_dataset(42, 310);
    let checker = dataset.make_checker();
    let slice: Vec<_> = dataset.apps.iter().skip(250).collect();
    let mut g = c.benchmark_group("tab4_inconsistency");
    g.sample_size(10);
    g.bench_function("detect_60_apps", |b| {
        b.iter(|| {
            let mut conflicts = 0usize;
            for app in &slice {
                let r = checker.check_app(black_box(&app.input)).unwrap();
                conflicts += r.inconsistencies.len();
            }
            conflicts
        })
    });
    g.finish();
}

/// §V-F summary — the full evaluation over a 200-app prefix (the complete
/// 1,197-app run lives in `repro_summary`).
fn bench_summary(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_summary");
    g.sample_size(10);
    g.bench_function("evaluate_200_apps", |b| {
        b.iter_batched(
            || small_dataset(42, 200),
            |d| evaluate(black_box(&d)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fig12, bench_table3, bench_fig13, bench_table4, bench_summary);
criterion_main!(benches);
