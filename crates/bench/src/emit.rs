//! The checked-in bench artifact: `BENCH_<name>.json` at the repo root.
//!
//! Every throughput bench emits one JSON document with a stable schema,
//! so successive PRs can diff headline numbers without parsing
//! criterion's sample directories:
//!
//! ```json
//! {
//!   "bench": "serve_throughput",
//!   "config": {"workers": 8, "apps": 48},
//!   "runs": [1234, 1310, ...],        // per-run latencies, microseconds
//!   "p50_us": 1280, "p90_us": 1890, "p99_us": 2410,
//!   "throughput": 312.5               // operations per second
//! }
//! ```
//!
//! `runs` holds every individual measurement (request latencies for the
//! serve bench, per-run wall times for the engine bench); the quantiles
//! are computed from it by nearest-rank so the document is
//! self-consistent.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The repo root, resolved from the bench crate's manifest dir — benches
/// run with the package as CWD, and the artifact belongs at the root.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Nearest-rank quantile over an unsorted sample, in microseconds.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One bench's headline result, ready to serialize.
#[derive(Debug)]
pub struct BenchResult {
    /// Bench name (`serve_throughput`, `engine_throughput`).
    pub bench: String,
    /// Key/value config the numbers were measured under, in insertion
    /// order. Values are serialized raw, so pass numbers as numbers
    /// (`("workers", "8")`) and pre-quote actual strings.
    pub config: Vec<(String, String)>,
    /// Individual measurements, as durations.
    pub runs: Vec<Duration>,
    /// Operations per second over the whole measured window.
    pub throughput: f64,
}

impl BenchResult {
    /// Renders the stable JSON schema.
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<u64> = self.runs.iter().map(|d| d.as_micros() as u64).collect();
        sorted.sort_unstable();
        let config: Vec<String> = self.config.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        let runs: Vec<String> = sorted.iter().map(u64::to_string).collect();
        format!(
            "{{\"bench\":\"{}\",\"config\":{{{}}},\"runs\":[{}],\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"throughput\":{:.2}}}\n",
            self.bench,
            config.join(","),
            runs.join(","),
            quantile_us(&sorted, 0.50),
            quantile_us(&sorted, 0.90),
            quantile_us(&sorted, 0.99),
            self.throughput,
        )
    }

    /// Writes `BENCH_<suffix>.json` at the repo root and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, suffix: &str) -> io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{suffix}.json"));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// A validated bench document's headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHeadline {
    /// The `bench` name.
    pub bench: String,
    /// Number of entries in `runs`.
    pub runs: usize,
    /// The `throughput` field, operations per second.
    pub throughput: f64,
}

/// Validates a `BENCH_*.json` document against the stable schema that
/// [`BenchResult::to_json`] emits: `bench` (string), `config` (object),
/// `runs` (sorted array of non-negative integers), `p50_us`/`p90_us`/
/// `p99_us` (numbers consistent with `runs` by nearest rank), and
/// `throughput` (non-negative number).
///
/// # Errors
///
/// Returns a one-line description of the first schema violation.
pub fn validate(text: &str) -> Result<BenchHeadline, String> {
    use ppchecker_obs::json::{parse, Value};
    let doc = parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("missing or non-string \"bench\"")?
        .to_string();
    match doc.get("config") {
        Some(Value::Obj(_)) => {}
        _ => return Err("missing or non-object \"config\"".to_string()),
    }
    let runs: Vec<u64> = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("missing or non-array \"runs\"")?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| "\"runs\" entries must be non-negative integers".to_string())
        })
        .collect::<Result<_, _>>()?;
    if runs.windows(2).any(|w| w[0] > w[1]) {
        return Err("\"runs\" must be sorted ascending".to_string());
    }
    for (key, q) in [("p50_us", 0.50), ("p90_us", 0.90), ("p99_us", 0.99)] {
        let got = doc
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing or non-numeric \"{key}\""))?;
        let want = quantile_us(&runs, q) as f64;
        if got != want {
            return Err(format!("\"{key}\" is {got} but runs say {want}"));
        }
    }
    let throughput = doc
        .get("throughput")
        .and_then(Value::as_f64)
        .filter(|t| *t >= 0.0)
        .ok_or("missing, non-numeric, or negative \"throughput\"")?;
    Ok(BenchHeadline { bench, runs: runs.len(), throughput })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(list: &[u64]) -> Vec<Duration> {
        list.iter().map(|&n| Duration::from_micros(n)).collect()
    }

    #[test]
    fn schema_has_all_headline_fields() {
        let result = BenchResult {
            bench: "unit_test".to_string(),
            config: vec![
                ("workers".to_string(), "4".to_string()),
                ("apps".to_string(), "10".to_string()),
            ],
            runs: us(&[300, 100, 200]),
            throughput: 123.456,
        };
        let json = result.to_json();
        assert!(json.contains("\"bench\":\"unit_test\""));
        assert!(json.contains("\"config\":{\"workers\":4,\"apps\":10}"));
        assert!(json.contains("\"runs\":[100,200,300]"), "runs sorted: {json}");
        assert!(json.contains("\"p50_us\":200"));
        assert!(json.contains("\"p90_us\":300"));
        assert!(json.contains("\"p99_us\":300"));
        assert!(json.contains("\"throughput\":123.46"));
        // The emitted document parses with the workspace JSON parser.
        assert!(ppchecker_obs::json::parse(json.trim()).is_ok());
    }

    #[test]
    fn emitted_documents_validate() {
        let result = BenchResult {
            bench: "round_trip".to_string(),
            config: vec![("apps".to_string(), "3".to_string())],
            runs: us(&[500, 100, 900]),
            throughput: 42.0,
        };
        let headline = validate(&result.to_json()).unwrap();
        assert_eq!(headline.bench, "round_trip");
        assert_eq!(headline.runs, 3);
        assert!((headline.throughput - 42.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let good = BenchResult {
            bench: "x".to_string(),
            config: vec![],
            runs: us(&[100, 200]),
            throughput: 1.0,
        }
        .to_json();
        assert!(validate("not json").is_err());
        assert!(validate(&good.replace("\"bench\":\"x\"", "\"bench\":7")).is_err());
        assert!(validate(&good.replace("\"p90_us\":200", "\"p90_us\":999"))
            .unwrap_err()
            .contains("p90_us"));
        assert!(validate(&good.replace("[100,200]", "[200,100]")).unwrap_err().contains("sorted"));
        assert!(validate(&good.replace("\"throughput\":1.00", "\"throughput\":-1.00")).is_err());
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&sorted, 0.50), 50);
        assert_eq!(quantile_us(&sorted, 0.90), 90);
        assert_eq!(quantile_us(&sorted, 0.99), 99);
        assert_eq!(quantile_us(&[], 0.5), 0);
        assert_eq!(quantile_us(&[7], 0.99), 7);
    }
}
