//! The checked-in bench evidence: `BENCH_<name>.json` artifacts, the
//! `BENCH_BASELINE.json` trajectory gate, and the rendered `report.md`,
//! all at the repo root.
//!
//! Every throughput bench emits one JSON document with a stable schema,
//! so successive PRs can diff headline numbers without parsing
//! criterion's sample directories:
//!
//! ```json
//! {
//!   "bench": "serve_throughput",
//!   "config": {"workers": 8, "apps": 48},
//!   "runs": [1234, 1310, ...],        // per-run latencies, microseconds
//!   "p50_us": 1280, "p90_us": 1890, "p99_us": 2410,
//!   "throughput": 312.5               // operations per second
//! }
//! ```
//!
//! `runs` holds every individual measurement (request latencies for the
//! serve bench, per-run wall times for the engine bench); the quantiles
//! are computed from it by nearest-rank so the document is
//! self-consistent.
//!
//! On top of the per-artifact schema sit two evidence layers:
//!
//! * [`Baseline`] reads `BENCH_BASELINE.json` — expected `p50_us`,
//!   `p90_us`, `p99_us`, and `throughput` per bench with a relative
//!   tolerance `band` applied to **each quantile independently** (a tail
//!   regression that leaves the median flat still fails) — and
//!   [`Baseline::check`] turns any excursion outside the band into a
//!   hard error. `bench_schema_check --baseline BENCH_BASELINE.json`
//!   runs it in CI, so a perf regression fails the build instead of
//!   scrolling past as a warning.
//! * [`refresh_report`] renders every artifact into a human `report.md`
//!   table (run count and seed included, so a rendered row pins the
//!   exact reproduction recipe); [`BenchResult::write`] calls it, so the
//!   report can never go stale relative to the artifacts it summarizes.
//!   [`reports_equivalent`] backs `--check-report`: a report whose rows
//!   carry identical data in a different order still passes.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The repo root, resolved from the bench crate's manifest dir — benches
/// run with the package as CWD, and the artifact belongs at the root.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The baseline file name — excluded from artifact scans because it
/// follows the baseline schema, not the per-bench artifact schema.
pub const BASELINE_FILE: &str = "BENCH_BASELINE.json";

/// Nearest-rank quantile over a sorted sample, in microseconds.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One bench's headline result, ready to serialize.
#[derive(Debug)]
pub struct BenchResult {
    /// Bench name (`serve_throughput`, `engine_throughput`).
    pub bench: String,
    /// Key/value config the numbers were measured under, in insertion
    /// order. Values are serialized raw, so pass numbers as numbers
    /// (`("workers", "8")`) and pre-quote actual strings.
    pub config: Vec<(String, String)>,
    /// Individual measurements, as durations.
    pub runs: Vec<Duration>,
    /// Operations per second over the whole measured window.
    pub throughput: f64,
}

impl BenchResult {
    /// Renders the stable JSON schema.
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<u64> = self.runs.iter().map(|d| d.as_micros() as u64).collect();
        sorted.sort_unstable();
        let config: Vec<String> = self.config.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        let runs: Vec<String> = sorted.iter().map(u64::to_string).collect();
        format!(
            "{{\"bench\":\"{}\",\"config\":{{{}}},\"runs\":[{}],\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"throughput\":{:.2}}}\n",
            self.bench,
            config.join(","),
            runs.join(","),
            quantile_us(&sorted, 0.50),
            quantile_us(&sorted, 0.90),
            quantile_us(&sorted, 0.99),
            self.throughput,
        )
    }

    /// Writes `BENCH_<suffix>.json` at the repo root, refreshes
    /// `report.md` from the full artifact set, and returns the artifact
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error, or a validation
    /// error if any sibling artifact no longer conforms to the schema.
    pub fn write(&self, suffix: &str) -> io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{suffix}.json"));
        fs::write(&path, self.to_json())?;
        refresh_report()?;
        Ok(path)
    }
}

/// A validated bench document's headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHeadline {
    /// The `bench` name.
    pub bench: String,
    /// The `config` object, key-sorted, values rendered back to text.
    pub config: Vec<(String, String)>,
    /// Number of entries in `runs`.
    pub runs: usize,
    /// Median latency, microseconds (nearest rank over `runs`).
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// The `throughput` field, operations per second.
    pub throughput: f64,
}

/// Renders a parsed config value back to compact text for the report.
fn render_value(v: &ppchecker_obs::json::Value) -> String {
    use ppchecker_obs::json::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => format!("{}", *n as i64),
        Value::Num(n) => format!("{n}"),
        Value::Str(s) => s.clone(),
        Value::Arr(_) | Value::Obj(_) => "…".to_string(),
    }
}

/// Validates a `BENCH_*.json` document against the stable schema that
/// [`BenchResult::to_json`] emits: `bench` (string), `config` (object),
/// `runs` (sorted array of non-negative integers), `p50_us`/`p90_us`/
/// `p99_us` (numbers consistent with `runs` by nearest rank), and
/// `throughput` (non-negative number).
///
/// # Errors
///
/// Returns a one-line description of the first schema violation.
pub fn validate(text: &str) -> Result<BenchHeadline, String> {
    use ppchecker_obs::json::{parse, Value};
    let doc = parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("missing or non-string \"bench\"")?
        .to_string();
    let config: Vec<(String, String)> = match doc.get("config") {
        Some(Value::Obj(map)) => map.iter().map(|(k, v)| (k.clone(), render_value(v))).collect(),
        _ => return Err("missing or non-object \"config\"".to_string()),
    };
    let runs: Vec<u64> = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("missing or non-array \"runs\"")?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| "\"runs\" entries must be non-negative integers".to_string())
        })
        .collect::<Result<_, _>>()?;
    if runs.windows(2).any(|w| w[0] > w[1]) {
        return Err("\"runs\" must be sorted ascending".to_string());
    }
    let mut quantiles = [0u64; 3];
    for (slot, (key, q)) in
        [("p50_us", 0.50), ("p90_us", 0.90), ("p99_us", 0.99)].into_iter().enumerate()
    {
        let got = doc
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing or non-numeric \"{key}\""))?;
        let want = quantile_us(&runs, q) as f64;
        if got != want {
            return Err(format!("\"{key}\" is {got} but runs say {want}"));
        }
        quantiles[slot] = want as u64;
    }
    let throughput = doc
        .get("throughput")
        .and_then(Value::as_f64)
        .filter(|t| *t >= 0.0)
        .ok_or("missing, non-numeric, or negative \"throughput\"")?;
    Ok(BenchHeadline {
        bench,
        config,
        runs: runs.len(),
        p50_us: quantiles[0],
        p90_us: quantiles[1],
        p99_us: quantiles[2],
        throughput,
    })
}

/// One bench's expected trajectory: the numbers a fresh run must stay
/// within `band` of.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Expected median latency, microseconds.
    pub p50_us: u64,
    /// Expected 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// Expected 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Expected throughput, operations per second.
    pub throughput: f64,
    /// Relative tolerance: throughput may drop to `(1-band)×` and each
    /// quantile may rise to `(1+band)×` before the gate fails.
    pub band: f64,
}

/// The parsed `BENCH_BASELINE.json`: per-bench tolerance bands keyed by
/// the artifact's `bench` name. Each quantile is banded independently —
/// a p99 blow-up fails the gate even when p50 and throughput look fine.
///
/// ```json
/// {
///   "schema": "ppchecker-bench-baseline-v2",
///   "benches": {
///     "engine_throughput": {"p50_us": 7646, "p90_us": 8100, "p99_us": 8400,
///                           "throughput": 18486.0, "band": 0.4}
///   }
/// }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Expected numbers per bench name.
    pub benches: BTreeMap<String, BaselineEntry>,
}

impl Baseline {
    /// Parses a `BENCH_BASELINE.json` document.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first schema violation:
    /// wrong `schema` tag, non-object `benches`, or an entry with a
    /// missing/invalid quantile, `throughput`, or `band`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        use ppchecker_obs::json::{parse, Value};
        let doc = parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some("ppchecker-bench-baseline-v2") => {}
            Some("ppchecker-bench-baseline-v1") => {
                return Err("baseline schema v1 is retired — add p90_us/p99_us to every \
                            entry and bump the tag to ppchecker-bench-baseline-v2"
                    .to_string())
            }
            _ => return Err("missing or unknown \"schema\" tag".to_string()),
        }
        let Some(Value::Obj(map)) = doc.get("benches") else {
            return Err("missing or non-object \"benches\"".to_string());
        };
        let mut benches = BTreeMap::new();
        for (name, entry) in map {
            let num = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("bench {name:?}: missing or non-numeric \"{key}\""))
            };
            let quantile = |key: &str| -> Result<u64, String> {
                let q = num(key)?;
                if q < 0.0 || q.fract() != 0.0 {
                    return Err(format!(
                        "bench {name:?}: \"{key}\" must be a non-negative integer"
                    ));
                }
                Ok(q as u64)
            };
            let p50 = quantile("p50_us")?;
            let p90 = quantile("p90_us")?;
            let p99 = quantile("p99_us")?;
            if p50 > p90 || p90 > p99 {
                return Err(format!("bench {name:?}: quantiles must be non-decreasing"));
            }
            let throughput = num("throughput")?;
            if throughput <= 0.0 {
                return Err(format!("bench {name:?}: \"throughput\" must be positive"));
            }
            let band = num("band")?;
            if !(0.0..1.0).contains(&band) {
                return Err(format!("bench {name:?}: \"band\" must be in [0, 1)"));
            }
            benches.insert(
                name.clone(),
                BaselineEntry { p50_us: p50, p90_us: p90, p99_us: p99, throughput, band },
            );
        }
        Ok(Baseline { benches })
    }

    /// The strict trajectory gate: checks one artifact's headline
    /// against its baseline entry.
    ///
    /// # Errors
    ///
    /// Fails if the bench has no baseline entry (every artifact must be
    /// tracked — an untracked bench is an un-gated bench), if throughput
    /// fell below `baseline × (1 - band)`, or if any of p50/p90/p99
    /// latency rose above its own `baseline × (1 + band)`. On success
    /// returns a one-line summary of where the run sits inside the band.
    pub fn check(&self, headline: &BenchHeadline) -> Result<String, String> {
        let Some(base) = self.benches.get(&headline.bench) else {
            return Err(format!(
                "bench {:?} has no entry in {BASELINE_FILE} — add one so it stays gated",
                headline.bench
            ));
        };
        let floor = base.throughput * (1.0 - base.band);
        if headline.throughput < floor {
            return Err(format!(
                "throughput regression: {:.2}/s is below {:.2}/s (baseline {:.2}/s − {:.0}% band)",
                headline.throughput,
                floor,
                base.throughput,
                base.band * 100.0
            ));
        }
        for (label, got, expected) in [
            ("p50", headline.p50_us, base.p50_us),
            ("p90", headline.p90_us, base.p90_us),
            ("p99", headline.p99_us, base.p99_us),
        ] {
            let ceiling = expected as f64 * (1.0 + base.band);
            if got as f64 > ceiling {
                return Err(format!(
                    "{label} regression: {got}µs is above {ceiling:.0}µs \
                     (baseline {expected}µs + {:.0}% band)",
                    base.band * 100.0
                ));
            }
        }
        Ok(format!(
            "throughput {:.2}/s (baseline {:.2}/s, {:+.1}%), \
             p50 {}µs / p90 {}µs / p99 {}µs (baseline {}/{}/{}µs)",
            headline.throughput,
            base.throughput,
            (headline.throughput / base.throughput - 1.0) * 100.0,
            headline.p50_us,
            headline.p90_us,
            headline.p99_us,
            base.p50_us,
            base.p90_us,
            base.p99_us,
        ))
    }
}

/// Every `BENCH_*.json` artifact under `dir`, sorted by file name, with
/// [`BASELINE_FILE`] excluded (it follows a different schema).
///
/// # Errors
///
/// Propagates the directory-read error.
pub fn bench_artifacts(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != BASELINE_FILE
            })
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Renders the human-facing bench report from validated artifacts.
/// Deterministic: same artifacts in, same markdown out — no timestamps,
/// so regenerating without a perf change is a no-op in `git diff`.
pub fn render_report_md(entries: &[(String, BenchHeadline)]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(
        "# Bench report\n\n\
         Auto-generated from the checked-in `BENCH_*.json` artifacts — every\n\
         `cargo bench -p ppchecker-bench` run that rewrites an artifact also\n\
         rewrites this file. Do not edit by hand. CI holds these numbers inside\n\
         the tolerance bands of `BENCH_BASELINE.json` via\n\
         `bench_schema_check --baseline BENCH_BASELINE.json`.\n\n\
         | artifact | bench | config | runs | seed | p50 (µs) | p90 (µs) | p99 (µs) | throughput (/s) |\n\
         |---|---|---|---:|---:|---:|---:|---:|---:|\n",
    );
    for (name, h) in entries {
        // Seed gets its own column — the reproduction recipe should be
        // readable without digging through the config blob.
        let seed = h
            .config
            .iter()
            .find(|(k, _)| k == "seed")
            .map_or_else(|| "—".to_string(), |(_, v)| v.clone());
        let config: Vec<String> =
            h.config.iter().filter(|(k, _)| k != "seed").map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.2} |\n",
            name,
            h.bench,
            config.join(", "),
            h.runs,
            seed,
            h.p50_us,
            h.p90_us,
            h.p99_us,
            h.throughput,
        ));
    }
    out
}

/// Order-tolerant report comparison for `--check-report`: two reports
/// are equivalent when their non-table text matches exactly and their
/// table rows carry the same data, in any order. A regenerated report
/// whose only difference is row ordering (e.g. artifacts validated in a
/// different directory-scan order) is not stale.
pub fn reports_equivalent(have: &str, want: &str) -> bool {
    if have == want {
        return true;
    }
    let split = |text: &str| -> (Vec<String>, Vec<String>) {
        let mut prose = Vec::new();
        let mut rows = Vec::new();
        for line in text.lines() {
            if line.starts_with('|') {
                rows.push(line.to_string());
            } else {
                prose.push(line.to_string());
            }
        }
        rows.sort();
        (prose, rows)
    };
    split(have) == split(want)
}

/// Re-renders `report.md` at the repo root from every checked-in
/// artifact. Called by [`BenchResult::write`] after each emission, so
/// the report tracks the artifacts by construction.
///
/// # Errors
///
/// Propagates filesystem errors; an artifact that fails [`validate`]
/// becomes an [`io::ErrorKind::InvalidData`] error naming the file.
pub fn refresh_report() -> io::Result<PathBuf> {
    let root = repo_root();
    let mut entries = Vec::new();
    for path in bench_artifacts(&root)? {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("BENCH_?.json").to_string();
        let text = fs::read_to_string(&path)?;
        let headline = validate(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        entries.push((name, headline));
    }
    let path = root.join("report.md");
    fs::write(&path, render_report_md(&entries))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(list: &[u64]) -> Vec<Duration> {
        list.iter().map(|&n| Duration::from_micros(n)).collect()
    }

    #[test]
    fn schema_has_all_headline_fields() {
        let result = BenchResult {
            bench: "unit_test".to_string(),
            config: vec![
                ("workers".to_string(), "4".to_string()),
                ("apps".to_string(), "10".to_string()),
            ],
            runs: us(&[300, 100, 200]),
            throughput: 123.456,
        };
        let json = result.to_json();
        assert!(json.contains("\"bench\":\"unit_test\""));
        assert!(json.contains("\"config\":{\"workers\":4,\"apps\":10}"));
        assert!(json.contains("\"runs\":[100,200,300]"), "runs sorted: {json}");
        assert!(json.contains("\"p50_us\":200"));
        assert!(json.contains("\"p90_us\":300"));
        assert!(json.contains("\"p99_us\":300"));
        assert!(json.contains("\"throughput\":123.46"));
        // The emitted document parses with the workspace JSON parser.
        assert!(ppchecker_obs::json::parse(json.trim()).is_ok());
    }

    #[test]
    fn emitted_documents_validate() {
        let result = BenchResult {
            bench: "round_trip".to_string(),
            config: vec![("apps".to_string(), "3".to_string())],
            runs: us(&[500, 100, 900]),
            throughput: 42.0,
        };
        let headline = validate(&result.to_json()).unwrap();
        assert_eq!(headline.bench, "round_trip");
        assert_eq!(headline.runs, 3);
        assert_eq!(headline.p50_us, 500);
        assert_eq!(headline.p90_us, 900);
        assert_eq!(headline.p99_us, 900);
        assert_eq!(headline.config, vec![("apps".to_string(), "3".to_string())]);
        assert!((headline.throughput - 42.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let good = BenchResult {
            bench: "x".to_string(),
            config: vec![],
            runs: us(&[100, 200]),
            throughput: 1.0,
        }
        .to_json();
        assert!(validate("not json").is_err());
        assert!(validate(&good.replace("\"bench\":\"x\"", "\"bench\":7")).is_err());
        assert!(validate(&good.replace("\"p90_us\":200", "\"p90_us\":999"))
            .unwrap_err()
            .contains("p90_us"));
        assert!(validate(&good.replace("[100,200]", "[200,100]")).unwrap_err().contains("sorted"));
        assert!(validate(&good.replace("\"throughput\":1.00", "\"throughput\":-1.00")).is_err());
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&sorted, 0.50), 50);
        assert_eq!(quantile_us(&sorted, 0.90), 90);
        assert_eq!(quantile_us(&sorted, 0.99), 99);
        assert_eq!(quantile_us(&[], 0.5), 0);
        assert_eq!(quantile_us(&[7], 0.99), 7);
    }

    fn baseline(quantiles: [u64; 3], throughput: f64, band: f64) -> Baseline {
        let [p50, p90, p99] = quantiles;
        Baseline::parse(&format!(
            "{{\"schema\":\"ppchecker-bench-baseline-v2\",\"benches\":{{\
             \"x\":{{\"p50_us\":{p50},\"p90_us\":{p90},\"p99_us\":{p99},\
             \"throughput\":{throughput},\"band\":{band}}}}}}}"
        ))
        .unwrap()
    }

    fn headline(quantiles: [u64; 3], throughput: f64) -> BenchHeadline {
        BenchHeadline {
            bench: "x".to_string(),
            config: vec![],
            runs: 5,
            p50_us: quantiles[0],
            p90_us: quantiles[1],
            p99_us: quantiles[2],
            throughput,
        }
    }

    #[test]
    fn baseline_parses_and_rejects_drift() {
        let base = baseline([100, 150, 200], 50.0, 0.25);
        assert_eq!(
            base.benches["x"],
            BaselineEntry { p50_us: 100, p90_us: 150, p99_us: 200, throughput: 50.0, band: 0.25 }
        );
        assert!(Baseline::parse("{}").unwrap_err().contains("schema"));
        assert!(Baseline::parse("{\"schema\":\"ppchecker-bench-baseline-v2\"}")
            .unwrap_err()
            .contains("benches"));
        // v1 documents (no per-quantile bands) are rejected with a
        // migration hint, not silently accepted.
        let v1 = "{\"schema\":\"ppchecker-bench-baseline-v1\",\"benches\":\
                  {\"x\":{\"p50_us\":1,\"throughput\":1,\"band\":0.4}}}";
        assert!(Baseline::parse(v1).unwrap_err().contains("v1 is retired"));
        let bad_band = "{\"schema\":\"ppchecker-bench-baseline-v2\",\"benches\":\
                        {\"x\":{\"p50_us\":1,\"p90_us\":1,\"p99_us\":1,\
                        \"throughput\":1,\"band\":1.5}}}";
        assert!(Baseline::parse(bad_band).unwrap_err().contains("band"));
        let missing_p90 = "{\"schema\":\"ppchecker-bench-baseline-v2\",\"benches\":\
                           {\"x\":{\"p50_us\":1,\"p99_us\":1,\"throughput\":1,\"band\":0.4}}}";
        assert!(Baseline::parse(missing_p90).unwrap_err().contains("p90_us"));
        let decreasing = "{\"schema\":\"ppchecker-bench-baseline-v2\",\"benches\":\
                          {\"x\":{\"p50_us\":9,\"p90_us\":5,\"p99_us\":9,\
                          \"throughput\":1,\"band\":0.4}}}";
        assert!(Baseline::parse(decreasing).unwrap_err().contains("non-decreasing"));
    }

    #[test]
    fn gate_fails_outside_the_band_and_passes_inside() {
        let base = baseline([100, 150, 200], 50.0, 0.20);
        // In band: small drift both directions.
        assert!(base.check(&headline([110, 160, 210], 45.0)).is_ok());
        assert!(base.check(&headline([90, 140, 190], 60.0)).is_ok());
        // Exactly at the floor/ceilings still passes.
        assert!(base.check(&headline([120, 180, 240], 40.0)).is_ok());
        // Throughput below the floor fails.
        let err = base.check(&headline([100, 150, 200], 39.9)).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");
        // Each quantile has its own ceiling: a p99 tail blow-up fails
        // even when p50 and throughput are fine.
        let err = base.check(&headline([121, 150, 200], 50.0)).unwrap_err();
        assert!(err.contains("p50 regression"), "{err}");
        let err = base.check(&headline([100, 181, 200], 50.0)).unwrap_err();
        assert!(err.contains("p90 regression"), "{err}");
        let err = base.check(&headline([100, 150, 241], 50.0)).unwrap_err();
        assert!(err.contains("p99 regression"), "{err}");
        // A bench missing from the baseline is an error, not a skip.
        let mut other = headline([100, 150, 200], 50.0);
        other.bench = "unknown".to_string();
        assert!(base.check(&other).unwrap_err().contains("no entry"), "untracked must fail");
    }

    #[test]
    fn report_renders_deterministically() {
        let entries = vec![
            ("BENCH_a.json".to_string(), headline([10, 10, 10], 5.0)),
            (
                "BENCH_b.json".to_string(),
                BenchHeadline {
                    config: vec![
                        ("apps".to_string(), "150".to_string()),
                        ("jobs".to_string(), "1".to_string()),
                        ("seed".to_string(), "42".to_string()),
                    ],
                    ..headline([20, 20, 20], 7.5)
                },
            ),
        ];
        let md = render_report_md(&entries);
        assert_eq!(md, render_report_md(&entries), "same input, same output");
        assert!(md.contains("| BENCH_a.json | x |  | 5 | — | 10 | 10 | 10 | 5.00 |"), "{md}");
        assert!(
            md.contains("| BENCH_b.json | x | apps=150, jobs=1 | 5 | 42 | 20 | 20 | 20 | 7.50 |"),
            "{md}"
        );
        assert!(md.starts_with("# Bench report"));
    }

    #[test]
    fn report_equivalence_tolerates_row_order_only() {
        let a = headline([10, 10, 10], 5.0);
        let b = headline([20, 20, 20], 7.5);
        let fwd = render_report_md(&[
            ("BENCH_a.json".to_string(), a.clone()),
            ("BENCH_b.json".to_string(), b.clone()),
        ]);
        let rev = render_report_md(&[
            ("BENCH_b.json".to_string(), b),
            ("BENCH_a.json".to_string(), a.clone()),
        ]);
        assert_ne!(fwd, rev, "rows really are in a different order");
        assert!(reports_equivalent(&fwd, &rev), "same data, different order");
        // Different data still fails.
        let other = render_report_md(&[("BENCH_a.json".to_string(), headline([11, 11, 11], 5.0))]);
        assert!(!reports_equivalent(&fwd, &other));
        // Edited prose still fails.
        assert!(!reports_equivalent(&fwd, &fwd.replace("Do not edit", "Feel free to edit")));
    }

    #[test]
    fn baseline_file_is_excluded_from_artifact_scans() {
        let dir = std::env::temp_dir().join(format!("ppchecker-bench-scan-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("BENCH_a.json"), "{}").unwrap();
        fs::write(dir.join(BASELINE_FILE), "{}").unwrap();
        fs::write(dir.join("other.json"), "{}").unwrap();
        let files = bench_artifacts(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
        let names: Vec<&str> =
            files.iter().filter_map(|p| p.file_name().and_then(|n| n.to_str())).collect();
        assert_eq!(names, ["BENCH_a.json"]);
    }
}
