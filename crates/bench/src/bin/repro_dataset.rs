//! Descriptive statistics of the generated corpus (the §V-A counterpart):
//! how the synthetic dataset is shaped, so readers can judge the
//! substitution documented in DESIGN.md.

use ppchecker_corpus::paper_dataset;
use ppchecker_policy::PolicyAnalyzer;
use ppchecker_static::LibKind;

fn main() {
    println!("§V-A — dataset statistics (synthetic corpus, seed 42)\n");
    let dataset = paper_dataset(42);
    let analyzer = PolicyAnalyzer::new();

    let mut total_sentences = 0usize;
    let mut useful_sentences = 0usize;
    let mut negative_sentences = 0usize;
    let mut disclaimers = 0usize;
    let mut packed = 0usize;
    let mut classes = 0usize;
    let mut instructions = 0usize;

    for app in &dataset.apps {
        let analysis = analyzer.analyze_html(&app.input.policy_html);
        total_sentences += analysis.total_sentences;
        useful_sentences += analysis.sentences.len();
        negative_sentences += analysis.negative_sentences().count();
        if analysis.has_disclaimer {
            disclaimers += 1;
        }
        if app.input.apk.is_packed() {
            packed += 1;
        }
        let dex = app.input.apk.dex().expect("corpus dex is well-formed");
        classes += dex.classes.len();
        instructions += dex.instruction_count();
    }

    let n = dataset.apps.len();
    println!("apps:                        {n}");
    println!(
        "policy sentences:            {total_sentences} ({:.1}/app)",
        total_sentences as f64 / n as f64
    );
    println!("  useful (pattern-matched):  {useful_sentences}");
    println!("  negative:                  {negative_sentences}");
    println!("policies with disclaimers:   {disclaimers}");
    println!("packed APKs (DexHunter path):{packed:>5}");
    println!("dex classes:                 {classes} ({:.1}/app)", classes as f64 / n as f64);
    println!("dex instructions:            {instructions}");

    let ad = dataset.lib_policies.iter().filter(|l| l.lib.kind == LibKind::Ad).count();
    let social = dataset.lib_policies.iter().filter(|l| l.lib.kind == LibKind::Social).count();
    let dev = dataset.lib_policies.iter().filter(|l| l.lib.kind == LibKind::DevTool).count();
    println!("\nlib policies: {ad} ad + {social} social + {dev} dev tools = {}", ad + social + dev);

    let with_libs = dataset.apps.iter().filter(|a| !a.spec.libs.is_empty()).count();
    println!(
        "apps embedding ≥1 lib:       {with_libs} ({:.0}%) — paper: 879 (73%)",
        with_libs as f64 / n as f64 * 100.0
    );
}
