//! Regenerates Table III: permissions leading to incomplete privacy
//! policies (detected through descriptions) and the number of questionable
//! apps per permission.

use ppchecker_apk::Permission;
use ppchecker_corpus::{evaluate, paper_dataset};

fn main() {
    println!("Table III — permissions leading to incomplete privacy policies");
    println!("(detected by contrasting descriptions with policies, Algorithm 1)\n");
    let dataset = paper_dataset(42);
    let ev = evaluate(&dataset);

    const PAPER: &[(&str, usize)] = &[
        ("ACCESS_COARSE_LOCATION", 14),
        ("ACCESS_FINE_LOCATION", 19),
        ("CAMERA", 6),
        ("GET_ACCOUNTS", 11),
        ("READ_CALENDAR", 2),
        ("READ_CONTACTS", 12),
        ("WRITE_CONTACTS", 1),
    ];

    println!("{:<26} {:>6} {:>6}", "Permission", "paper", "ours");
    for (name, paper_count) in PAPER {
        let ours = ev.table3.get(&Permission::from_name(name)).copied().unwrap_or(0);
        println!("{name:<26} {paper_count:>6} {ours:>6}");
    }
    println!("\nquestionable apps via description: paper 64, ours {}", ev.incomplete_desc_flagged);
}
