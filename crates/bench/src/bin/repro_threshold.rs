//! Sensitivity of the ESA similarity threshold (the paper adopts 0.67
//! following AutoCog). Sweeps the threshold and reports how inconsistency
//! detection quality moves on a corpus slice containing both genuine
//! conflicts and the generic-"information" false-positive bait.

use ppchecker_core::PPChecker;
use ppchecker_corpus::small_dataset;

fn main() {
    println!("ESA threshold sensitivity (inconsistency detection, apps 250..332)\n");
    // Slice: 60 genuine inconsistents (250..310), 9 FP baits (320..329),
    // 2 FN plants (330, 331), and clean apps in between.
    let dataset = small_dataset(42, 332);
    let slice: Vec<_> = dataset.apps.iter().skip(250).collect();

    println!(
        "{:>9} {:>8} {:>6} {:>6} {:>10} {:>8}",
        "threshold", "flagged", "TP", "FP", "precision", "recall"
    );
    for &threshold in &[0.30, 0.50, 0.60, 0.67, 0.75, 0.85, 0.95] {
        let mut checker = PPChecker::new().with_similarity_threshold(threshold);
        for lp in &dataset.lib_policies {
            checker.register_lib_policy(lp.lib.id, &lp.html);
        }
        let mut flagged = 0usize;
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut truth_total = 0usize;
        for app in &slice {
            let is_true = app.spec.truth.inconsistent();
            if is_true {
                truth_total += 1;
            }
            let report = checker.check_app(&app.input).expect("corpus analyzes cleanly");
            if report.is_inconsistent() {
                flagged += 1;
                if is_true {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let precision = if flagged > 0 { tp as f64 / flagged as f64 } else { 0.0 };
        let recall = if truth_total > 0 { tp as f64 / truth_total as f64 } else { 0.0 };
        let marker = if (threshold - 0.67).abs() < 1e-9 { "  <- paper" } else { "" };
        println!(
            "{threshold:>9.2} {flagged:>8} {tp:>6} {fp:>6} {:>9.1}% {:>7.1}%{marker}",
            precision * 100.0,
            recall * 100.0
        );
    }
    println!("\nlow thresholds over-match (generic 'information' hits everything);");
    println!("high thresholds miss paraphrases ('location information' vs 'location').");
}
