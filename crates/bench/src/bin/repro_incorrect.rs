//! Regenerates §V-D: discovering incorrect privacy policies through
//! descriptions (2 apps) and through code (4 confirmed apps + 2
//! context-caused false positives).

use ppchecker_core::Channel;
use ppchecker_corpus::{evaluate, paper_dataset};

fn main() {
    println!("§V-D — discovering incorrect privacy policies\n");
    let dataset = paper_dataset(42);
    let ev = evaluate(&dataset);

    println!("{:<46} {:>6} {:>6}", "", "paper", "ours");
    println!("{:<46} {:>6} {:>6}", "apps flagged via description", 2, ev.incorrect_desc_flagged);
    println!("{:<46} {:>6} {:>6}", "apps flagged via code", 6, ev.incorrect_code_flagged);
    println!("{:<46} {:>6} {:>6}", "confirmed incorrect (manual check)", 4, ev.incorrect_tp);
    println!("{:<46} {:>6} {:>6}", "false positives (context)", 2, ev.incorrect_fp);

    // Show the concrete findings, paper-style.
    println!("\n== flagged apps ==");
    let checker = dataset.make_checker();
    for app in &dataset.apps {
        let report = checker.check_app(&app.input).expect("corpus analyzes cleanly");
        if report.is_incorrect() {
            let confirmed = if app.spec.truth.incorrect { "TP" } else { "FP" };
            for f in &report.incorrect {
                let ch = match f.channel {
                    Channel::Description => "desc",
                    Channel::Code => "code",
                };
                println!(
                    "[{confirmed}] {} via {ch}: denies {} of {} — «{}»",
                    report.package, f.category, f.info, f.sentence
                );
            }
        }
    }
}
