//! Validates every checked-in `BENCH_*.json` against the stable bench
//! schema and — with `--baseline` — gates them against the checked-in
//! trajectory baseline (see [`ppchecker_bench::emit`]).
//!
//! ```text
//! bench_schema_check [<dir>] [--baseline <file-or-dir>] [--check-report]
//! ```
//!
//! Scans `<dir>` (default: the repo root) for `BENCH_*.json` (excluding
//! `BENCH_BASELINE.json`, which has its own schema) and fails on any
//! schema violation. The comparison modes:
//!
//! * `--baseline BENCH_BASELINE.json` (a **file**) — the strict gate:
//!   every artifact must have a baseline entry and stay inside its
//!   tolerance band, or the process exits non-zero. This is what CI
//!   runs; a perf regression fails the build.
//! * `--baseline <dir>` (a **directory** of older artifacts) — the
//!   legacy warn-only diff: prints throughput ratios, never fails.
//!   Useful for eyeballing a local run against a stash of old numbers.
//! * `--check-report` — re-renders `report.md` from the artifacts and
//!   fails if the checked-in copy carries different data (i.e. someone
//!   edited an artifact without regenerating the report). A copy whose
//!   table rows hold identical data in a different order passes — row
//!   order is presentation, not evidence.

use ppchecker_bench::emit::{
    bench_artifacts, render_report_md, repo_root, reports_equivalent, validate, Baseline,
    BenchHeadline,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut check_report = false;
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--baseline" {
            baseline = args.get(i + 1).map(PathBuf::from);
            i += 2;
        } else if args[i] == "--check-report" {
            check_report = true;
            i += 1;
        } else {
            dir = Some(PathBuf::from(&args[i]));
            i += 1;
        }
    }
    let dir = dir.unwrap_or_else(repo_root);

    let files = match bench_artifacts(&dir) {
        Ok(files) if !files.is_empty() => files,
        Ok(_) => {
            eprintln!("bench_schema_check: no BENCH_*.json under {}", dir.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench_schema_check: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    // The strict gate parses the baseline up front: a malformed or
    // missing baseline file is itself a failure, not a silent skip.
    let gate: Option<Baseline> = match &baseline {
        Some(path) if path.is_file() => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Baseline::parse(&text))
        {
            Ok(base) => Some(base),
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        _ => None,
    };

    let mut failed = false;
    let mut headlines: Vec<(String, BenchHeadline)> = Vec::new();
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {name}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&text) {
            Ok(headline) => {
                println!(
                    "ok   {name}: bench={} runs={} p50={}us throughput={:.2}/s",
                    headline.bench, headline.runs, headline.p50_us, headline.throughput
                );
                match (&gate, &baseline) {
                    (Some(base), _) => match base.check(&headline) {
                        Ok(summary) => println!("     {name}: {summary}"),
                        Err(e) => {
                            eprintln!("FAIL {name}: {e}");
                            failed = true;
                        }
                    },
                    (None, Some(base_dir)) => {
                        diff_against_baseline(name, headline.throughput, base_dir);
                    }
                    (None, None) => {}
                }
                headlines.push((name.to_string(), headline));
            }
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failed = true;
            }
        }
    }

    if check_report && !failed {
        let want = render_report_md(&headlines);
        let report_path = dir.join("report.md");
        match std::fs::read_to_string(&report_path) {
            Ok(have) if reports_equivalent(&have, &want) => {
                println!("ok   report.md matches the artifacts")
            }
            Ok(_) => {
                eprintln!(
                    "FAIL report.md is stale — rerun the benches (or any BenchResult::write) \
                     to regenerate it"
                );
                failed = true;
            }
            Err(e) => {
                eprintln!("FAIL report.md: unreadable: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench_schema_check: {} artifact(s) conform", files.len());
        ExitCode::SUCCESS
    }
}

/// Warn-only throughput comparison against the same-named artifact in
/// `base_dir`.
fn diff_against_baseline(name: &str, throughput: f64, base_dir: &Path) {
    let base_path = base_dir.join(name);
    let Ok(text) = std::fs::read_to_string(&base_path) else {
        println!("     {name}: no baseline at {}", base_path.display());
        return;
    };
    match validate(&text) {
        Ok(base) if base.throughput > 0.0 => {
            let ratio = throughput / base.throughput;
            let verdict = if ratio < 0.8 { "WARN slower" } else { "within range" };
            println!(
                "     {name}: {:.2}/s -> {throughput:.2}/s ({ratio:.2}x, {verdict})",
                base.throughput
            );
        }
        Ok(_) => println!("     {name}: baseline throughput is zero, skipping diff"),
        Err(e) => println!("     {name}: baseline invalid ({e}), skipping diff"),
    }
}
