//! Validates every checked-in `BENCH_*.json` against the stable bench
//! schema (see [`ppchecker_bench::emit`]).
//!
//! ```text
//! bench_schema_check [<dir>] [--baseline <dir>]
//! ```
//!
//! Scans `<dir>` (default: the repo root) for `BENCH_*.json`, fails on
//! any schema violation, and — when `--baseline` points at a directory
//! holding an older set of artifacts — prints throughput deltas.
//! Throughput drift is **warn-only**: hardware varies across CI runners,
//! so a slowdown never fails the check, it just shows up in the log.

use ppchecker_bench::emit::{repo_root, validate};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--baseline" {
            baseline = args.get(i + 1).map(PathBuf::from);
            i += 2;
        } else {
            dir = Some(PathBuf::from(&args[i]));
            i += 1;
        }
    }
    let dir = dir.unwrap_or_else(repo_root);

    let files = bench_files(&dir);
    if files.is_empty() {
        eprintln!("bench_schema_check: no BENCH_*.json under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {name}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&text) {
            Ok(headline) => {
                println!(
                    "ok   {name}: bench={} runs={} throughput={:.2}/s",
                    headline.bench, headline.runs, headline.throughput
                );
                if let Some(base_dir) = &baseline {
                    diff_against_baseline(name, headline.throughput, base_dir);
                }
            }
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench_schema_check: {} artifact(s) conform", files.len());
        ExitCode::SUCCESS
    }
}

/// Warn-only throughput comparison against the same-named artifact in
/// `base_dir`.
fn diff_against_baseline(name: &str, throughput: f64, base_dir: &Path) {
    let base_path = base_dir.join(name);
    let Ok(text) = std::fs::read_to_string(&base_path) else {
        println!("     {name}: no baseline at {}", base_path.display());
        return;
    };
    match validate(&text) {
        Ok(base) if base.throughput > 0.0 => {
            let ratio = throughput / base.throughput;
            let verdict = if ratio < 0.8 { "WARN slower" } else { "within range" };
            println!(
                "     {name}: {:.2}/s -> {throughput:.2}/s ({ratio:.2}x, {verdict})",
                base.throughput
            );
        }
        Ok(_) => println!("     {name}: baseline throughput is zero, skipping diff"),
        Err(e) => println!("     {name}: baseline invalid ({e}), skipping diff"),
    }
}
