//! Regenerates Table IV: PPChecker's precision/recall/F1 when revealing
//! inconsistencies between app policies and third-party-lib policies
//! (Algorithm 5), split into the collect/use/retain row and the disclose
//! row, with recall measured on the 200-app manual-inspection sample.

use ppchecker_corpus::{evaluate_parallel, paper_dataset, RowMetrics};
use ppchecker_engine::available_jobs;

fn row(name: &str, m: &RowMetrics, paper: (usize, usize, f64, f64, f64)) {
    println!(
        "{name:<28} {:>3}  {:>3}  {:>9.1}% {:>8.1}% {:>8.1}%",
        m.tp,
        m.fp,
        m.precision() * 100.0,
        m.recall() * 100.0,
        m.f1() * 100.0
    );
    println!(
        "{:<28} {:>3}  {:>3}  {:>9.1}% {:>8.1}% {:>8.1}%",
        "  (paper)", paper.0, paper.1, paper.2, paper.3, paper.4
    );
}

fn main() {
    println!("Table IV — detecting inconsistent privacy policies\n");
    let dataset = paper_dataset(42);
    let (ev, _metrics) = evaluate_parallel(&dataset, available_jobs());

    println!(
        "{:<28} {:>3}  {:>3}  {:>10} {:>9} {:>9}",
        "Sentence category", "TP", "FP", "Precision", "Recall", "F1"
    );
    row("Sents collect/use/retain", &ev.cur, (41, 5, 89.1, 91.7, 90.4));
    row("Sents disclose", &ev.disclose, (39, 4, 90.7, 92.3, 91.4));

    println!(
        "\nrecall sample: {}/{} (c/u/r), {}/{} (disclose) over the 200-app manual sample",
        ev.cur.sample_detected,
        ev.cur.sample_truth,
        ev.disclose.sample_detected,
        ev.disclose.sample_truth
    );
    println!(
        "total questionable apps (confirmed inconsistent): paper 75, ours {}",
        ev.inconsistent_apps
    );
}
