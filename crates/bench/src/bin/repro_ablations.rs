//! Ablation study: quantifies the design choices the paper credits for
//! its precision — entry-point reachability analysis, content-provider
//! URI analysis (both §III-C, contrasted with Slavin et al. in §VII), and
//! bootstrapped pattern mining (§III-B Step 3).

use ppchecker_corpus::{paper_dataset, small_dataset};
use ppchecker_policy::{match_sentence, Pattern, PolicyAnalyzer};
use ppchecker_static::{analyze_with, AnalysisOptions};

fn main() {
    println!("Ablation study over the corpus\n");

    // --- reachability & URI analysis over 300 apps ---
    let dataset = small_dataset(42, 300);
    let mut full = (0usize, 0usize); // (collected categories, flagged unreachable)
    let mut no_reach = 0usize;
    let mut no_uri = 0usize;
    for app in &dataset.apps {
        let with = analyze_with(&app.input.apk, AnalysisOptions::default()).unwrap();
        full.0 += with.collect_code().len();
        full.1 += with.unreachable_sensitive_calls;
        let without_reach = analyze_with(
            &app.input.apk,
            AnalysisOptions { reachability: false, uri_analysis: true },
        )
        .unwrap();
        no_reach += without_reach.collect_code().len();
        let without_uri = analyze_with(
            &app.input.apk,
            AnalysisOptions { reachability: true, uri_analysis: false },
        )
        .unwrap();
        no_uri += without_uri.collect_code().len();
    }
    println!("== static analysis (300 apps) ==");
    println!("collected info categories, full analysis:        {}", full.0);
    println!(
        "collected info categories, no reachability:      {no_reach} (dead code becomes findings)"
    );
    println!("collected info categories, no URI analysis:      {no_uri} (provider reads vanish)");
    println!("sensitive call sites pruned as unreachable:      {}", full.1);

    // --- pattern bootstrapping over the Fig. 12 labeled positive set ---
    let seeds = Pattern::seeds();
    let fig12 = ppchecker_corpus::fig12::fig12_corpus();
    let mined = ppchecker_policy::Bootstrapper::default().mine(&fig12.mining);
    let mut seed_hits = 0usize;
    let mut full_hits = 0usize;
    let total = fig12.positive.len();
    for sent in &fig12.positive {
        let p = ppchecker_nlp::parse(sent);
        if match_sentence(&p, &seeds).is_some() {
            seed_hits += 1;
        }
        if match_sentence(&p, &mined).is_some() {
            full_hits += 1;
        }
    }
    println!("\n== sentence selection ({total} labeled positive sentences) ==");
    println!("matched by the 5 seed patterns alone:            {seed_hits}");
    println!("matched by seeds + bootstrapped patterns:        {full_hits}");
    println!(
        "bootstrapping contribution:                      +{} sentences ({:+.1}%)",
        full_hits - seed_hits,
        (full_hits as f64 - seed_hits as f64) / total.max(1) as f64 * 100.0
    );

    // --- shipped analyzer vs. seeds on the corpus policies ---
    let analyzer = PolicyAnalyzer::new();
    let fullpats = analyzer.patterns().to_vec();
    let dataset = paper_dataset(42);
    let mut corpus_seed = 0usize;
    let mut corpus_full = 0usize;
    let mut corpus_total = 0usize;
    for app in dataset.apps.iter().take(300) {
        let text = ppchecker_policy::html::extract_text(&app.input.policy_html);
        for sent in ppchecker_nlp::split_sentences(&text) {
            let p = ppchecker_nlp::parse(&sent);
            corpus_total += 1;
            if match_sentence(&p, &seeds).is_some() {
                corpus_seed += 1;
            }
            if match_sentence(&p, &fullpats).is_some() {
                corpus_full += 1;
            }
        }
    }
    println!("\n== corpus policies (300 policies, {corpus_total} sentences) ==");
    println!("matched by seeds: {corpus_seed}; by shipped pattern set: {corpus_full}");
    println!("(the generated policies phrase behaviours with seed-pattern templates,");
    println!(" so the shipped extras add nothing here — the labeled set above shows");
    println!(" where bootstrapping pays off)");
}
