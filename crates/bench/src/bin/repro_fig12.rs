//! Regenerates Fig. 12: false-positive and false-negative rates of
//! sentence selection as the number of selected patterns `n` grows.
//!
//! Paper result: n = 230 minimizes FN+FP with detection 88.0% (FN 12%)
//! and FP 2.8%.

use ppchecker_corpus::fig12::{best_n, fig12_corpus, run_sweep};

fn main() {
    println!("Fig. 12 — pattern selection: FP/FN rate vs. number of patterns n");
    println!("(250 positive + 250 negative labeled sentences)\n");
    let corpus = fig12_corpus();
    let sweep = run_sweep(&corpus, 10);

    println!("{:>5} {:>8} {:>8} {:>8}", "n", "FN rate", "FP rate", "FN+FP");
    for p in &sweep {
        let marker = |v: f64| "#".repeat((v * 100.0).round() as usize);
        println!(
            "{:>5} {:>8.3} {:>8.3} {:>8.3}  |{}",
            p.n,
            p.fn_rate,
            p.fp_rate,
            p.fn_rate + p.fp_rate,
            marker(p.fn_rate),
        );
    }

    let best = best_n(&sweep);
    println!("\nselected n = {} (minimal FN+FP)", best.n);
    println!(
        "detection rate = {:.1}% (FN {:.1}%), FP rate = {:.1}%",
        (1.0 - best.fn_rate) * 100.0,
        best.fn_rate * 100.0,
        best.fp_rate * 100.0
    );
    println!("paper:        n = 230, detection 88.0% (FN 12%), FP 2.8%");
}
