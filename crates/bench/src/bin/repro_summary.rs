//! Regenerates the §V-F summary: the headline result that 282 of 1,197
//! apps (23.6%) have at least one kind of privacy-policy problem, plus
//! the §V-A dataset statistics.

use ppchecker_corpus::{evaluate_parallel, paper_dataset};
use ppchecker_engine::available_jobs;
use std::time::Instant;

fn main() {
    println!("§V-F — summary of the experimental result\n");
    let t0 = Instant::now();
    let dataset = paper_dataset(42);
    let built = t0.elapsed();
    let (ev, metrics) = evaluate_parallel(&dataset, available_jobs());

    println!("{:<52} {:>7} {:>7}", "", "paper", "ours");
    let line = |label: &str, paper: String, ours: String| {
        println!("{label:<52} {paper:>7} {ours:>7}");
    };
    line("apps in the dataset (§V-A)", "1197".into(), ev.total_apps.to_string());
    line("apps embedding ≥1 third-party lib", "879".into(), ev.apps_with_libs.to_string());
    line(
        "third-party lib policies (52 ad + 9 social + 20 dev)",
        "81".into(),
        dataset.lib_policies.len().to_string(),
    );
    println!();
    line("apps with ≥1 problem", "282".into(), ev.problem_apps.to_string());
    line("problem rate", "23.6%".into(), format!("{:.1}%", ev.problem_rate() * 100.0));
    println!();
    line("incomplete policies (total)", "222".into(), ev.incomplete_apps.to_string());
    line("  via description", "64".into(), ev.incomplete_desc_flagged.to_string());
    line("  via code (confirmed)", "180".into(), ev.incomplete_code_tp.to_string());
    line("incorrect policies (confirmed)", "4".into(), ev.incorrect_tp.to_string());
    line("  via description", "2".into(), ev.incorrect_desc_flagged.to_string());
    line("inconsistent policies (confirmed)", "75".into(), ev.inconsistent_apps.to_string());

    println!("\ncorpus generated in {built:?}");
    println!("{metrics}");
}
