//! Regenerates Fig. 13: the distribution of missed information among
//! incomplete privacy policies detected through code (Algorithm 2).
//!
//! Paper: 195 flagged, 180 confirmed (15 FP); 234 missed-info records of
//! which 32 are retained; location is the most commonly missed.

use ppchecker_corpus::{evaluate, paper_dataset};

fn main() {
    println!("Fig. 13 — distribution of missed information (code channel)\n");
    let dataset = paper_dataset(42);
    let ev = evaluate(&dataset);

    let mut rows: Vec<(String, usize)> =
        ev.fig13.iter().map(|(info, count)| (info.to_string(), *count)).collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));

    for (info, count) in &rows {
        println!("{info:<18} {count:>4}  |{}", "#".repeat(*count / 2));
    }

    println!("\n{:<42} {:>6} {:>6}", "", "paper", "ours");
    println!("{:<42} {:>6} {:>6}", "apps flagged via code", 195, ev.incomplete_code_flagged);
    println!(
        "{:<42} {:>6} {:>6}",
        "confirmed incomplete (manual check)", 180, ev.incomplete_code_tp
    );
    println!("{:<42} {:>6} {:>6}", "false positives", 15, ev.incomplete_code_fp);
    println!("{:<42} {:>6} {:>6}", "missed-information records", 234, ev.missed_records);
    println!("{:<42} {:>6} {:>6}", "...of which retained", 32, ev.retained_records);
    println!(
        "\nmost commonly missed: {} (paper: location)",
        rows.first().map(|(i, _)| i.as_str()).unwrap_or("-")
    );
}
