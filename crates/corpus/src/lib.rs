//! # ppchecker-corpus
//!
//! The synthetic evaluation corpus for the PPChecker reproduction.
//!
//! The paper evaluates on 1,197 Google Play apps plus the privacy policies
//! of 81 third-party libraries — data we cannot redistribute. This crate
//! generates an equivalent corpus: English privacy-policy HTML, Google
//! Play-style descriptions, and simulated APKs whose dex actually performs
//! the behaviours the policies do (or do not) describe, with problems
//! planted at indices calibrated so that running the *real* pipeline
//! reproduces every statistic of §V (Table III, Table IV, Fig. 12,
//! Fig. 13, and the 282/1,197 headline).
//!
//! - [`plan`] — the calibrated plan and per-app ground truth
//! - [`generate`] — spec → policy / description / APK
//! - [`libs`] — the 81 lib policies (52 ad, 9 social, 20 dev tools)
//! - [`dataset`] — assembly ([`paper_dataset`])
//! - [`history`] — versioned app histories ([`versioned_history`]) for
//!   incremental re-analysis workloads
//! - [`eval`] — the §V statistics harness ([`evaluate`])
//! - [`detectors`] — successor-literature workloads with planted ground
//!   truth ([`data_safety_corpus`], [`purpose_corpus`],
//!   [`boilerplate_corpus`]) and their P/R harness ([`score_detector`])
//! - [`fig12`] — the pattern-selection experiment (Fig. 12)
//!
//! # Examples
//!
//! ```no_run
//! use ppchecker_corpus::{paper_dataset, evaluate};
//!
//! let dataset = paper_dataset(42);
//! let ev = evaluate(&dataset);
//! assert_eq!(ev.total_apps, 1197);
//! assert_eq!(ev.problem_apps, 282);
//! ```

pub mod adversarial;
pub mod dataset;
pub mod detectors;
pub mod eval;
pub mod export;
pub mod fig12;
pub mod generate;
pub mod history;
pub mod libs;
pub mod manifest;
pub mod phrases;
pub mod plan;
pub mod scale;

pub use dataset::{paper_dataset, small_dataset, stream_apps, Dataset, GeneratedApp};
pub use detectors::{
    boilerplate_corpus, data_safety_corpus, purpose_corpus, score_detector, DetectorScore,
    WorkloadApp,
};
pub use eval::{evaluate, evaluate_parallel, Evaluation, RowMetrics};
pub use export::{export_app, export_dataset};
pub use history::{
    versioned_history, CorpusVersion, MutationKind, VersionChange, VersionedHistory,
};
pub use manifest::{DatasetManifest, ManifestError, ScenarioPack};
pub use plan::{build_plan, AppSpec, GroundTruth, PolicyShape, APP_COUNT};
pub use scale::{
    generate_scaled, scaled_spec, scenario_of, stream_scaled, stream_scaled_sharded, Scenario,
};
