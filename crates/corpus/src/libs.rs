//! The third-party-library privacy-policy corpus: one English policy per
//! known library (52 ad + 9 social + 20 development tools, §V-A), with a
//! machine-readable record of what each policy declares so inconsistency
//! planting and ground-truth evaluation agree.

use ppchecker_apk::PrivateInfo;
use ppchecker_policy::VerbCategory;
use ppchecker_static::{KnownLib, LibKind, KNOWN_LIBS};

/// One declared behaviour of a lib policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Declaration {
    /// The behaviour category of the positive sentence.
    pub category: VerbCategory,
    /// The declared information.
    pub info: PrivateInfo,
}

/// A generated lib policy.
#[derive(Debug, Clone)]
pub struct LibPolicy {
    /// The library.
    pub lib: &'static KnownLib,
    /// Policy document (HTML).
    pub html: String,
    /// The behaviours the policy declares (positive sentences).
    pub declares: Vec<Declaration>,
}

/// The declarations for a library family.
pub fn declarations_for(kind: LibKind) -> Vec<Declaration> {
    use PrivateInfo::*;
    use VerbCategory::*;
    match kind {
        LibKind::Ad => vec![
            Declaration { category: Collect, info: DeviceId },
            Declaration { category: Collect, info: Location },
            Declaration { category: Collect, info: IpAddress },
            Declaration { category: Use, info: DeviceId },
            Declaration { category: Retain, info: DeviceId },
            Declaration { category: Disclose, info: DeviceId },
            Declaration { category: Disclose, info: Location },
        ],
        LibKind::Social => vec![
            Declaration { category: Collect, info: Contact },
            Declaration { category: Collect, info: Account },
            Declaration { category: Use, info: Contact },
            Declaration { category: Retain, info: Account },
            Declaration { category: Disclose, info: Account },
        ],
        LibKind::DevTool => vec![
            Declaration { category: Collect, info: DeviceId },
            Declaration { category: Collect, info: Location },
            Declaration { category: Use, info: DeviceId },
            Declaration { category: Retain, info: Location },
            Declaration { category: Disclose, info: DeviceId },
        ],
    }
}

fn declaration_sentence(d: &Declaration) -> String {
    let phrase = crate::phrases::policy_phrases(d.info)[0];
    match d.category {
        VerbCategory::Collect => format!("we may collect {phrase}."),
        VerbCategory::Use => format!("we may use {phrase} to serve our partners."),
        VerbCategory::Retain => format!("we may store {phrase} on our servers."),
        VerbCategory::Disclose => format!("we may share {phrase} with our partners."),
    }
}

/// Generates the full lib-policy corpus (deterministic).
///
/// Every policy additionally carries the generic "personal information"
/// sentences that cause the paper's ESA false positives (§V-E: AdMob's
/// "We will share personal information with companies").
pub fn lib_policies() -> Vec<LibPolicy> {
    KNOWN_LIBS
        .iter()
        .map(|lib| {
            let declares = declarations_for(lib.kind);
            let mut body = String::new();
            body.push_str("<html><body><h1>Privacy Policy</h1>");
            body.push_str("<p>this privacy policy explains our data practices.</p>");
            for d in &declares {
                body.push_str(&format!("<p>{}</p>", declaration_sentence(d)));
            }
            body.push_str("<p>we may collect personal information.</p>");
            body.push_str("<p>we will share personal information with companies.</p>");
            body.push_str("</body></html>");
            LibPolicy { lib, html: body, declares }
        })
        .collect()
}

/// Finds the policy record for a lib id.
pub fn lib_policy(policies: &[LibPolicy], id: &str) -> Option<usize> {
    policies.iter().position(|p| p.lib.id == id)
}

/// Returns `true` if the library's policy positively declares `category`
/// of `info`.
pub fn declares(kind: LibKind, category: VerbCategory, info: PrivateInfo) -> bool {
    declarations_for(kind).iter().any(|d| d.category == category && d.info == info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_policy::PolicyAnalyzer;

    #[test]
    fn corpus_covers_all_81_libs() {
        let ps = lib_policies();
        assert_eq!(ps.len(), 81);
    }

    #[test]
    fn policies_parse_back_to_their_declarations() {
        // The generated text must actually yield the declared behaviours
        // when run through the real policy pipeline.
        let analyzer = PolicyAnalyzer::new();
        for p in lib_policies().iter().take(5) {
            let analysis = analyzer.analyze_html(&p.html);
            for d in &p.declares {
                let resources = analysis.resources(d.category, false);
                assert!(
                    !resources.is_empty(),
                    "{}: no positive {} resources parsed",
                    p.lib.id,
                    d.category
                );
            }
        }
    }

    #[test]
    fn generic_personal_information_sentence_present() {
        let analyzer = PolicyAnalyzer::new();
        let ps = lib_policies();
        let analysis = analyzer.analyze_html(&ps[0].html);
        assert!(analysis
            .resources(VerbCategory::Disclose, false)
            .iter()
            .any(|r| r.contains("personal information")));
    }

    #[test]
    fn unity3d_declares_location_collection() {
        // Fig. 3's Temple Run 2 ↔ Unity3d conflict requires this.
        assert!(declares(LibKind::DevTool, VerbCategory::Collect, PrivateInfo::Location));
    }
}
