//! Successor-literature detector workloads: three corpora with planted
//! ground truth for the detectors beyond the paper's three, plus the
//! precision/recall harness that scores a detector against its plants.
//!
//! Each workload follows the calibration discipline of the main corpus
//! ([`crate::plan`]): problems are planted at deterministic indices, the
//! ground truth travels with the app, and the score compares what the
//! *real* pipeline detects against what was planted — never against the
//! detector's own output.
//!
//! - [`data_safety_corpus`] — apps carrying structured Data-Safety label
//!   declarations with seeded mismatches (labels vs. taint-observed
//!   collection, labels vs. policy coverage).
//! - [`purpose_corpus`] — policies stating collection purposes
//!   (advertising / analytics / functionality) that the embedded-library
//!   evidence confirms or refutes.
//! - [`boilerplate_corpus`] — policy families planted as near duplicates
//!   of an earlier family representative, for the corpus-wide MinHash
//!   detector. Probe order matters: score this corpus sequentially.

use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission, PrivateInfo};
use ppchecker_core::{AppInput, BoilerplateIndex, DataSafetyLabel, DetectorId, PPChecker};
use std::fmt;
use std::sync::Arc;

/// Near-duplicate similarity threshold used by [`score_detector`] for
/// the boilerplate workload (estimated Jaccard over 3-token shingles).
pub const WORKLOAD_BOILERPLATE_THRESHOLD: f64 = 0.8;

/// One workload app: the checker input plus whether a problem for the
/// workload's detector was planted in it.
#[derive(Debug, Clone)]
pub struct WorkloadApp {
    /// PPChecker's input bundle.
    pub input: AppInput,
    /// `true` when the generator planted a finding for the workload's
    /// detector in this app.
    pub planted: bool,
}

/// App-level precision/recall counters for one detector workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorScore {
    /// Apps flagged whose plant confirms the finding.
    pub tp: usize,
    /// Apps flagged with nothing planted.
    pub fp: usize,
    /// Apps with a plant the detector missed.
    pub fn_: usize,
}

impl DetectorScore {
    /// Folds one app's outcome into the counters.
    pub fn record(&mut self, planted: bool, flagged: bool) {
        match (planted, flagged) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => {}
        }
    }

    /// `TP / (TP + FP)`; 1.0 when nothing was flagged (no false claims).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `TP / (TP + FN)`; 1.0 when nothing was planted.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

impl fmt::Display for DetectorScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} precision={:.3} recall={:.3}",
            self.tp,
            self.fp,
            self.fn_,
            self.precision(),
            self.recall(),
        )
    }
}

/// A location-collecting app skeleton: the dex observably reads the
/// last-known location (gated by a granted fine-location permission),
/// and `ad_lib` optionally embeds an advertising library.
fn base_app(package: &str, policy: &str, ad_lib: bool) -> AppInput {
    let mut manifest = Manifest::new(package);
    manifest.add_permission(Permission::AccessFineLocation);
    manifest.add_component(ComponentKind::Activity, &format!("{package}.Main"), true);
    let mut builder = Dex::builder().class(&format!("{package}.Main"), |c| {
        c.extends("android.app.Activity");
        c.method("onCreate", 1, |m| {
            m.invoke_virtual(
                "android.location.LocationManager",
                "getLastKnownLocation",
                &[0],
                Some(1),
            );
        });
    });
    if ad_lib {
        builder = builder.class("com.unity3d.ads.UnityAds", |c| {
            c.method("init", 1, |_| {});
        });
    }
    AppInput {
        package: package.to_string(),
        policy_html: format!("<html><body>{policy}</body></html>"),
        description: "A handy utility app.".to_string(),
        apk: Apk::new(manifest, builder.build()),
        labels: Vec::new(),
    }
}

/// The Data-Safety workload: every app's code observably collects the
/// location; labels are planted in four rotating shapes:
///
/// | `i % 4` | labels                  | plant                          |
/// |---------|-------------------------|--------------------------------|
/// | 0       | `location`              | none (labels match everything) |
/// | 1       | `device id`             | label omits the code's collection |
/// | 2       | `location`, `sms`       | policy never covers the `sms` label |
/// | 3       | `location`              | none                           |
pub fn data_safety_corpus(n: usize) -> Vec<WorkloadApp> {
    (0..n)
        .map(|i| {
            let package = format!("com.datasafety.app{i}");
            let policy = "<p>We may collect your location to personalize the \
                          experience. We may also collect your device id for \
                          support purposes.</p>";
            let mut input = base_app(&package, policy, false);
            let (labels, planted) = match i % 4 {
                1 => (vec![DataSafetyLabel::new(PrivateInfo::DeviceId)], true),
                2 => (
                    vec![
                        DataSafetyLabel::new(PrivateInfo::Location),
                        DataSafetyLabel::new(PrivateInfo::Sms),
                    ],
                    true,
                ),
                _ => (vec![DataSafetyLabel::new(PrivateInfo::Location)], false),
            };
            input.labels = labels;
            WorkloadApp { input, planted }
        })
        .collect()
}

/// The purpose-compliance workload, four rotating shapes:
///
/// | `i % 4` | stated purpose                     | ad lib | plant        |
/// |---------|------------------------------------|--------|--------------|
/// | 0       | "only to provide app functionality"| yes    | contradicted |
/// | 1       | "for advertising purposes"         | no     | unsupported  |
/// | 2       | "for advertising purposes"         | yes    | none         |
/// | 3       | "to operate the app" (inclusive)   | no     | none         |
pub fn purpose_corpus(n: usize) -> Vec<WorkloadApp> {
    (0..n)
        .map(|i| {
            let package = format!("com.purpose.app{i}");
            let (sentence, ad_lib, planted) = match i % 4 {
                0 => (
                    "We may collect your location and your device id only to \
                     provide app functionality.",
                    true,
                    true,
                ),
                1 => (
                    "We may collect your location and your device id for \
                     advertising purposes.",
                    false,
                    true,
                ),
                2 => (
                    "We may collect your location and your device id for \
                     advertising purposes.",
                    true,
                    false,
                ),
                _ => (
                    "We may collect your location and your device id to \
                     operate the app.",
                    false,
                    false,
                ),
            };
            let policy = format!("<p>{sentence}</p>");
            WorkloadApp { input: base_app(&package, &policy, ad_lib), planted }
        })
        .collect()
}

/// A family-root policy: a short shared frame followed by a long run of
/// root-unique tokens, so two different roots share almost no 3-token
/// shingles (exact Jaccard far below the threshold) while a planted
/// near-duplicate shares nearly all of them.
fn boilerplate_root_policy(root: usize) -> String {
    let mut body = String::from(
        "<p>We may collect your location and your device id. \
         We retain data only as long as necessary.",
    );
    for w in 0..28 {
        let _ = std::fmt::Write::write_fmt(&mut body, format_args!(" term{root}section{w}"));
    }
    body.push_str("</p>");
    body
}

/// The boilerplate workload: apps arrive in corpus order; every third
/// app (`i % 3 == 2`) is a planted near duplicate of the family root
/// two slots earlier, differing by one trailing sentence. Roots and
/// singletons carry fully distinct token runs, so only the plants sit
/// above the similarity threshold. Score sequentially — family
/// assignment depends on probe order.
pub fn boilerplate_corpus(n: usize) -> Vec<WorkloadApp> {
    (0..n)
        .map(|i| {
            let package = format!("com.boilerplate.app{i}");
            let (policy, planted) = if i % 3 == 2 {
                let root = boilerplate_root_policy(i - 2);
                (root.replace("</p>", " contact support anytime</p>"), true)
            } else {
                (boilerplate_root_policy(i), false)
            };
            WorkloadApp { input: base_app(&package, &policy, false), planted }
        })
        .collect()
}

/// Runs exactly `id` over the workload (sequentially, in corpus order)
/// and scores app-level detection against the plants. The boilerplate
/// detector gets a fresh shared index at
/// [`WORKLOAD_BOILERPLATE_THRESHOLD`].
pub fn score_detector(apps: &[WorkloadApp], id: DetectorId) -> DetectorScore {
    let mut checker = PPChecker::new().with_detectors(&[id]);
    if id == DetectorId::Boilerplate {
        checker = checker.with_boilerplate_index(Arc::new(BoilerplateIndex::new(
            WORKLOAD_BOILERPLATE_THRESHOLD,
        )));
    }
    let mut score = DetectorScore::default();
    for app in apps {
        let report = checker.check_app(&app.input).expect("workload apps analyze cleanly");
        score.record(app.planted, report.detector_findings(id) > 0);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_plant_the_expected_fraction() {
        let ds = data_safety_corpus(40);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.iter().filter(|a| a.planted).count(), 20);
        let p = purpose_corpus(40);
        assert_eq!(p.iter().filter(|a| a.planted).count(), 20);
        let b = boilerplate_corpus(30);
        assert_eq!(b.iter().filter(|a| a.planted).count(), 10);
    }

    #[test]
    fn score_math_handles_the_edges() {
        let mut s = DetectorScore::default();
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        s.record(true, true);
        s.record(false, true);
        s.record(true, false);
        s.record(false, false);
        assert_eq!((s.tp, s.fp, s.fn_), (1, 1, 1));
        assert!((s.precision() - 0.5).abs() < 1e-9);
        assert!((s.recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn every_labelled_app_declares_at_least_one_label() {
        // The data-safety detector declines label-free apps; a workload
        // app with no labels would be unscoreable by construction.
        for app in data_safety_corpus(16) {
            assert!(!app.input.labels.is_empty());
        }
    }
}
