//! Adversarial scenarios from the paper's introduction (§I):
//!
//! 1. **Repackaged apps** — "the unrevealed behaviors in an incomplete
//!    privacy policy may come from the malicious component of a repackaged
//!    app": a benign app is republished with an injected component that
//!    harvests data behind the original (now incomplete) policy.
//! 2. **Deceptive policies** — "an adversary can create an incorrect
//!    privacy policy to fool users": the policy loudly denies exactly the
//!    behaviours the app performs.

use crate::generate::generate_app;
use crate::plan::AppSpec;
use ppchecker_apk::{Apk, Insn, PrivateInfo};
use ppchecker_core::AppInput;
use ppchecker_policy::VerbCategory;

/// Repackages a (presumed benign) app: injects a malicious class that
/// harvests the given information and exfiltrates it over the network,
/// wired into the app's `onCreate` — exactly the repackaging pattern the
/// paper's intro describes. The policy is left untouched, so a previously
/// complete policy becomes incomplete.
pub fn repackage(app: &AppInput, stolen: &[PrivateInfo]) -> AppInput {
    let mut dex = app.apk.dex().expect("input app has a readable dex");
    let mal_class = format!("{}.update.SyncHelper", app.package);

    // The injected payload: harvest each target and push it to a C2 server.
    let mut payload = ppchecker_apk::Method::new("exfiltrate", 1);
    let mut reg = 2u32;
    for &info in stolen {
        let insn = match info {
            PrivateInfo::Contact => {
                payload.instructions.push(Insn::ConstString {
                    dst: reg + 1,
                    value: "content://com.android.contacts".to_string(),
                });
                Insn::Invoke {
                    kind: ppchecker_apk::InvokeKind::Virtual,
                    class: "android.content.ContentResolver".to_string(),
                    method: "query".to_string(),
                    args: vec![0, reg + 1],
                    dst: Some(reg),
                }
            }
            PrivateInfo::Location => Insn::Invoke {
                kind: ppchecker_apk::InvokeKind::Virtual,
                class: "android.location.Location".to_string(),
                method: "getLatitude".to_string(),
                args: vec![0],
                dst: Some(reg),
            },
            _ => Insn::Invoke {
                kind: ppchecker_apk::InvokeKind::Virtual,
                class: "android.telephony.TelephonyManager".to_string(),
                method: "getDeviceId".to_string(),
                args: vec![0],
                dst: Some(reg),
            },
        };
        payload.instructions.push(insn);
        payload.instructions.push(Insn::Invoke {
            kind: ppchecker_apk::InvokeKind::Virtual,
            class: "java.io.OutputStream".to_string(),
            method: "write".to_string(),
            args: vec![reg],
            dst: None,
        });
        reg += 2;
    }
    payload.instructions.push(Insn::Return { src: None });
    dex.classes.push(ppchecker_apk::Class {
        name: mal_class.clone(),
        superclass: "java.lang.Object".to_string(),
        interfaces: vec![],
        methods: vec![payload],
    });

    // Wire the payload into the main activity's onCreate so it is
    // reachable.
    if let Some(main) = app.apk.manifest.main_activity().map(|c| c.class_name.clone()) {
        if let Some(class) = dex.classes.iter_mut().find(|c| c.name == main) {
            if let Some(m) = class.methods.iter_mut().find(|m| m.name == "onCreate") {
                let at = m.instructions.len().saturating_sub(1);
                m.instructions.insert(
                    at,
                    Insn::Invoke {
                        kind: ppchecker_apk::InvokeKind::Virtual,
                        class: mal_class,
                        method: "exfiltrate".to_string(),
                        args: vec![0],
                        dst: None,
                    },
                );
            }
        }
    }

    let mut manifest = app.apk.manifest.clone();
    for &info in stolen {
        if let Some(p) = info.required_permission() {
            manifest.add_permission(p);
        }
    }
    AppInput {
        package: app.package.clone(),
        policy_html: app.policy_html.clone(),
        description: app.description.clone(),
        apk: Apk::new(manifest, dex),
        labels: app.labels.clone(),
    }
}

/// Builds a deceptive app: the policy explicitly denies the behaviours the
/// dex performs (the paper's "adversary can create an incorrect privacy
/// policy to fool users").
pub fn deceptive_app(seed: u64) -> AppInput {
    let spec = AppSpec {
        index: 999_999 % crate::plan::APP_COUNT,
        code_collect: vec![(PrivateInfo::Contact, true), (PrivateInfo::Location, false)],
        policy_cover: vec![PrivateInfo::Email],
        policy_deny: vec![
            (VerbCategory::Collect, PrivateInfo::Location, true),
            (VerbCategory::Retain, PrivateInfo::Contact, true),
        ],
        ..AppSpec::default()
    };
    generate_app(&spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::small_dataset;
    use ppchecker_core::PPChecker;

    #[test]
    fn repackaging_breaks_a_clean_app() {
        // Take a clean app from the corpus (index 500 has no plants) and
        // repackage it with a contact stealer.
        let dataset = small_dataset(42, 501);
        let clean = &dataset.apps[500];
        assert!(!clean.spec.truth.has_any_problem(), "picked app must be clean");
        let checker = PPChecker::new();
        let before = checker.check_app(&clean.input).unwrap();
        assert!(!before.is_incomplete(), "{before}");

        let repackaged = repackage(&clean.input, &[PrivateInfo::Contact]);
        let after = checker.check_app(&repackaged).unwrap();
        assert!(after.is_incomplete(), "{after}");
        assert!(after.missed_via_code().any(|m| m.info == PrivateInfo::Contact && m.retained));
    }

    #[test]
    fn deceptive_policy_is_flagged_incorrect() {
        let app = deceptive_app(7);
        let report = PPChecker::new().check_app(&app).unwrap();
        assert!(report.is_incorrect(), "{report}");
        assert!(report
            .incorrect
            .iter()
            .any(|f| f.info == PrivateInfo::Contact && f.category == VerbCategory::Retain));
        assert!(report
            .incorrect
            .iter()
            .any(|f| f.info == PrivateInfo::Location && f.category == VerbCategory::Collect));
    }

    #[test]
    fn repackaged_payload_exfiltrates_over_network() {
        let dataset = small_dataset(42, 501);
        let repackaged = repackage(&dataset.apps[500].input, &[PrivateInfo::Location]);
        let report = ppchecker_static::analyze(&repackaged.apk).unwrap();
        assert!(report
            .retained
            .iter()
            .any(|l| l.info == PrivateInfo::Location
                && l.sink == ppchecker_static::SinkKind::Network));
    }
}
