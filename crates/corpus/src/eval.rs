//! Evaluation harness: runs PPChecker over the dataset and computes every
//! statistic of the paper's §V, comparing detector output against the
//! planted ground truth exactly the way the authors' manual verification
//! did.

use crate::dataset::Dataset;
use ppchecker_apk::{Permission, PrivateInfo};
use ppchecker_core::Report;
use ppchecker_policy::VerbCategory;
use std::collections::BTreeMap;

/// Precision/recall counters for one Table IV row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RowMetrics {
    /// Apps the detector flagged on this row.
    pub flagged: usize,
    /// Flagged apps confirmed by ground truth.
    pub tp: usize,
    /// Flagged apps rejected by ground truth.
    pub fp: usize,
    /// Ground-truth apps inside the manual sample.
    pub sample_truth: usize,
    /// Detected apps inside the manual sample.
    pub sample_detected: usize,
}

impl RowMetrics {
    /// `TP / flagged`.
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            0.0
        } else {
            self.tp as f64 / self.flagged as f64
        }
    }

    /// `detected / truth` over the manual sample.
    pub fn recall(&self) -> f64 {
        if self.sample_truth == 0 {
            0.0
        } else {
            self.sample_detected as f64 / self.sample_truth as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Every statistic the paper reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Evaluation {
    /// Dataset size (1,197).
    pub total_apps: usize,
    /// Apps embedding ≥1 lib (879).
    pub apps_with_libs: usize,
    /// Apps flagged incomplete via description (64).
    pub incomplete_desc_flagged: usize,
    /// Table III: permission → number of flagged apps.
    pub table3: BTreeMap<Permission, usize>,
    /// Apps flagged incomplete via code (195).
    pub incomplete_code_flagged: usize,
    /// ... of which confirmed (180).
    pub incomplete_code_tp: usize,
    /// ... of which rejected (15).
    pub incomplete_code_fp: usize,
    /// Missed-info records among confirmed apps (234).
    pub missed_records: usize,
    /// ... of which retained (32).
    pub retained_records: usize,
    /// Fig. 13: info → missed-record count among confirmed apps.
    pub fig13: BTreeMap<PrivateInfo, usize>,
    /// Apps flagged incorrect via description (2).
    pub incorrect_desc_flagged: usize,
    /// Apps flagged incorrect via code (6).
    pub incorrect_code_flagged: usize,
    /// ... of which confirmed (4).
    pub incorrect_tp: usize,
    /// ... of which rejected (2).
    pub incorrect_fp: usize,
    /// Table IV collect/use/retain row.
    pub cur: RowMetrics,
    /// Table IV disclose row.
    pub disclose: RowMetrics,
    /// Apps with ≥1 confirmed detected problem (282).
    pub problem_apps: usize,
    /// Confirmed inconsistent apps (75).
    pub inconsistent_apps: usize,
    /// Confirmed incomplete apps (222).
    pub incomplete_apps: usize,
}

impl Evaluation {
    /// `problem_apps / total_apps`.
    pub fn problem_rate(&self) -> f64 {
        self.problem_apps as f64 / self.total_apps as f64
    }
}

/// Runs the checker over every app and aggregates the paper's statistics.
///
/// # Panics
///
/// Panics if an app's dex fails to unpack (generated corpora never do).
pub fn evaluate(dataset: &Dataset) -> Evaluation {
    let checker = dataset.make_checker();
    let mut ev = Evaluation { total_apps: dataset.apps.len(), ..Evaluation::default() };

    for app in &dataset.apps {
        let report = checker.check_app(&app.input).expect("generated apps analyze cleanly");
        accumulate(&mut ev, app, &report);
    }
    ev
}

/// Like [`evaluate`], but runs the corpus through the batch engine with
/// `jobs` workers. Records come back in submission order, so the fold is
/// identical to the serial one and the returned [`Evaluation`] equals
/// `evaluate(dataset)` for any worker count. The engine's metrics summary
/// is returned alongside for throughput/cache reporting.
///
/// # Panics
///
/// Panics if an app's dex fails to unpack (generated corpora never do).
pub fn evaluate_parallel(
    dataset: &Dataset,
    jobs: usize,
) -> (Evaluation, ppchecker_engine::MetricsSummary) {
    let engine = ppchecker_engine::Engine::with_lib_policies(
        ppchecker_core::PPChecker::new(),
        dataset.lib_policies.iter().map(|lp| (lp.lib.id.to_string(), lp.html.clone())),
    )
    .with_jobs(jobs);

    let batch = engine.run(dataset.iter_apps().cloned());
    let mut ev = Evaluation { total_apps: dataset.apps.len(), ..Evaluation::default() };
    for (record, app) in batch.records.iter().zip(dataset.apps.iter()) {
        let report = record
            .report()
            .unwrap_or_else(|| panic!("generated apps analyze cleanly: {:?}", record.error()));
        accumulate(&mut ev, app, report);
    }
    (ev, batch.metrics)
}

fn accumulate(ev: &mut Evaluation, app: &crate::dataset::GeneratedApp, report: &Report) {
    let truth = &app.spec.truth;
    if !report.libs.is_empty() {
        ev.apps_with_libs += 1;
    }

    // ---- incomplete via description (Table III) ----
    let desc_missed: Vec<_> = report.missed_via_description().collect();
    if !desc_missed.is_empty() {
        ev.incomplete_desc_flagged += 1;
        for m in &desc_missed {
            if let Some(p) = &m.permission {
                *ev.table3.entry(p.clone()).or_insert(0) += 1;
            }
        }
    }

    // ---- incomplete via code (Fig. 13) ----
    let code_missed: Vec<_> = report.missed_via_code().collect();
    if !code_missed.is_empty() {
        ev.incomplete_code_flagged += 1;
        if truth.incomplete_via_code {
            ev.incomplete_code_tp += 1;
            for m in &code_missed {
                *ev.fig13.entry(m.info).or_insert(0) += 1;
                ev.missed_records += 1;
                if m.retained {
                    ev.retained_records += 1;
                }
            }
        } else {
            ev.incomplete_code_fp += 1;
        }
    }

    // ---- incorrect ----
    let incorrect_desc =
        report.incorrect.iter().any(|f| f.channel == ppchecker_core::Channel::Description);
    let incorrect_code =
        report.incorrect.iter().any(|f| f.channel == ppchecker_core::Channel::Code);
    if incorrect_desc {
        ev.incorrect_desc_flagged += 1;
    }
    if incorrect_code {
        ev.incorrect_code_flagged += 1;
        if truth.incorrect {
            ev.incorrect_tp += 1;
        } else {
            ev.incorrect_fp += 1;
        }
    }

    // ---- inconsistent (Table IV) ----
    let cur_flagged = report.inconsistencies.iter().any(|i| i.category != VerbCategory::Disclose);
    let d_flagged = report.inconsistencies.iter().any(|i| i.category == VerbCategory::Disclose);
    if cur_flagged {
        ev.cur.flagged += 1;
        if truth.inconsistent_cur() {
            ev.cur.tp += 1;
        } else {
            ev.cur.fp += 1;
        }
    }
    if d_flagged {
        ev.disclose.flagged += 1;
        if truth.inconsistent_d() {
            ev.disclose.tp += 1;
        } else {
            ev.disclose.fp += 1;
        }
    }
    if truth.in_sample {
        if truth.inconsistent_cur() {
            ev.cur.sample_truth += 1;
            if cur_flagged {
                ev.cur.sample_detected += 1;
            }
        }
        if truth.inconsistent_d() {
            ev.disclose.sample_truth += 1;
            if d_flagged {
                ev.disclose.sample_detected += 1;
            }
        }
    }

    // ---- headline (confirmed, detected problems) ----
    let confirmed_incomplete = (!desc_missed.is_empty() && truth.incomplete_via_desc)
        || (!code_missed.is_empty() && truth.incomplete_via_code);
    let confirmed_incorrect = (incorrect_desc || incorrect_code) && truth.incorrect;
    let confirmed_inconsistent =
        (cur_flagged && truth.inconsistent_cur()) || (d_flagged && truth.inconsistent_d());
    if confirmed_incomplete {
        ev.incomplete_apps += 1;
    }
    if confirmed_inconsistent {
        ev.inconsistent_apps += 1;
    }
    if confirmed_incomplete || confirmed_incorrect || confirmed_inconsistent {
        ev.problem_apps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::small_dataset;

    #[test]
    fn row_metrics_math() {
        let m = RowMetrics { flagged: 46, tp: 41, fp: 5, sample_truth: 12, sample_detected: 11 };
        assert!((m.precision() - 0.8913).abs() < 1e-3);
        assert!((m.recall() - 0.9167).abs() < 1e-3);
        assert!((m.f1() - 0.9038).abs() < 1e-3);
    }

    #[test]
    fn evaluation_runs_on_a_small_slice() {
        // The first 64 apps are the description/both incomplete plants.
        let d = small_dataset(42, 64);
        let ev = evaluate(&d);
        assert_eq!(ev.total_apps, 64);
        assert_eq!(ev.incomplete_desc_flagged, 64);
        assert!(ev.table3.values().sum::<usize>() >= 64);
    }
}
