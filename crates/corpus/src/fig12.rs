//! The Fig. 12 pattern-selection experiment: a mining corpus, the
//! 250-positive / 250-negative manually-labeled sentence sets, and the
//! sweep over the number of selected patterns `n`.
//!
//! The paper builds both sets from 100 real policies; this module
//! generates an equivalent synthetic pair whose pattern-frequency profile
//! is calibrated so the sweep reproduces the paper's shape: the false
//! negative rate falls as `n` grows while the false positive rate creeps
//! up, with the FN+FP minimum around n = 230 (detection 88.0%, FP 2.8%).

use ppchecker_nlp::depparse::parse;
use ppchecker_policy::bootstrap::{score_patterns, CorpusSentence};
use ppchecker_policy::{match_sentence, Bootstrapper, Pattern, VerbCategory};

/// Resources used in mining and labeled sentences (their head lemmas form
/// the bootstrapper's object list).
const RESOURCES: &[&str] = &[
    "your location",
    "your contacts",
    "your device id",
    "your email address",
    "your personal information",
    "your usage data",
    "your cookies",
    "your photos",
    "your messages",
    "your phone number",
];

/// Real verbs for the head of the mined-pattern inventory.
const BASE_VERBS: &[(&str, VerbCategory)] = &[
    ("harvest", VerbCategory::Collect),
    ("monitor", VerbCategory::Collect),
    ("view", VerbCategory::Collect),
    ("scan", VerbCategory::Collect),
    ("fetch", VerbCategory::Collect),
    ("pull", VerbCategory::Collect),
    ("retrieve", VerbCategory::Collect),
    ("extract", VerbCategory::Collect),
    ("mine", VerbCategory::Collect),
    ("inspect", VerbCategory::Collect),
    ("survey", VerbCategory::Collect),
    ("detect", VerbCategory::Collect),
    ("poll", VerbCategory::Collect),
    ("probe", VerbCategory::Collect),
    ("import", VerbCategory::Collect),
    ("ingest", VerbCategory::Collect),
    ("sample", VerbCategory::Collect),
    ("enumerate", VerbCategory::Collect),
    ("catalog", VerbCategory::Collect),
    ("crawl", VerbCategory::Collect),
    ("aggregate", VerbCategory::Use),
    ("compile", VerbCategory::Use),
    ("evaluate", VerbCategory::Use),
    ("interpret", VerbCategory::Use),
    ("correlate", VerbCategory::Use),
    ("segment", VerbCategory::Use),
    ("classify", VerbCategory::Use),
    ("categorize", VerbCategory::Use),
    ("rank", VerbCategory::Use),
    ("score", VerbCategory::Use),
    ("model", VerbCategory::Use),
    ("infer", VerbCategory::Use),
    ("compute", VerbCategory::Use),
    ("calculate", VerbCategory::Use),
    ("transform", VerbCategory::Use),
    ("enrich", VerbCategory::Use),
    ("annotate", VerbCategory::Use),
    ("summarize", VerbCategory::Use),
    ("digest", VerbCategory::Use),
    ("leverage", VerbCategory::Use),
    ("stash", VerbCategory::Retain),
    ("bank", VerbCategory::Retain),
    ("warehouse", VerbCategory::Retain),
    ("persist", VerbCategory::Retain),
    ("backup", VerbCategory::Retain),
    ("mirror", VerbCategory::Retain),
    ("replicate", VerbCategory::Retain),
    ("snapshot", VerbCategory::Retain),
    ("journal", VerbCategory::Retain),
    ("stockpile", VerbCategory::Retain),
    ("buffer", VerbCategory::Retain),
    ("spool", VerbCategory::Retain),
    ("checkpoint", VerbCategory::Retain),
    ("shelve", VerbCategory::Retain),
    ("vault", VerbCategory::Retain),
    ("broadcast", VerbCategory::Disclose),
    ("forward", VerbCategory::Disclose),
    ("relay", VerbCategory::Disclose),
    ("syndicate", VerbCategory::Disclose),
    ("export", VerbCategory::Disclose),
    ("stream", VerbCategory::Disclose),
    ("push", VerbCategory::Disclose),
    ("divulge", VerbCategory::Disclose),
    ("surrender", VerbCategory::Disclose),
    ("circulate", VerbCategory::Disclose),
    ("disseminate", VerbCategory::Disclose),
    ("announce", VerbCategory::Disclose),
    ("license", VerbCategory::Disclose),
    ("auction", VerbCategory::Disclose),
    ("barter", VerbCategory::Disclose),
    ("swap", VerbCategory::Disclose),
    ("exchange", VerbCategory::Disclose),
    ("unveil", VerbCategory::Disclose),
    ("peddle", VerbCategory::Disclose),
    ("vend", VerbCategory::Disclose),
];

/// Verbs deliberately absent from the mining corpus: the false-negative
/// tail ("display" per the paper's §V-E).
const UNMINED_VERBS: &[&str] = &["display", "present", "exhibit", "depict", "portray", "showcase"];

/// Builds the full mined-verb inventory (230 verbs): the 80 base verbs
/// plus prefixed variants, in a deterministic order.
pub fn verb_inventory() -> Vec<(String, VerbCategory)> {
    let mut out: Vec<(String, VerbCategory)> =
        BASE_VERBS.iter().map(|(v, c)| (v.to_string(), *c)).collect();
    // Words the bootstrapper's verb blacklist would reject (e.g. the
    // accidental "re"+"view" = "review") are skipped.
    const BLOCKED: &[&str] = &["review", "read", "contact", "agree", "visit", "click"];
    for prefix in ["re", "pre", "auto"] {
        for (v, c) in BASE_VERBS.iter() {
            let candidate = format!("{prefix}{v}");
            if BLOCKED.contains(&candidate.as_str()) {
                continue;
            }
            out.push((candidate, *c));
            if out.len() == 230 {
                return out;
            }
        }
    }
    out
}

/// The experiment's three sentence collections.
#[derive(Debug, Clone)]
pub struct Fig12Corpus {
    /// Mining corpus (pattern bootstrapping input).
    pub mining: Vec<CorpusSentence>,
    /// 250 manually-labeled positive sentences.
    pub positive: Vec<String>,
    /// 250 manually-labeled negative sentences.
    pub negative: Vec<String>,
}

fn sentence(verb: &str, resource: &str) -> String {
    format!("we may {verb} {resource}.")
}

/// Builds the deterministic Fig. 12 corpus.
pub fn fig12_corpus() -> Fig12Corpus {
    let verbs = verb_inventory();
    let res = |i: usize| RESOURCES[i % RESOURCES.len()];

    // ---- mining corpus ----
    let mut mining: Vec<CorpusSentence> = Vec::new();
    // Seed-verb sentences establish the subject and object lists.
    for (i, seed_verb) in ["collect", "gather", "store", "share", "use"].iter().enumerate() {
        for k in 0..2 {
            for (j, r) in RESOURCES.iter().enumerate() {
                let _ = j;
                mining.push(CorpusSentence {
                    text: sentence(seed_verb, r),
                    category: match i {
                        0 | 1 => VerbCategory::Collect,
                        2 => VerbCategory::Retain,
                        3 => VerbCategory::Disclose,
                        _ => VerbCategory::Use,
                    },
                });
                let _ = k;
            }
        }
    }
    // One sentence per minable verb, in inventory order (this order fixes
    // the tie-broken ranking of equal-score patterns).
    for (i, (v, c)) in verbs.iter().enumerate() {
        mining.push(CorpusSentence { text: sentence(v, res(i)), category: *c });
    }

    // ---- labeled positive set (250) ----
    let mut positive: Vec<String> = Vec::new();
    // 40 seed-form sentences.
    for i in 0..8 {
        positive.push(format!("we will collect {}.", res(i)));
        positive.push(format!("{} will be used.", res(i + 1)));
        positive.push(format!("we are allowed to access {}.", res(i + 2)));
        positive.push(format!("we are able to collect {}.", res(i + 3)));
        positive.push(format!("we need your consent to access {}.", res(i + 4)));
    }
    // 20 common mined verbs × 2 sentences = 40.
    for (v, _) in verbs.iter().take(20) {
        positive.push(sentence(v, RESOURCES[0]));
        positive.push(sentence(v, RESOURCES[1]));
    }
    // 130 singleton verbs (ranks inside the zero-score block).
    for (i, (v, _)) in verbs.iter().skip(20).take(130).enumerate() {
        positive.push(sentence(v, res(i)));
    }
    // 10 verbs that also appear in a negative sentence.
    for (i, (v, _)) in verbs.iter().skip(150).take(10).enumerate() {
        positive.push(sentence(v, res(i)));
    }
    // 30 unmined-verb sentences: the irreducible false-negative tail.
    for i in 0..30 {
        positive.push(sentence(UNMINED_VERBS[i % UNMINED_VERBS.len()], res(i)));
    }
    assert_eq!(positive.len(), 250);

    // ---- labeled negative set (250) ----
    let mut negative: Vec<String> = Vec::new();
    const IRRELEVANT: &[&str] = &[
        "the app is free to download.",
        "please contact our support team with questions.",
        "this policy may change from time to time.",
        "the service comes with no warranty of any kind.",
        "new levels are added every week.",
        "performance improvements and bug fixes.",
        "thank you for playing our game.",
        "the interface supports many languages.",
        "subscription renews automatically each month.",
        "our team works hard on every update.",
        "the app requires a network connection.",
        "achievements unlock as you progress.",
        "tutorials explain every feature in detail.",
        "the soundtrack features original music.",
    ];
    for i in 0..238 {
        negative.push(format!("{} version note {}.", IRRELEVANT[i % IRRELEVANT.len()], i));
    }
    // 3 negatives matched by common (top-ranked) patterns.
    for (v, _) in verbs.iter().take(3) {
        negative.push(sentence(v, "your progress"));
    }
    // 4 negatives matched by the pos-and-neg verbs.
    for (v, _) in verbs.iter().skip(150).take(4) {
        negative.push(sentence(v, "your suggestions"));
    }
    // 5 negatives matched only by late-ranked (never-positive) patterns.
    for (v, _) in verbs.iter().skip(225).take(5) {
        negative.push(sentence(v, "your suggestions"));
    }
    assert_eq!(negative.len(), 250);

    Fig12Corpus { mining, positive, negative }
}

/// One point of the Fig. 12 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Number of selected patterns.
    pub n: usize,
    /// False-negative rate over the positive set.
    pub fn_rate: f64,
    /// False-positive rate over the negative set.
    pub fp_rate: f64,
}

/// Runs the full experiment: mine → score → sweep `n`.
///
/// Returns the sweep curve; use [`best_n`] for the paper's selection rule.
pub fn run_sweep(corpus: &Fig12Corpus, step: usize) -> Vec<SweepPoint> {
    let patterns = Bootstrapper::default().mine(&corpus.mining);
    let scored = score_patterns(&patterns, &corpus.positive, &corpus.negative);
    let ranked: Vec<Pattern> = scored.into_iter().map(|s| s.pattern).collect();

    // Pre-compute, per sentence, the best (lowest) rank of a matching
    // pattern; usize::MAX when nothing matches.
    let rank_of = |text: &str| -> usize {
        let p = parse(text);
        ranked
            .iter()
            .enumerate()
            .find(|(_, pat)| match_sentence(&p, std::slice::from_ref(pat)).is_some())
            .map(|(i, _)| i + 1)
            .unwrap_or(usize::MAX)
    };
    let pos_ranks: Vec<usize> = corpus.positive.iter().map(|s| rank_of(s)).collect();
    let neg_ranks: Vec<usize> = corpus.negative.iter().map(|s| rank_of(s)).collect();

    let mut out = Vec::new();
    let mut n = step.max(1);
    while n <= ranked.len() + step {
        let sel = n.min(ranked.len());
        let fn_count = pos_ranks.iter().filter(|&&r| r > sel).count();
        let fp_count = neg_ranks.iter().filter(|&&r| r <= sel).count();
        out.push(SweepPoint {
            n: sel,
            fn_rate: fn_count as f64 / pos_ranks.len() as f64,
            fp_rate: fp_count as f64 / neg_ranks.len() as f64,
        });
        if sel == ranked.len() {
            break;
        }
        n += step;
    }
    out
}

/// The paper's selection rule: the `n` minimizing FN+FP (taking the
/// largest minimizer, which maximizes recall headroom on the plateau).
pub fn best_n(sweep: &[SweepPoint]) -> SweepPoint {
    *sweep
        .iter()
        .reduce(
            |best, p| {
                if p.fn_rate + p.fp_rate <= best.fn_rate + best.fp_rate {
                    p
                } else {
                    best
                }
            },
        )
        .expect("sweep is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_230_distinct_verbs() {
        let v = verb_inventory();
        assert_eq!(v.len(), 230);
        let mut names: Vec<&str> = v.iter().map(|(s, _)| s.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 230);
    }

    #[test]
    fn corpus_sizes_match_the_paper() {
        let c = fig12_corpus();
        assert_eq!(c.positive.len(), 250);
        assert_eq!(c.negative.len(), 250);
        assert!(c.mining.len() > 250);
    }

    #[test]
    fn plain_negatives_never_match_seeds() {
        let c = fig12_corpus();
        let seeds = Pattern::seeds();
        for s in c.negative.iter().take(20) {
            let p = parse(s);
            assert!(match_sentence(&p, &seeds).is_none(), "negative matched a seed: {s}");
        }
    }

    #[test]
    fn mining_discovers_most_of_the_inventory() {
        let c = fig12_corpus();
        let patterns = Bootstrapper::default().mine(&c.mining);
        assert!(patterns.len() >= 200, "only {} patterns mined", patterns.len());
    }
}

/// Runs the complete Fig. 12 workflow — mine, score against the labeled
/// sets, select the best `n` — and returns a [`ppchecker_policy::PolicyAnalyzer`]
/// over the selected patterns: the "deployed" configuration the paper's
/// system would ship after its §V-B calibration.
pub fn calibrated_analyzer() -> ppchecker_policy::PolicyAnalyzer {
    let corpus = fig12_corpus();
    let patterns = Bootstrapper::default().mine(&corpus.mining);
    let scored = score_patterns(&patterns, &corpus.positive, &corpus.negative);
    let sweep = run_sweep(&corpus, 10);
    let n = best_n(&sweep).n;
    let selected = ppchecker_policy::select_top_n(&scored, n);
    ppchecker_policy::PolicyAnalyzer::with_patterns(selected)
}

#[cfg(test)]
mod calibrated_tests {
    use super::*;

    #[test]
    fn calibrated_analyzer_hits_the_paper_operating_point() {
        let analyzer = calibrated_analyzer();
        assert_eq!(analyzer.patterns().len(), 230);
        // Detection rate over the positive set = 88%.
        let corpus = fig12_corpus();
        let detected = corpus
            .positive
            .iter()
            .filter(|s| match_sentence(&parse(s), analyzer.patterns()).is_some())
            .count();
        assert_eq!(detected, 220, "88% of 250");
    }

    #[test]
    fn calibrated_analyzer_runs_the_pipeline() {
        let analyzer = calibrated_analyzer();
        let a = analyzer.analyze_text("we may harvest your location.");
        assert_eq!(a.sentences.len(), 1);
    }
}
