//! Dataset manifests: named, reproducible workload subsets of the scale
//! corpus, as a header + ID-list text format.
//!
//! A manifest pins everything needed to regenerate a subset bit-for-bit:
//! the generation seed, the index space it selects from, and the exact
//! sorted ID list. The format is line-oriented and diff-friendly:
//!
//! ```text
//! # ppchecker dataset manifest v1
//! name: packed-dex-heavy
//! seed: 42
//! space: 10000
//! count: 196
//! ---
//! 224
//! 255
//! …
//! ```
//!
//! [`ScenarioPack`] derives the shipped packs from the same pure index
//! predicates the scale generator uses ([`crate::scale::scenario_of`]),
//! so a pack regenerated at any `space` always matches what the engine
//! would stream for those indices.

use crate::dataset::GeneratedApp;
use crate::plan::{build_plan, AppSpec, APP_COUNT};
use crate::scale::{generate_scaled, scenario_of, Scenario};
use std::fmt;
use std::sync::Arc;

/// Format tag on the first line of every manifest file.
pub const MANIFEST_HEADER: &str = "# ppchecker dataset manifest v1";

/// A parse or validation failure, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ManifestError {}

/// A named, reproducible subset of the scale corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetManifest {
    /// Subset name (`[a-z0-9-]+`).
    pub name: String,
    /// Generation seed the IDs were selected under.
    pub seed: u64,
    /// The index space the IDs select from: `0..space` of the scale
    /// corpus.
    pub space: usize,
    /// Selected indices, strictly ascending, all `< space`.
    pub ids: Vec<usize>,
}

impl DatasetManifest {
    /// Parses the manifest text format.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] on a missing or wrong header line,
    /// missing or malformed header fields, a count mismatch, IDs out of
    /// range, or IDs out of order.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default().trim();
        if header != MANIFEST_HEADER {
            return Err(ManifestError(format!(
                "bad manifest header: expected {MANIFEST_HEADER:?}, got {header:?}"
            )));
        }
        let mut name = None;
        let mut seed = None;
        let mut space = None;
        let mut count = None;
        for line in lines.by_ref() {
            let line = line.trim();
            if line == "---" {
                break;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| ManifestError(format!("malformed header line: {line:?}")))?;
            let value = value.trim();
            match key.trim() {
                "name" => {
                    if value.is_empty()
                        || !value
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                    {
                        return Err(ManifestError(format!("bad manifest name: {value:?}")));
                    }
                    name = Some(value.to_string());
                }
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| ManifestError(format!("bad seed: {value:?}")))?,
                    );
                }
                "space" => {
                    space = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| ManifestError(format!("bad space: {value:?}")))?,
                    );
                }
                "count" => {
                    count = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| ManifestError(format!("bad count: {value:?}")))?,
                    );
                }
                other => return Err(ManifestError(format!("unknown header key: {other:?}"))),
            }
        }
        let name = name.ok_or_else(|| ManifestError("missing name header".into()))?;
        let seed = seed.ok_or_else(|| ManifestError("missing seed header".into()))?;
        let space = space.ok_or_else(|| ManifestError("missing space header".into()))?;
        let count = count.ok_or_else(|| ManifestError("missing count header".into()))?;

        let mut ids = Vec::with_capacity(count);
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let id = line
                .parse::<usize>()
                .map_err(|_| ManifestError(format!("bad id line: {line:?}")))?;
            if id >= space {
                return Err(ManifestError(format!("id {id} outside space {space}")));
            }
            if let Some(&last) = ids.last() {
                if id <= last {
                    return Err(ManifestError(format!(
                        "ids must be strictly ascending: {id} after {last}"
                    )));
                }
            }
            ids.push(id);
        }
        if ids.len() != count {
            return Err(ManifestError(format!(
                "count header says {count} but {} ids listed",
                ids.len()
            )));
        }
        Ok(DatasetManifest { name, seed, space, ids })
    }

    /// Renders the manifest text format (the exact bytes [`Self::parse`]
    /// accepts — serialization and parsing round-trip).
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(64 + 8 * self.ids.len());
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("name: {}\n", self.name));
        out.push_str(&format!("seed: {}\n", self.seed));
        out.push_str(&format!("space: {}\n", self.space));
        out.push_str(&format!("count: {}\n", self.ids.len()));
        out.push_str("---\n");
        for id in &self.ids {
            out.push_str(&format!("{id}\n"));
        }
        out
    }

    /// Streams the manifest's apps lazily, in ID order, generated under
    /// the manifest's pinned seed. Peak memory is one app at a time.
    pub fn apps(&self) -> impl Iterator<Item = GeneratedApp> + '_ {
        let plan = Arc::new(build_plan());
        let seed = self.seed;
        self.ids.iter().map(move |&id| generate_scaled(&plan, seed, id))
    }
}

/// The shipped scenario packs: named subsets selected by pure index
/// predicates over the scale corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioPack {
    /// Apps shipping packed dexes (paper plan's packed apps + the scale
    /// packed bucket).
    PackedDexHeavy,
    /// Apps embedding many third-party SDKs (paper apps with ≥3 libs +
    /// the scale lib-heavy bucket).
    LibHeavy,
    /// Huge or structurally malformed policy HTML.
    PathologicalPolicy,
    /// Enumeration-style sentence lists (paper enumeration renderings +
    /// the scale enumeration bucket).
    AdversarialEnumeration,
    /// Near-duplicate policy families (roots + members).
    NearDuplicateFamilies,
}

impl ScenarioPack {
    /// All shipped packs.
    pub const ALL: [ScenarioPack; 5] = [
        ScenarioPack::PackedDexHeavy,
        ScenarioPack::LibHeavy,
        ScenarioPack::PathologicalPolicy,
        ScenarioPack::AdversarialEnumeration,
        ScenarioPack::NearDuplicateFamilies,
    ];

    /// The pack's manifest name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioPack::PackedDexHeavy => "packed-dex-heavy",
            ScenarioPack::LibHeavy => "lib-heavy",
            ScenarioPack::PathologicalPolicy => "pathological-policy",
            ScenarioPack::AdversarialEnumeration => "adversarial-enumeration",
            ScenarioPack::NearDuplicateFamilies => "near-duplicate-families",
        }
    }

    /// Looks a pack up by its manifest name.
    pub fn by_name(name: &str) -> Option<ScenarioPack> {
        ScenarioPack::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether `index` belongs to this pack. Pure in `(plan, index)`.
    pub fn matches(&self, plan: &[AppSpec], index: usize) -> bool {
        let scenario = scenario_of(index);
        match self {
            ScenarioPack::PackedDexHeavy => {
                if index < APP_COUNT {
                    plan[index].packed
                } else {
                    scenario == Scenario::PackedDex
                }
            }
            ScenarioPack::LibHeavy => {
                if index < APP_COUNT {
                    plan[index].libs.len() >= 3
                } else {
                    scenario == Scenario::LibHeavy
                }
            }
            ScenarioPack::PathologicalPolicy => {
                matches!(scenario, Scenario::HugePolicy | Scenario::MalformedPolicy)
            }
            ScenarioPack::AdversarialEnumeration => {
                if index < APP_COUNT {
                    // The paper plan renders coverage as one enumeration
                    // list on these indices (see `generate_policy`).
                    plan[index].policy_cover.len() >= 2 && index % 5 == 1
                } else {
                    scenario == Scenario::Enumeration
                }
            }
            ScenarioPack::NearDuplicateFamilies => {
                matches!(scenario, Scenario::FamilyRoot | Scenario::NearDuplicate)
            }
        }
    }

    /// Builds the pack's manifest over `0..space` under `seed`.
    pub fn manifest(&self, seed: u64, space: usize) -> DatasetManifest {
        let plan = build_plan();
        let ids = (0..space).filter(|&i| self.matches(&plan, i)).collect();
        DatasetManifest { name: self.name().to_string(), seed, space, ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_parse_round_trip() {
        let manifest = DatasetManifest {
            name: "round-trip".into(),
            seed: 7,
            space: 5000,
            ids: vec![0, 17, 1196, 1197, 4999],
        };
        let parsed = DatasetManifest::parse(&manifest.serialize()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn parse_rejects_defects() {
        let good = DatasetManifest { name: "x".into(), seed: 1, space: 100, ids: vec![1, 2, 3] }
            .serialize();
        assert!(DatasetManifest::parse(&good).is_ok());
        assert!(DatasetManifest::parse(&good.replace("manifest v1", "manifest v9")).is_err());
        assert!(DatasetManifest::parse(&good.replace("count: 3", "count: 4")).is_err());
        assert!(DatasetManifest::parse(&good.replace("\n2\n", "\n200\n")).is_err(), "id > space");
        assert!(DatasetManifest::parse(&good.replace("\n2\n", "\n1\n")).is_err(), "not ascending");
        assert!(DatasetManifest::parse(&good.replace("name: x", "name: X!")).is_err());
        assert!(DatasetManifest::parse(&good.replace("seed: 1\n", "")).is_err());
    }

    #[test]
    fn packs_select_their_scenarios() {
        let space = 3000;
        for pack in ScenarioPack::ALL {
            let manifest = pack.manifest(42, space);
            assert!(!manifest.ids.is_empty(), "{} selected nothing", pack.name());
            assert!(manifest.ids.iter().all(|&i| i < space));
            assert!(manifest.ids.windows(2).all(|w| w[0] < w[1]));
        }
        // Pathological and near-dup packs never touch the paper prefix.
        for pack in [ScenarioPack::PathologicalPolicy, ScenarioPack::NearDuplicateFamilies] {
            assert!(pack.manifest(42, space).ids.iter().all(|&i| i >= APP_COUNT));
        }
        // Packed pack includes paper packed apps.
        assert!(ScenarioPack::PackedDexHeavy
            .manifest(42, space)
            .ids
            .iter()
            .any(|&i| i < APP_COUNT));
    }

    #[test]
    fn pack_apps_generate_under_the_pinned_seed() {
        let manifest = ScenarioPack::PathologicalPolicy.manifest(42, 1400);
        let apps: Vec<GeneratedApp> = manifest.apps().collect();
        assert_eq!(apps.len(), manifest.ids.len());
        for (app, &id) in apps.iter().zip(manifest.ids.iter()) {
            assert_eq!(app.spec.index, id);
        }
    }

    #[test]
    fn pack_names_round_trip() {
        for pack in ScenarioPack::ALL {
            assert_eq!(ScenarioPack::by_name(pack.name()), Some(pack));
        }
        assert_eq!(ScenarioPack::by_name("no-such-pack"), None);
    }
}
