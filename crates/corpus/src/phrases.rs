//! Phrase pools: how each private-information category is verbalized in
//! generated policies and descriptions.

use ppchecker_apk::{Permission, PrivateInfo};
use rand::prelude::*;

/// Policy phrases for an information category (all ESA-match the
/// category's canonical phrase).
pub fn policy_phrases(info: PrivateInfo) -> &'static [&'static str] {
    match info {
        PrivateInfo::Location => {
            &["your location", "your location information", "your gps location"]
        }
        PrivateInfo::DeviceId => {
            &["your device id", "your device identifier", "your unique device identifier"]
        }
        PrivateInfo::PhoneNumber => {
            &["your phone number", "your telephone number", "your mobile number"]
        }
        PrivateInfo::IpAddress => &["your ip address", "your internet protocol address"],
        PrivateInfo::Cookie => &["cookies", "browser cookies", "tracking cookies"],
        PrivateInfo::Account => {
            &["your account information", "your account name", "your user account"]
        }
        PrivateInfo::Calendar => &["your calendar events", "your calendar information"],
        PrivateInfo::Contact => &["your contacts", "your contact list", "your address book"],
        PrivateInfo::Camera => &["your photos", "camera pictures", "your camera images"],
        PrivateInfo::Audio => &["microphone audio", "your voice recordings", "audio recordings"],
        PrivateInfo::AppList => {
            &["your installed apps", "the app list", "your installed applications"]
        }
        PrivateInfo::Sms => &["your sms messages", "your text messages"],
        PrivateInfo::CallLog => &["your call log", "your phone call log"],
        PrivateInfo::BrowsingHistory => &["your browsing history", "your web history"],
        PrivateInfo::Sensor => &["sensor data", "motion sensor data"],
        PrivateInfo::Bluetooth => &["bluetooth identifiers", "bluetooth device addresses"],
        PrivateInfo::Carrier => &["your carrier name", "your network operator"],
        PrivateInfo::Clipboard => &["clipboard contents", "your clipboard data"],
        PrivateInfo::Email => &["your email address", "your e-mail address"],
        PrivateInfo::Name => &["your name", "your full name"],
        PrivateInfo::Birthday => &["your birthday", "your date of birth"],
    }
}

/// Picks one policy phrase for `info`.
pub fn pick_policy_phrase(info: PrivateInfo, rng: &mut StdRng) -> &'static str {
    let pool = policy_phrases(info);
    pool[rng.gen_range(0..pool.len())]
}

/// Description phrases that imply a given permission (tuned to the
/// AutoCog-substitute semantic profiles).
pub fn description_phrases(perm: &Permission) -> &'static [&'static str] {
    match perm {
        Permission::AccessFineLocation => &[
            "turn-by-turn gps navigation on the map",
            "track your runs with precise gps location",
            "accurate gps location for the map view",
        ],
        Permission::AccessCoarseLocation => &[
            "find nearby places in your city",
            "deals around your nearby area",
            "weather for your nearby city",
        ],
        Permission::Camera => &[
            "take beautiful photos with the camera",
            "scan documents using your camera",
            "apply filters to your camera pictures",
        ],
        Permission::ReadContacts => &[
            "synchronizes birthdays with your contacts list",
            "invite friends from your phonebook",
            "sync with your contacts easily",
        ],
        Permission::WriteContacts => &["merge duplicate contacts entries quickly"],
        Permission::GetAccounts => &[
            "sign in with your account",
            "sync data across devices with your account",
            "login with your existing account",
        ],
        Permission::ReadCalendar => {
            &["see your calendar events at a glance", "plan your schedule with calendar events"]
        }
        Permission::RecordAudio => {
            &["record voice memos with the microphone", "voice recording for your notes"]
        }
        Permission::ReadSms => {
            &["organize your sms text messages", "backup text messages automatically"]
        }
        Permission::ReadPhoneState => &["works with your phone number and device"],
        Permission::ReadCallLog => &["review your call history log"],
        Permission::GetTasks => &["manage the running apps list"],
        _ => &[],
    }
}

/// Neutral description boilerplate (implies no permission).
pub const NEUTRAL_DESCRIPTIONS: &[&str] = &[
    "A fun and addictive puzzle game with hundreds of levels.",
    "Beat your high score and challenge the leaderboard.",
    "A beautiful and fast experience loved by millions.",
    "Simple, elegant, and easy to get started.",
    "The best tool for staying productive every day.",
    "Enjoy a smooth and delightful design.",
    "Discover new content updated every week.",
    "Lightweight, reliable, and battery friendly.",
];

/// Collect-style positive sentence templates (`{}` = resource phrase).
pub const COLLECT_TEMPLATES: &[&str] = &[
    "we may collect {}.",
    "we will collect {} to provide our services.",
    "we collect {} when you use the app.",
    "we may gather {}.",
    "we are able to collect {}.",
    "we may receive {}.",
    "we may obtain {}.",
];

/// Use-style templates.
pub const USE_TEMPLATES: &[&str] = &[
    "we may use {}.",
    "we use {} to improve our products.",
    "we may process {}.",
    "we analyze {} to personalize content.",
];

/// Retain-style templates.
pub const RETAIN_TEMPLATES: &[&str] = &[
    "we may store {} on our servers.",
    "we retain {} for a limited period.",
    "we will keep {} as long as necessary.",
    "we may save {}.",
];

/// Disclose-style templates.
pub const DISCLOSE_TEMPLATES: &[&str] = &[
    "we may share {} with our partners.",
    "we may disclose {} to comply with the law.",
    "we will share {} with service providers.",
    "we may transfer {} to our affiliates.",
];

/// Negative templates per category index (0 = collect, 1 = use, 2 =
/// retain, 3 = disclose).
pub const NEGATIVE_TEMPLATES: [&[&str]; 4] = [
    &[
        "we will not collect {}.",
        "we do not collect {}.",
        "we never collect {}.",
        "we are not collecting {}.",
    ],
    &["we do not use {}.", "we will not use {}.", "we never process {}."],
    &["we will not store {}.", "we do not retain {}.", "we never keep {}."],
    &[
        "we will not share {}.",
        "we do not disclose {}.",
        "we will never share {} with anyone.",
        "we do not sell {}.",
    ],
];

/// Filler policy sentences (match no pattern or are filtered out).
pub const POLICY_BOILERPLATE: &[&str] = &[
    "this privacy policy describes our practices.",
    "please read this policy carefully before using the app.",
    "this policy may change from time to time.",
    "your privacy is important to us.",
    "by using the app you agree to this policy.",
    "please contact us with any questions about this policy.",
];

/// Picks a random element of a slice.
pub fn pick<'a>(pool: &[&'a str], rng: &mut StdRng) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_esa::Interpreter;
    use rand::SeedableRng;

    #[test]
    fn every_info_has_policy_phrases() {
        for &info in PrivateInfo::ALL {
            assert!(!policy_phrases(info).is_empty(), "{info} missing phrases");
        }
    }

    #[test]
    fn policy_phrases_match_their_canonical_info() {
        // Every phrase must ESA-match its category, else planted coverage
        // would not count as coverage.
        let esa = Interpreter::shared();
        for &info in PrivateInfo::ALL {
            for phrase in policy_phrases(info) {
                let stripped = phrase.strip_prefix("your ").unwrap_or(phrase);
                assert!(
                    esa.same_thing(info.canonical_phrase(), stripped),
                    "{phrase} does not match {info}"
                );
            }
        }
    }

    #[test]
    fn pick_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(
                pick_policy_phrase(PrivateInfo::Location, &mut a),
                pick_policy_phrase(PrivateInfo::Location, &mut b)
            );
        }
    }
}
