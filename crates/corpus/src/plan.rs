//! The dataset plan: which of the 1,197 apps get which planted problems,
//! calibrated so that running the real PPChecker pipeline over the corpus
//! reproduces every statistic of the paper's evaluation section.
//!
//! Paper targets (§V):
//! - 1,197 apps; 879 (73%) embed at least one of 81 third-party libs
//! - 282 apps (23.6%) with ≥1 problem
//! - incomplete: 222 apps (64 via description — Table III; 180 via code,
//!   +15 detector false positives; 234 missed-info records — Fig. 13 — of
//!   which 32 retained)
//! - incorrect: 2 via description, 4 via code, +2 false positives
//! - inconsistent: Table IV (41 TP + 5 FP collect/use/retain; 39 TP + 4 FP
//!   disclose; recall 11/12 and 12/13 on a 200-app manual sample)

use ppchecker_apk::{Permission, PrivateInfo};
use ppchecker_policy::VerbCategory;

/// Total number of apps in the dataset.
pub const APP_COUNT: usize = 1197;
/// Apps embedding at least one third-party library.
pub const APPS_WITH_LIBS: usize = 879;
/// Size of the manual-inspection sample used for recall (§V-E).
pub const SAMPLE_SIZE: usize = 200;

// ---- index ranges of the planted roles ----
/// Incomplete via description only.
pub const RANGE_DESC_ONLY: std::ops::Range<usize> = 0..42;
/// Incomplete via description and code.
pub const RANGE_BOTH: std::ops::Range<usize> = 42..64;
/// Incomplete via code only.
pub const RANGE_CODE_ONLY: std::ops::Range<usize> = 64..222;
/// Incomplete-via-code detector false positives (extraction-resistant
/// coverage sentences).
pub const RANGE_CODE_FP: std::ops::Range<usize> = 222..237;
/// Incorrect via description + code (collect) — inside [`RANGE_BOTH`].
pub const INCORRECT_DESC_APPS: [usize; 2] = [42, 43];
/// Incorrect via code (retain) — inside [`RANGE_CODE_ONLY`].
pub const INCORRECT_RETAIN_APPS: [usize; 2] = [66, 67];
/// Incorrect detector false positives (context, zoho-style).
pub const INCORRECT_FP_APPS: [usize; 2] = [240, 241];
/// Code-only incomplete apps that are *also* inconsistent (the 15-app
/// overlap that makes the union 282).
pub const RANGE_INCONSISTENT_OVERLAP: std::ops::Range<usize> = 200..215;
/// Fresh inconsistent true positives.
pub const RANGE_INCONSISTENT_FRESH: std::ops::Range<usize> = 250..310;
/// Inconsistency detector false positives (generic "information" vs
/// "personal information").
pub const RANGE_INCONSISTENT_FP: std::ops::Range<usize> = 320..329;
/// Inconsistency false negatives (denial verbs outside the pattern set).
pub const INCONSISTENT_FN_APPS: [usize; 2] = [330, 331];

/// An inconsistency plant: the row it belongs to and whether the detector
/// can see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InconsistencyPlant {
    /// Category of the planted denial.
    pub category: VerbCategory,
    /// `true` → counts in Table IV's collect/use/retain row, `false` →
    /// disclose row.
    pub cur_row: bool,
    /// `false` for false-negative plants (undetectable verb).
    pub detectable: bool,
    /// `false` for detector-false-positive plants (generic resource).
    pub genuine: bool,
}

/// Ground truth for one app.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Truly incomplete via the description channel.
    pub incomplete_via_desc: bool,
    /// Permissions whose description evidence exposes the gap (Table III).
    pub desc_missed_perms: Vec<Permission>,
    /// Truly incomplete via the code channel.
    pub incomplete_via_code: bool,
    /// The true missed-info records `(info, retained)` (Fig. 13).
    pub code_missed: Vec<(PrivateInfo, bool)>,
    /// Flagged via code by the detector but actually covered (FP).
    pub incomplete_code_fp: bool,
    /// Truly incorrect.
    pub incorrect: bool,
    /// Flagged incorrect by the detector but actually fine (FP).
    pub incorrect_fp: bool,
    /// Inconsistency plants (possibly one per Table IV row).
    pub inconsistencies: Vec<InconsistencyPlant>,
    /// Member of the 200-app manual-inspection sample.
    pub in_sample: bool,
}

impl GroundTruth {
    /// Truly incomplete through either channel.
    pub fn incomplete(&self) -> bool {
        self.incomplete_via_desc || self.incomplete_via_code
    }

    /// Truly inconsistent (genuine plant, detectable or not).
    pub fn inconsistent(&self) -> bool {
        self.inconsistencies.iter().any(|p| p.genuine)
    }

    /// Truly has at least one problem (284 in the plan: the 282 the
    /// detector confirms plus the two inconsistency false negatives).
    pub fn has_any_problem(&self) -> bool {
        self.incomplete() || self.incorrect || self.inconsistent()
    }

    /// Truly has a problem the detector can find — the paper's headline
    /// counts these (282 apps, 23.6%).
    pub fn detectable_problem(&self) -> bool {
        self.incomplete()
            || self.incorrect
            || self.inconsistencies.iter().any(|p| p.genuine && p.detectable)
    }

    /// Genuine plant in Table IV's collect/use/retain row.
    pub fn inconsistent_cur(&self) -> bool {
        self.inconsistencies.iter().any(|p| p.genuine && p.cur_row)
    }

    /// Genuine plant in Table IV's disclose row.
    pub fn inconsistent_d(&self) -> bool {
        self.inconsistencies.iter().any(|p| p.genuine && !p.cur_row)
    }
}

/// How the policy document is rendered — the scale corpus's pathological
/// scenarios. The 1,197 calibrated paper apps all use [`PolicyShape::Normal`];
/// the synthesized indices beyond them mix in the other shapes to stress
/// the HTML parser, the sentence splitter, and the tokenizer at corpus
/// scale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PolicyShape {
    /// The calibrated rendering: one `<p>` per sentence, well-formed HTML.
    #[default]
    Normal,
    /// A huge policy: the given number of filler sections appended.
    Huge(usize),
    /// Structurally broken HTML: unclosed and unbalanced tags, truncated
    /// tag at a paragraph boundary, missing `</html>`.
    Malformed,
    /// The given number of adversarial enumeration sentences appended —
    /// semicolon-joined lists, the splitting hazard of the paper's Step 1.
    Enumeration(usize),
}

/// The generator-facing spec for one app.
#[derive(Debug, Clone, Default)]
pub struct AppSpec {
    /// Dataset index.
    pub index: usize,
    /// Information the dex collects (reachably), with a retained flag
    /// (taint path to a log sink).
    pub code_collect: Vec<(PrivateInfo, bool)>,
    /// Information the policy covers with ordinary positive sentences.
    pub policy_cover: Vec<PrivateInfo>,
    /// Information covered only by an extraction-resistant sentence
    /// (plants an incomplete-code false positive).
    pub tricky_cover: Vec<PrivateInfo>,
    /// Negative policy sentences: `(category, info, detectable verb?)`.
    pub policy_deny: Vec<(VerbCategory, PrivateInfo, bool)>,
    /// Denials of a generic "information" resource (inconsistency FP bait):
    /// one category each.
    pub policy_deny_generic: Vec<VerbCategory>,
    /// Permissions implied by the description.
    pub desc_perms: Vec<Permission>,
    /// Embedded third-party library ids.
    pub libs: Vec<&'static str>,
    /// Whether the policy carries a third-party disclaimer.
    pub disclaimer: bool,
    /// Zoho-style context trap: the policy positively covers the info AND
    /// negatively mentions it in a different context.
    pub context_trap: Option<PrivateInfo>,
    /// Ship the dex packed (exercises the DexHunter substitute).
    pub packed: bool,
    /// Policy rendering shape (always [`PolicyShape::Normal`] in the
    /// calibrated paper corpus).
    pub policy_shape: PolicyShape,
    /// When set, this app's policy body is generated from the named
    /// family-root index's random stream plus one differentiating
    /// sentence — a near-duplicate policy family member.
    pub near_dup_of: Option<usize>,
    /// The ground truth.
    pub truth: GroundTruth,
}

/// The Fig. 13 distribution of missed-info records for the code-only range
/// `(info, total records, retained records)`; 212 records over 158 apps.
/// The 22 both-channel apps contribute 10 location + 12 contact records,
/// making the paper's 234 total (32 retained).
const CODE_ONLY_DISTRIBUTION: &[(PrivateInfo, usize, usize)] = &[
    (PrivateInfo::Location, 52, 8),
    (PrivateInfo::DeviceId, 34, 6),
    (PrivateInfo::Account, 27, 5),
    (PrivateInfo::PhoneNumber, 18, 3),
    (PrivateInfo::Contact, 16, 4), // +2 retained on the incorrect apps = 6
    (PrivateInfo::Camera, 15, 0),
    (PrivateInfo::AppList, 12, 4),
    (PrivateInfo::Calendar, 10, 0),
    (PrivateInfo::Audio, 8, 0),
    (PrivateInfo::Sms, 8, 0),
    (PrivateInfo::IpAddress, 6, 0),
    (PrivateInfo::Cookie, 4, 0),
];

/// Table III permission plan over the description-detected apps.
fn desc_permission_for(index: usize) -> Vec<Permission> {
    use Permission::*;
    match index {
        0 => vec![AccessFineLocation, Camera], // the one two-permission app
        1..=14 => vec![AccessCoarseLocation],  // 14 apps
        15..=22 => vec![AccessFineLocation],   // 8 apps (9 with app 0)
        23..=27 => vec![Camera],               // 5 apps (6 with app 0)
        28..=38 => vec![GetAccounts],          // 11 apps
        39..=40 => vec![ReadCalendar],         // 2 apps
        41 => vec![WriteContacts],             // 1 app
        42..=53 => vec![ReadContacts],         // 12 apps (both-channel)
        54..=63 => vec![AccessFineLocation],   // 10 apps (both-channel)
        _ => vec![],
    }
}

/// Builds the complete 1,197-app plan.
pub fn build_plan() -> Vec<AppSpec> {
    let mut specs: Vec<AppSpec> =
        (0..APP_COUNT).map(|index| AppSpec { index, ..AppSpec::default() }).collect();

    plan_incomplete(&mut specs);
    plan_incorrect(&mut specs);
    plan_inconsistent(&mut specs);
    plan_libs_and_fillers(&mut specs);
    plan_sample(&mut specs);
    specs
}

fn plan_incomplete(specs: &mut [AppSpec]) {
    // Description-detected apps (Table III): manifest permission present,
    // description implies the info, the policy omits it. The
    // description-only range has no offending code.
    for i in RANGE_DESC_ONLY.chain(RANGE_BOTH) {
        let perms = desc_permission_for(i);
        let spec = &mut specs[i];
        spec.desc_perms = perms.clone();
        spec.truth.incomplete_via_desc = true;
        spec.truth.desc_missed_perms = perms.clone();
        // Cover some unrelated information so the policy is non-trivial.
        spec.policy_cover = vec![PrivateInfo::Email, PrivateInfo::Cookie];
        // Both-channel apps also collect the implied info in code.
        if RANGE_BOTH.contains(&i) {
            let info = *PrivateInfo::from_permission(&perms[0])
                .first()
                .expect("desc permission maps to info");
            spec.code_collect = vec![(info, false)];
            spec.truth.incomplete_via_code = true;
            spec.truth.code_missed = vec![(info, false)];
        }
    }
    // The policy of the description-detected apps must not cover cookie by
    // coincidence when the app is a camera app etc. — covered infos were
    // chosen to be disjoint from every Table III info.

    // Code-only range: distribute the Fig. 13 records.
    let mut records: Vec<(PrivateInfo, bool)> = Vec::new();
    for &(info, total, retained) in CODE_ONLY_DISTRIBUTION {
        for k in 0..total {
            records.push((info, k < retained));
        }
    }
    // The two retain-incorrect apps get their fixed contact records and are
    // handled in plan_incorrect; exclude their records here.
    let apps: Vec<usize> = RANGE_CODE_ONLY.filter(|i| !INCORRECT_RETAIN_APPS.contains(i)).collect();
    // 212 records over 156 apps: the first 56 apps take two records each
    // (paired from distant halves so the two infos differ).
    let doubles = records.len() - apps.len();
    let half = records.len() / 2;
    let mut assigned: Vec<Vec<(PrivateInfo, bool)>> = Vec::with_capacity(apps.len());
    for k in 0..doubles {
        assigned.push(vec![records[k], records[half + k]]);
    }
    let mut rest: Vec<(PrivateInfo, bool)> =
        records[doubles..half].iter().chain(records[half + doubles..].iter()).copied().collect();
    for _ in doubles..apps.len() {
        assigned.push(vec![rest.pop().expect("enough records")]);
    }
    for (app_idx, recs) in apps.into_iter().zip(assigned) {
        let spec = &mut specs[app_idx];
        spec.code_collect = recs.clone();
        spec.truth.incomplete_via_code = true;
        spec.truth.code_missed = recs;
        spec.policy_cover = vec![PrivateInfo::Email];
    }

    // Detector false positives: the policy covers the collected info, but
    // only in an extraction-resistant sentence.
    for i in RANGE_CODE_FP {
        let spec = &mut specs[i];
        spec.code_collect = vec![(PrivateInfo::DeviceId, false)];
        spec.tricky_cover = vec![PrivateInfo::DeviceId];
        spec.policy_cover = vec![PrivateInfo::Email];
        spec.truth.incomplete_code_fp = true;
    }
}

fn plan_incorrect(specs: &mut [AppSpec]) {
    // The two description+code apps (birthdaylist-style): deny collecting
    // contacts while the description implies contacts and the code queries
    // the contacts provider. They are already both-channel incomplete.
    for &i in &INCORRECT_DESC_APPS {
        let spec = &mut specs[i];
        spec.policy_deny = vec![(VerbCategory::Collect, PrivateInfo::Contact, true)];
        spec.truth.incorrect = true;
    }
    // The two retain apps (easyxapp-style): deny storing contacts while a
    // taint path logs them. Also counted as code-incomplete (contact is
    // never positively covered).
    for &i in &INCORRECT_RETAIN_APPS {
        let spec = &mut specs[i];
        spec.code_collect = vec![(PrivateInfo::Contact, true)];
        spec.policy_cover = vec![PrivateInfo::Email];
        spec.policy_deny = vec![(VerbCategory::Retain, PrivateInfo::Contact, true)];
        spec.truth.incomplete_via_code = true;
        spec.truth.code_missed = vec![(PrivateInfo::Contact, true)];
        spec.truth.incorrect = true;
    }
    // Context-trap false positives (zoho-style): the policy covers account
    // collection positively AND has a negative sentence about account
    // contents in an advertising context; the code reads accounts.
    for &i in &INCORRECT_FP_APPS {
        let spec = &mut specs[i];
        spec.code_collect = vec![(PrivateInfo::Account, false)];
        spec.policy_cover = vec![PrivateInfo::Account, PrivateInfo::Email];
        spec.context_trap = Some(PrivateInfo::Account);
        spec.truth.incorrect_fp = true;
    }
}

/// Per-row inconsistency plants: (category, cur_row) cycles.
const CUR_CATEGORIES: [VerbCategory; 3] =
    [VerbCategory::Collect, VerbCategory::Use, VerbCategory::Retain];

fn plan_inconsistent(specs: &mut [AppSpec]) {
    // 15 overlap apps inside the code-only incomplete range: 8 CUR + 7 D.
    let overlap: Vec<usize> = RANGE_INCONSISTENT_OVERLAP.collect();
    // 60 fresh apps: 28 CUR-only, 27 D-only, 5 both rows.
    let fresh: Vec<usize> = RANGE_INCONSISTENT_FRESH.collect();

    let mut cur_count = 0usize;
    let mut plant_cur = |spec: &mut AppSpec| {
        let mut category = CUR_CATEGORIES[cur_count % 3];
        cur_count += 1;
        // Ad libs declare collect location, use device id, retain device id.
        let pick = |category: VerbCategory| match category {
            VerbCategory::Collect => (PrivateInfo::Location, "unity3d"),
            VerbCategory::Use | VerbCategory::Retain => (PrivateInfo::DeviceId, "admob"),
            VerbCategory::Disclose => unreachable!(),
        };
        // The denied behaviour must not be one the app's own code performs
        // (that would make the app *incorrect*, not merely inconsistent).
        let mut choice = pick(category);
        if spec.code_collect.iter().any(|(i, _)| *i == choice.0) {
            category = if category == VerbCategory::Collect {
                VerbCategory::Use
            } else {
                VerbCategory::Collect
            };
            choice = pick(category);
        }
        let (info, lib) = choice;
        spec.policy_deny.push((category, info, true));
        if !spec.libs.contains(&lib) {
            spec.libs.push(lib);
        }
        spec.truth.inconsistencies.push(InconsistencyPlant {
            category,
            cur_row: true,
            detectable: true,
            genuine: true,
        });
    };
    let plant_d = |spec: &mut AppSpec| {
        // Avoid denying a disclosure of something the app itself retains.
        let info = if spec
            .code_collect
            .iter()
            .any(|(i, retained)| *i == PrivateInfo::DeviceId && *retained)
        {
            PrivateInfo::Location
        } else {
            PrivateInfo::DeviceId
        };
        spec.policy_deny.push((VerbCategory::Disclose, info, true));
        if !spec.libs.contains(&"admob") {
            spec.libs.push("admob");
        }
        spec.truth.inconsistencies.push(InconsistencyPlant {
            category: VerbCategory::Disclose,
            cur_row: false,
            detectable: true,
            genuine: true,
        });
    };

    for (k, &i) in overlap.iter().enumerate() {
        if k < 8 {
            plant_cur(&mut specs[i]);
        } else {
            plant_d(&mut specs[i]);
        }
    }
    for (k, &i) in fresh.iter().enumerate() {
        match k {
            0..=27 => plant_cur(&mut specs[i]),
            28..=54 => plant_d(&mut specs[i]),
            _ => {
                // 5 apps in both rows.
                plant_cur(&mut specs[i]);
                plant_d(&mut specs[i]);
            }
        }
        if specs[i].policy_cover.is_empty() {
            specs[i].policy_cover = vec![PrivateInfo::Email, PrivateInfo::Cookie];
        }
    }

    // Detector false positives: generic "information" denials against the
    // libs' "personal information" sentences. 5 CUR + 4 D.
    for (k, i) in RANGE_INCONSISTENT_FP.enumerate() {
        let spec = &mut specs[i];
        let cur_row = k < 5;
        let category = if cur_row { VerbCategory::Collect } else { VerbCategory::Disclose };
        spec.policy_deny_generic.push(category);
        spec.libs.push("admob");
        spec.policy_cover = vec![PrivateInfo::Email];
        spec.truth.inconsistencies.push(InconsistencyPlant {
            category,
            cur_row,
            detectable: true,
            genuine: false,
        });
    }

    // False negatives: genuine conflicts phrased with verbs outside the
    // pattern set ("refrain from collecting", "display").
    for (k, &i) in INCONSISTENT_FN_APPS.iter().enumerate() {
        let spec = &mut specs[i];
        let cur_row = k == 0;
        let (category, info, lib) = if cur_row {
            (VerbCategory::Collect, PrivateInfo::Location, "unity3d")
        } else {
            (VerbCategory::Disclose, PrivateInfo::DeviceId, "admob")
        };
        spec.policy_deny.push((category, info, false));
        spec.libs.push(lib);
        spec.policy_cover = vec![PrivateInfo::Email];
        spec.truth.inconsistencies.push(InconsistencyPlant {
            category,
            cur_row,
            detectable: false,
            genuine: true,
        });
    }
}

fn plan_libs_and_fillers(specs: &mut [AppSpec]) {
    use ppchecker_static::KNOWN_LIBS;
    // Filler behaviour for unplanted (clean) apps, plus lib assignment up
    // to exactly 879 lib-bearing apps.
    let mut with_libs = specs.iter().filter(|s| !s.libs.is_empty()).count();
    let clean_infos = [
        PrivateInfo::Location,
        PrivateInfo::DeviceId,
        PrivateInfo::Camera,
        PrivateInfo::Account,
        PrivateInfo::Contact,
        PrivateInfo::Calendar,
    ];
    // Harmless libs for fillers (declare nothing the fillers deny).
    let filler_libs: Vec<&'static str> = KNOWN_LIBS.iter().map(|l| l.id).collect();
    let mut lib_cursor = 0usize;

    for i in 0..specs.len() {
        let is_planted = specs[i].truth.incomplete()
            || specs[i].truth.incorrect
            || specs[i].truth.incorrect_fp
            || specs[i].truth.incomplete_code_fp
            || !specs[i].truth.inconsistencies.is_empty();
        if !is_planted && specs[i].policy_cover.is_empty() {
            // Clean app: collect 1–2 infos, cover them all; a seeded
            // subset also advertises them in the description.
            let a = clean_infos[i % clean_infos.len()];
            let b = clean_infos[(i / 7) % clean_infos.len()];
            let mut cover = vec![a];
            if b != a {
                cover.push(b);
            }
            specs[i].code_collect = vec![(a, false)];
            specs[i].policy_cover = cover;
            specs[i].disclaimer = i % 3 == 0;
            // Exercise the unpacker on a slice of the corpus.
            specs[i].packed = i % 101 == 0;
        }
        // Assign libs to reach exactly APPS_WITH_LIBS.
        if specs[i].libs.is_empty() && with_libs < APPS_WITH_LIBS {
            specs[i].libs.push(filler_libs[lib_cursor % filler_libs.len()]);
            lib_cursor += 1;
            with_libs += 1;
        }
    }
}

fn plan_sample(specs: &mut [AppSpec]) {
    // The 200-app manual-inspection sample: 11 detectable CUR plants, 12
    // detectable D plants, both FN apps, and clean filler.
    let mut sample: Vec<usize> = Vec::with_capacity(SAMPLE_SIZE);
    let mut cur_needed = 11;
    let mut d_needed = 12;
    for i in RANGE_INCONSISTENT_FRESH {
        let t = &specs[i].truth;
        if cur_needed > 0 && t.inconsistent_cur() && !t.inconsistent_d() {
            sample.push(i);
            cur_needed -= 1;
        } else if d_needed > 0 && t.inconsistent_d() && !t.inconsistent_cur() {
            sample.push(i);
            d_needed -= 1;
        }
    }
    sample.extend_from_slice(&INCONSISTENT_FN_APPS);
    let mut filler = 400usize;
    while sample.len() < SAMPLE_SIZE {
        if !specs[filler].truth.inconsistent() {
            sample.push(filler);
        }
        filler += 1;
    }
    for &i in &sample {
        specs[i].truth.in_sample = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_has_1197_apps() {
        assert_eq!(build_plan().len(), APP_COUNT);
    }

    #[test]
    fn headline_union_is_282() {
        let plan = build_plan();
        let detectable = plan.iter().filter(|s| s.truth.detectable_problem()).count();
        assert_eq!(detectable, 282);
        // Including the two planted false negatives: 284 true problems.
        let with_problem = plan.iter().filter(|s| s.truth.has_any_problem()).count();
        assert_eq!(with_problem, 284);
    }

    #[test]
    fn incomplete_counts() {
        let plan = build_plan();
        assert_eq!(plan.iter().filter(|s| s.truth.incomplete()).count(), 222);
        assert_eq!(plan.iter().filter(|s| s.truth.incomplete_via_desc).count(), 64);
        assert_eq!(plan.iter().filter(|s| s.truth.incomplete_via_code).count(), 180);
        let records: usize = plan.iter().map(|s| s.truth.code_missed.len()).sum();
        assert_eq!(records, 234);
        let retained: usize =
            plan.iter().flat_map(|s| s.truth.code_missed.iter()).filter(|(_, r)| *r).count();
        assert_eq!(retained, 32);
    }

    #[test]
    fn table3_permission_counts() {
        use Permission::*;
        let plan = build_plan();
        let count = |p: Permission| {
            plan.iter().flat_map(|s| s.truth.desc_missed_perms.iter()).filter(|q| **q == p).count()
        };
        assert_eq!(count(AccessCoarseLocation), 14);
        assert_eq!(count(AccessFineLocation), 19);
        assert_eq!(count(Camera), 6);
        assert_eq!(count(GetAccounts), 11);
        assert_eq!(count(ReadCalendar), 2);
        assert_eq!(count(ReadContacts), 12);
        assert_eq!(count(WriteContacts), 1);
    }

    #[test]
    fn incorrect_counts() {
        let plan = build_plan();
        assert_eq!(plan.iter().filter(|s| s.truth.incorrect).count(), 4);
        assert_eq!(plan.iter().filter(|s| s.truth.incorrect_fp).count(), 2);
    }

    #[test]
    fn table4_truth_counts() {
        let plan = build_plan();
        let cur_tp = plan
            .iter()
            .filter(|s| {
                s.truth.inconsistencies.iter().any(|p| p.genuine && p.cur_row && p.detectable)
            })
            .count();
        let d_tp = plan
            .iter()
            .filter(|s| {
                s.truth.inconsistencies.iter().any(|p| p.genuine && !p.cur_row && p.detectable)
            })
            .count();
        assert_eq!(cur_tp, 41);
        assert_eq!(d_tp, 39);
        let truly_inconsistent = plan.iter().filter(|s| s.truth.inconsistent()).count();
        assert_eq!(truly_inconsistent, 77); // 75 detectable + 2 FN apps
        let fp_cur = plan
            .iter()
            .filter(|s| s.truth.inconsistencies.iter().any(|p| !p.genuine && p.cur_row))
            .count();
        assert_eq!(fp_cur, 5);
    }

    #[test]
    fn lib_assignment_hits_879() {
        let plan = build_plan();
        assert_eq!(plan.iter().filter(|s| !s.libs.is_empty()).count(), APPS_WITH_LIBS);
    }

    #[test]
    fn sample_contains_the_recall_targets() {
        let plan = build_plan();
        let sample: Vec<&AppSpec> = plan.iter().filter(|s| s.truth.in_sample).collect();
        assert_eq!(sample.len(), SAMPLE_SIZE);
        let cur_truth = sample.iter().filter(|s| s.truth.inconsistent_cur()).count();
        let d_truth = sample.iter().filter(|s| s.truth.inconsistent_d()).count();
        assert_eq!(cur_truth, 12); // 11 detectable + 1 FN
        assert_eq!(d_truth, 13); // 12 detectable + 1 FN
    }

    #[test]
    fn double_record_apps_have_distinct_infos() {
        let plan = build_plan();
        for s in &plan {
            if s.truth.code_missed.len() == 2 {
                assert_ne!(s.truth.code_missed[0].0, s.truth.code_missed[1].0, "app {}", s.index);
            }
        }
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    /// Denied behaviours must never be behaviours the app's own code
    /// performs (that would silently turn inconsistent plants into
    /// incorrect findings).
    #[test]
    fn denials_never_collide_with_own_code() {
        for spec in build_plan() {
            if spec.truth.incorrect {
                continue; // incorrect apps collide on purpose
            }
            for (category, info, _) in &spec.policy_deny {
                let collide = spec.code_collect.iter().any(|(i, retained)| {
                    i == info
                        && match category {
                            VerbCategory::Collect | VerbCategory::Use => true,
                            VerbCategory::Retain | VerbCategory::Disclose => *retained,
                        }
                });
                assert!(
                    !collide,
                    "app {} denies {category:?} {info:?} but its code performs it",
                    spec.index
                );
            }
        }
    }

    /// Every inconsistency plant embeds a lib whose policy actually
    /// declares the denied behaviour (else it would be a false negative by
    /// construction).
    #[test]
    fn inconsistency_plants_have_matching_libs() {
        use crate::libs::declares;
        use ppchecker_static::KNOWN_LIBS;
        for spec in build_plan() {
            for plant in &spec.truth.inconsistencies {
                if !plant.genuine || !plant.detectable {
                    continue;
                }
                let denied = spec
                    .policy_deny
                    .iter()
                    .find(|(c, _, d)| *c == plant.category && *d)
                    .map(|(_, info, _)| *info);
                let Some(info) = denied else { panic!("app {}: plant without denial", spec.index) };
                let satisfied = spec.libs.iter().any(|id| {
                    KNOWN_LIBS
                        .iter()
                        .find(|l| l.id == *id)
                        .is_some_and(|l| declares(l.kind, plant.category, info))
                });
                assert!(satisfied, "app {}: no embedded lib declares {:?}", spec.index, plant);
            }
        }
    }

    /// Code-FP apps must cover their collected info only via the
    /// extraction-resistant sentence.
    #[test]
    fn code_fp_apps_use_tricky_coverage() {
        for spec in build_plan() {
            if spec.truth.incomplete_code_fp {
                assert!(!spec.tricky_cover.is_empty(), "app {}", spec.index);
                for (info, _) in &spec.code_collect {
                    assert!(spec.tricky_cover.contains(info));
                    assert!(!spec.policy_cover.contains(info));
                }
            }
        }
    }

    /// Every description-missed permission actually maps to information.
    #[test]
    fn desc_plants_map_to_info() {
        for spec in build_plan() {
            for p in &spec.truth.desc_missed_perms {
                assert!(
                    !PrivateInfo::from_permission(p).is_empty(),
                    "app {}: {p} maps to no info",
                    spec.index
                );
            }
        }
    }
}
