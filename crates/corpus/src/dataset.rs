//! Dataset assembly: the calibrated 1,197-app corpus plus the lib-policy
//! corpus, and a ready-to-run [`PPChecker`] configured with all 81 lib
//! policies.

use crate::generate::generate_app;
use crate::libs::{lib_policies, LibPolicy};
use crate::plan::{build_plan, AppSpec};
use ppchecker_core::{AppInput, PPChecker};

/// One generated app with its spec (which carries the ground truth).
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// PPChecker's input bundle.
    pub input: AppInput,
    /// The generator spec, including [`crate::plan::GroundTruth`].
    pub spec: AppSpec,
}

/// The full synthetic corpus.
#[derive(Debug)]
pub struct Dataset {
    /// The 1,197 apps.
    pub apps: Vec<GeneratedApp>,
    /// The 81 third-party lib policies.
    pub lib_policies: Vec<LibPolicy>,
}

impl Dataset {
    /// Builds a [`PPChecker`] with every lib policy registered.
    pub fn make_checker(&self) -> PPChecker {
        let mut checker = PPChecker::new();
        for lp in &self.lib_policies {
            checker.register_lib_policy(lp.lib.id, &lp.html);
        }
        checker
    }

    /// The apps marked as the 200-app manual-inspection sample.
    pub fn sample(&self) -> impl Iterator<Item = &GeneratedApp> {
        self.apps.iter().filter(|a| a.spec.truth.in_sample)
    }

    /// Iterates the app inputs in corpus order without copying them.
    pub fn iter_apps(&self) -> impl Iterator<Item = &AppInput> {
        self.apps.iter().map(|a| &a.input)
    }
}

/// Streams the paper corpus lazily: the plan (small specs) is built up
/// front, but each [`GeneratedApp`] — policy HTML, description, dex — is
/// generated only when the consumer pulls it, and can be dropped as soon
/// as it is processed. Feeding this into the engine's bounded scheduler
/// keeps peak memory at `O(jobs)` apps instead of all 1,197.
pub fn stream_apps(seed: u64) -> impl Iterator<Item = GeneratedApp> {
    build_plan()
        .into_iter()
        .map(move |spec| GeneratedApp { input: generate_app(&spec, seed), spec })
}

/// Generates the paper's dataset: 1,197 apps calibrated to §V, seeded for
/// reproducibility.
pub fn paper_dataset(seed: u64) -> Dataset {
    let plan = build_plan();
    let apps = plan
        .into_iter()
        .map(|spec| GeneratedApp { input: generate_app(&spec, seed), spec })
        .collect();
    Dataset { apps, lib_policies: lib_policies() }
}

/// A small slice of the dataset (the first `n` apps of the same plan) for
/// fast tests and benches.
pub fn small_dataset(seed: u64, n: usize) -> Dataset {
    let plan = build_plan();
    let apps = plan
        .into_iter()
        .take(n)
        .map(|spec| GeneratedApp { input: generate_app(&spec, seed), spec })
        .collect();
    Dataset { apps, lib_policies: lib_policies() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_generates() {
        let d = small_dataset(42, 10);
        assert_eq!(d.apps.len(), 10);
        assert_eq!(d.lib_policies.len(), 81);
        for a in &d.apps {
            assert!(!a.input.policy_html.is_empty());
            assert!(!a.input.description.is_empty());
        }
    }

    #[test]
    fn checker_registers_all_lib_policies() {
        let d = small_dataset(42, 1);
        let checker = d.make_checker();
        assert_eq!(checker.lib_policy_count(), 81);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = small_dataset(7, 5);
        let b = small_dataset(7, 5);
        for (x, y) in a.apps.iter().zip(b.apps.iter()) {
            assert_eq!(x.input.policy_html, y.input.policy_html);
        }
    }
}
