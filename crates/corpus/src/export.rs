//! Corpus export: write generated apps to disk in the file formats the
//! `ppchecker` CLI consumes (policy HTML, description text, manifest text,
//! textual or packed dex), so the corpus doubles as a file-based test bed.

use crate::dataset::{Dataset, GeneratedApp};
use ppchecker_apk::packer;
use std::fs;
use std::io;
use std::path::Path;

/// Writes one app into `dir` (created if needed):
/// `policy.html`, `description.txt`, `manifest.txt`, and `app.dex`
/// (or `app.pkdx` when the APK ships packed).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_app(dir: &Path, app: &GeneratedApp) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("policy.html"), &app.input.policy_html)?;
    fs::write(dir.join("description.txt"), &app.input.description)?;
    fs::write(dir.join("manifest.txt"), app.input.apk.manifest.to_text())?;
    match app.input.apk.plain_dex() {
        Some(dex) => fs::write(dir.join("app.dex"), packer::serialize(dex))?,
        None => {
            // Already packed: re-pack deterministically from the recovered
            // dex so the bytes on disk are self-contained.
            let dex = app
                .input
                .apk
                .dex()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            fs::write(dir.join("app.pkdx"), packer::pack(&dex, 0xA5))?;
        }
    }
    Ok(())
}

/// Exports the first `n` apps of a dataset into `dir/app-NNNN/`
/// subdirectories plus the lib policies into `dir/libs/<id>.html`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_dataset(dir: &Path, dataset: &Dataset, n: usize) -> io::Result<()> {
    for app in dataset.apps.iter().take(n) {
        export_app(&dir.join(format!("app-{:04}", app.spec.index)), app)?;
    }
    let libs_dir = dir.join("libs");
    fs::create_dir_all(&libs_dir)?;
    for lp in &dataset.lib_policies {
        fs::write(libs_dir.join(format!("{}.html", lp.lib.id)), &lp.html)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::small_dataset;
    use ppchecker_apk::{Apk, Manifest};
    use ppchecker_core::{AppInput, PPChecker};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppchecker-export-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exported_app_reloads_and_checks_identically() {
        let dataset = small_dataset(42, 70);
        let dir = temp_dir("roundtrip");
        // App 66 is one of the planted incorrect apps — a strong signal.
        let app = &dataset.apps[66];
        export_app(&dir, app).unwrap();

        // Reload from the files like the CLI does.
        let manifest =
            Manifest::from_text(&fs::read_to_string(dir.join("manifest.txt")).unwrap()).unwrap();
        let dex = packer::deserialize(&fs::read_to_string(dir.join("app.dex")).unwrap()).unwrap();
        let reloaded = AppInput {
            package: manifest.package.clone(),
            policy_html: fs::read_to_string(dir.join("policy.html")).unwrap(),
            description: fs::read_to_string(dir.join("description.txt")).unwrap(),
            apk: Apk::new(manifest, dex),
            labels: Vec::new(),
        };

        let checker = dataset.make_checker();
        let original = checker.check_app(&app.input).unwrap();
        let again = PPChecker::new().check_app(&reloaded).unwrap();
        assert_eq!(original.is_incomplete(), again.is_incomplete());
        assert_eq!(original.is_incorrect(), again.is_incorrect());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_dataset_writes_libs() {
        let dataset = small_dataset(42, 3);
        let dir = temp_dir("dataset");
        export_dataset(&dir, &dataset, 3).unwrap();
        assert!(dir.join("app-0000/policy.html").exists());
        assert!(dir.join("app-0002/manifest.txt").exists());
        assert!(dir.join("libs/admob.html").exists());
        assert_eq!(fs::read_dir(dir.join("libs")).unwrap().count(), 81);
        let _ = fs::remove_dir_all(&dir);
    }
}
