//! Turns an [`AppSpec`] into a concrete [`AppInput`]: English policy HTML,
//! English description, and a simulated APK whose dex actually performs
//! the planted behaviours.

use crate::phrases::{
    description_phrases, pick, pick_policy_phrase, COLLECT_TEMPLATES, DISCLOSE_TEMPLATES,
    NEGATIVE_TEMPLATES, NEUTRAL_DESCRIPTIONS, POLICY_BOILERPLATE, RETAIN_TEMPLATES, USE_TEMPLATES,
};
use crate::plan::{AppSpec, PolicyShape};
use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest, Permission, PrivateInfo};
use ppchecker_core::AppInput;
use ppchecker_policy::VerbCategory;
use ppchecker_static::KNOWN_LIBS;
use rand::prelude::*;
use rand::rngs::StdRng;

/// The per-app RNG seed: a pure function of `(seed, index)`, which is
/// what makes generation shardable — any thread can generate any index
/// and produce the same bytes.
pub fn app_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Generates the app for a spec, deterministically under `seed`.
pub fn generate_app(spec: &AppSpec, seed: u64) -> AppInput {
    let mut rng = StdRng::seed_from_u64(app_seed(seed, spec.index));
    let package = format!("com.app{:04}.{}", spec.index, flavor(spec.index));
    let policy_html = match spec.near_dup_of {
        // Near-duplicate family member: the body comes from the family
        // root's random stream (so sibling policies are near-identical
        // text), differentiated by one revision sentence keyed to this
        // app's own index.
        Some(root) => {
            let mut root_rng = StdRng::seed_from_u64(app_seed(seed, root));
            let mut html = generate_policy(spec, &mut root_rng);
            let closer = "</body></html>";
            if let Some(stripped) = html.strip_suffix(closer) {
                html = format!(
                    "{stripped}<p>this revision {} of the policy applies to release channel \
                     {}.</p>{closer}",
                    spec.index,
                    spec.index % 7
                );
            }
            html
        }
        None => generate_policy(spec, &mut rng),
    };
    AppInput {
        policy_html,
        description: generate_description(spec, &mut rng),
        apk: generate_apk(spec, &package, &mut rng),
        package,
        labels: Vec::new(),
    }
}

fn flavor(index: usize) -> &'static str {
    const FLAVORS: &[&str] = &[
        "weather", "game", "notes", "music", "fitness", "travel", "news", "photo", "chat", "shop",
    ];
    FLAVORS[index % FLAVORS.len()]
}

/// Builds the policy HTML for a spec.
pub fn generate_policy(spec: &AppSpec, rng: &mut StdRng) -> String {
    // Near-duplicate family members render exactly as their root would:
    // every index-dependent branch below keys off the root's index, so
    // sibling policies differ only by the appended revision sentence.
    let policy_index = spec.near_dup_of.unwrap_or(spec.index);
    let mut sentences: Vec<String> = Vec::new();
    sentences.push(pick(POLICY_BOILERPLATE, rng).to_string());

    // Positive coverage. Some policies render it as one enumeration list
    // (the NLTK-splitting hazard the paper's Step 1 repairs); the rest as
    // one sentence per item, cycling the four behaviour categories.
    if spec.policy_cover.len() >= 2 && policy_index % 5 == 1 {
        let items: Vec<&str> =
            spec.policy_cover.iter().map(|&info| pick_policy_phrase(info, rng)).collect();
        sentences.push(format!("we will collect the following information: {}.", items.join("; ")));
    } else {
        for (k, &info) in spec.policy_cover.iter().enumerate() {
            let phrase = pick_policy_phrase(info, rng);
            let template = match k % 4 {
                0 => pick(COLLECT_TEMPLATES, rng),
                1 => pick(USE_TEMPLATES, rng),
                2 => pick(RETAIN_TEMPLATES, rng),
                _ => pick(DISCLOSE_TEMPLATES, rng),
            };
            sentences.push(template.replace("{}", phrase));
        }
    }

    // Extraction-resistant coverage (plants incomplete-code FPs): the
    // information appears only in a leading adjunct the element extractor
    // cannot reach (§V-C's false-positive discussion).
    for &info in &spec.tricky_cover {
        let phrase = pick_policy_phrase(info, rng);
        sentences.push(format!(
            "in addition to {phrase}, we may also collect the name you have associated with \
             your device."
        ));
    }

    // Context trap (zoho-style, §V-D): a negative sentence about a context
    // the app's positive sentence elsewhere already covers.
    if let Some(info) = spec.context_trap {
        let phrase = pick_policy_phrase(info, rng);
        sentences.push(format!(
            "we also do not process the contents of {phrase} to serve targeted advertisements."
        ));
    }

    // Denials.
    for &(category, info, detectable) in &spec.policy_deny {
        let phrase = pick_policy_phrase(info, rng);
        if detectable {
            let idx = match category {
                VerbCategory::Collect => 0,
                VerbCategory::Use => 1,
                VerbCategory::Retain => 2,
                VerbCategory::Disclose => 3,
            };
            sentences.push(pick(NEGATIVE_TEMPLATES[idx], rng).replace("{}", phrase));
        } else {
            // False-negative plants: denial verbs outside the pattern set
            // ("display" per §V-E).
            let s = match category {
                VerbCategory::Collect | VerbCategory::Use | VerbCategory::Retain => {
                    format!("we refrain from collecting {phrase}.")
                }
                VerbCategory::Disclose => format!("we will not display {phrase}."),
            };
            sentences.push(s);
        }
    }

    // Generic-information denials (inconsistency FP bait, §V-E's
    // StaffMark ↔ AdMob case).
    for category in &spec.policy_deny_generic {
        let s = match category {
            VerbCategory::Collect => "we do not collect information about you.",
            VerbCategory::Use => "we do not use information about you.",
            VerbCategory::Retain => "we do not store information about you.",
            VerbCategory::Disclose => "we do not transmit that information over the internet.",
        };
        sentences.push(s.to_string());
    }

    if spec.disclaimer {
        sentences.push(
            "we are not responsible for the privacy practices of those third party sites."
                .to_string(),
        );
    }
    sentences.push(pick(POLICY_BOILERPLATE, rng).to_string());

    // Scale-corpus pathological shapes (always Normal in the calibrated
    // paper plan, so the 1,197-app byte stream is untouched).
    match spec.policy_shape {
        PolicyShape::Normal | PolicyShape::Malformed => {}
        PolicyShape::Huge(sections) => {
            for k in 0..sections {
                sentences.push(format!(
                    "section {}: {} {}",
                    k + 1,
                    pick(POLICY_BOILERPLATE, rng),
                    pick(POLICY_BOILERPLATE, rng),
                ));
            }
        }
        PolicyShape::Enumeration(count) => {
            const ENUM_POOL: &[PrivateInfo] = &[
                PrivateInfo::Location,
                PrivateInfo::DeviceId,
                PrivateInfo::Email,
                PrivateInfo::Contact,
                PrivateInfo::PhoneNumber,
                PrivateInfo::Cookie,
            ];
            let pool: &[PrivateInfo] =
                if spec.policy_cover.is_empty() { ENUM_POOL } else { &spec.policy_cover };
            for k in 0..count {
                let items: Vec<&str> =
                    (0..4).map(|t| pick_policy_phrase(pool[(k + t) % pool.len()], rng)).collect();
                sentences.push(format!(
                    "we may collect, use, retain, or disclose the following: {}.",
                    items.join("; ")
                ));
            }
        }
    }

    if matches!(spec.policy_shape, PolicyShape::Malformed) {
        // Structurally broken HTML: an unclosed heading wrapper, unclosed
        // and case-mangled paragraph tags, a truncated tag at a paragraph
        // boundary, and no closing </html>. The parser must degrade, not
        // die.
        let mut html = String::from("<html><body><h1>Privacy Policy<div>");
        for (k, s) in sentences.iter().enumerate() {
            match k % 4 {
                0 => {
                    html.push_str("<p>");
                    html.push_str(s);
                }
                1 => {
                    html.push_str("<p><b>");
                    html.push_str(s);
                    html.push_str("</p>");
                }
                2 => {
                    html.push_str("<P >");
                    html.push_str(s);
                    html.push_str("</P><br><br");
                }
                _ => {
                    html.push_str("<p>");
                    html.push_str(s);
                    html.push_str("</p></div>");
                }
            }
        }
        html.push_str("</body>");
        return html;
    }

    let mut html = String::from("<html><body><h1>Privacy Policy</h1>");
    for s in sentences {
        html.push_str("<p>");
        html.push_str(&s);
        html.push_str("</p>");
    }
    html.push_str("</body></html>");
    html
}

/// Builds the description text for a spec.
pub fn generate_description(spec: &AppSpec, rng: &mut StdRng) -> String {
    let mut lines: Vec<String> = Vec::new();
    lines.push(pick(NEUTRAL_DESCRIPTIONS, rng).to_string());
    for perm in &spec.desc_perms {
        let pool = description_phrases(perm);
        if !pool.is_empty() {
            lines.push(format!("Enjoy {}.", pick(pool, rng)));
        }
    }
    lines.push(pick(NEUTRAL_DESCRIPTIONS, rng).to_string());
    lines.join(" ")
}

/// The API call the generated dex uses to obtain each kind of information:
/// `(class, method)`, or a content-provider URI for provider-backed data.
enum AccessPath {
    Api(&'static str, &'static str),
    Uri(&'static str),
}

fn access_path(info: PrivateInfo) -> AccessPath {
    use AccessPath::*;
    match info {
        PrivateInfo::Location => Api("android.location.Location", "getLatitude"),
        PrivateInfo::DeviceId => Api("android.telephony.TelephonyManager", "getDeviceId"),
        PrivateInfo::PhoneNumber => Api("android.telephony.TelephonyManager", "getLine1Number"),
        PrivateInfo::IpAddress => Api("android.net.wifi.WifiInfo", "getIpAddress"),
        PrivateInfo::Cookie => Api("android.webkit.CookieManager", "getCookie"),
        PrivateInfo::Account => Api("android.accounts.AccountManager", "getAccounts"),
        PrivateInfo::Contact => Uri("content://com.android.contacts"),
        PrivateInfo::Calendar => Uri("content://com.android.calendar"),
        PrivateInfo::Camera => Api("android.hardware.Camera", "open"),
        PrivateInfo::Audio => Api("android.media.AudioRecord", "read"),
        PrivateInfo::AppList => Api("android.content.pm.PackageManager", "getInstalledPackages"),
        PrivateInfo::Sms => Uri("content://sms"),
        PrivateInfo::CallLog => Uri("content://call_log"),
        PrivateInfo::BrowsingHistory => Api("android.provider.Browser", "getAllBookmarks"),
        PrivateInfo::Sensor => Api("android.hardware.SensorManager", "getSensorList"),
        PrivateInfo::Bluetooth => Api("android.bluetooth.BluetoothAdapter", "getAddress"),
        PrivateInfo::Carrier => Api("android.telephony.TelephonyManager", "getNetworkOperator"),
        PrivateInfo::Clipboard => Api("android.content.ClipboardManager", "getText"),
        PrivateInfo::Email => Api("android.accounts.AccountManager", "getAccountsByType"),
        PrivateInfo::Name => Api("android.accounts.AccountManager", "getUserData"),
        PrivateInfo::Birthday => Uri("content://com.android.contacts"),
    }
}

/// Builds the APK (manifest + dex) for a spec.
pub fn generate_apk(spec: &AppSpec, package: &str, rng: &mut StdRng) -> Apk {
    let main_class = format!("{package}.MainActivity");
    let mut manifest = Manifest::new(package);
    manifest.add_component(ComponentKind::Activity, &main_class, true);
    manifest.add_permission(Permission::Internet);
    for (info, _) in &spec.code_collect {
        if let Some(p) = info.required_permission() {
            manifest.add_permission(p);
        }
    }
    for perm in &spec.desc_perms {
        manifest.add_permission(perm.clone());
    }

    let mut builder = Dex::builder();
    let collect = spec.code_collect.clone();
    let has_dead_code = spec.index.is_multiple_of(13) && collect.is_empty();
    let main_for_class = main_class.clone();
    builder = builder.class(&main_class, move |c| {
        c.extends("android.app.Activity");
        c.method("onCreate", 1, |m| {
            let mut reg = 2u32;
            for (info, retained) in &collect {
                match access_path(*info) {
                    AccessPath::Api(class, method) => {
                        m.invoke_virtual(class, method, &[0], Some(reg));
                    }
                    AccessPath::Uri(uri) => {
                        m.const_string(reg + 1, uri);
                        m.invoke_virtual(
                            "android.content.ContentResolver",
                            "query",
                            &[0, reg + 1],
                            Some(reg),
                        );
                    }
                }
                if *retained {
                    m.invoke_static("android.util.Log", "i", &[reg], None);
                }
                reg += 2;
            }
        });
        if has_dead_code {
            // Unreachable sensitive call: only the reachability ablation
            // surfaces it.
            c.method("unusedDebugDump", 1, |m| {
                m.invoke_virtual(
                    "android.telephony.TelephonyManager",
                    "getDeviceId",
                    &[0],
                    Some(1),
                );
            });
        }
        let _ = &main_for_class;
    });

    // Embedded third-party lib classes; ad/devtool SDK bodies themselves
    // collect a device id (attributed to the lib, not the app).
    for lib_id in &spec.libs {
        if let Some(lib) = KNOWN_LIBS.iter().find(|l| l.id == *lib_id) {
            let cls = format!("{}.SdkEntry", lib.prefix);
            builder = builder.class(&cls, |c| {
                c.method("init", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[0],
                        Some(1),
                    );
                });
            });
        }
    }

    let dex = builder.build();
    if spec.packed {
        Apk::new_packed(manifest, &dex, (rng.gen::<u8>()) | 1)
    } else {
        Apk::new(manifest, dex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GroundTruth;

    fn spec() -> AppSpec {
        AppSpec {
            index: 7,
            code_collect: vec![(PrivateInfo::Location, true), (PrivateInfo::Contact, false)],
            policy_cover: vec![PrivateInfo::Email],
            policy_deny: vec![(VerbCategory::Retain, PrivateInfo::Contact, true)],
            libs: vec!["admob"],
            truth: GroundTruth::default(),
            ..AppSpec::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = generate_app(&s, 1);
        let b = generate_app(&s, 1);
        assert_eq!(a.policy_html, b.policy_html);
        assert_eq!(a.description, b.description);
        assert_eq!(a.apk, b.apk);
    }

    #[test]
    fn different_seeds_vary_text() {
        let s = spec();
        let a = generate_app(&s, 1);
        let b = generate_app(&s, 2);
        // Same structure, probably different phrasing; both non-empty.
        assert!(!a.policy_html.is_empty() && !b.policy_html.is_empty());
    }

    #[test]
    fn generated_dex_collects_and_retains() {
        let s = spec();
        let app = generate_app(&s, 3);
        let report = ppchecker_static::analyze(&app.apk).unwrap();
        assert!(report.collect_code().contains(&PrivateInfo::Location));
        assert!(report.collect_code().contains(&PrivateInfo::Contact));
        assert!(report.retain_code().contains(&PrivateInfo::Location));
        assert!(report.libs.iter().any(|l| l.id == "admob"));
    }

    #[test]
    fn generated_policy_parses_round_trip() {
        let s = spec();
        let app = generate_app(&s, 4);
        let analysis = ppchecker_policy::PolicyAnalyzer::new().analyze_html(&app.policy_html);
        // Covered email must be mentioned; contact denial must be negative
        // retain.
        assert!(analysis.mentioned_resources().iter().any(|r| r.contains("mail")));
        assert!(!analysis.resources(VerbCategory::Retain, true).is_empty());
    }

    #[test]
    fn packed_spec_produces_packed_apk() {
        let mut s = spec();
        s.packed = true;
        let app = generate_app(&s, 5);
        assert!(app.apk.is_packed());
        assert!(app.apk.dex().is_ok());
    }
}
