//! The scale corpus: a deterministic app universe of *any* size, streamed.
//!
//! The calibrated paper plan stops at [`APP_COUNT`] = 1,197 apps. The
//! scale corpus extends the index space to arbitrary N: indices below
//! `APP_COUNT` are exactly the paper plan (byte-identical generation), and
//! every index beyond it synthesizes a spec from pure index arithmetic —
//! no global state, no materialized plan beyond the calibrated prefix —
//! so any shard can generate any index independently.
//!
//! Each 50-index block beyond the paper prefix mixes in the scenario
//! variants the scenario packs ([`crate::manifest`]) name:
//!
//! | bucket (`index % 50`) | scenario |
//! |----------------------|----------|
//! | 7                    | packed dex |
//! | 13                   | lib-heavy (8 embedded SDKs) |
//! | 21                   | huge policy (40 filler sections) |
//! | 29                   | malformed policy HTML |
//! | 34                   | adversarial enumeration sentences |
//! | 11                   | near-duplicate family root |
//! | 41, 43, 47           | near-duplicate family members of bucket 11 |
//! | everything else      | baseline |
//!
//! Streaming comes in two shapes: [`stream_scaled`] (the canonical serial
//! generator — the reference for byte-identity) and
//! [`stream_scaled_sharded`] (thread-per-shard behind the same iterator
//! shape, constant memory, identical output for every shard count).

use crate::dataset::GeneratedApp;
use crate::generate::generate_app;
use crate::plan::{build_plan, AppSpec, PolicyShape, APP_COUNT};
use ppchecker_apk::PrivateInfo;
use ppchecker_engine::pipeline::{sharded_stream, ShardedStream};
use ppchecker_static::KNOWN_LIBS;
use std::sync::Arc;

/// Buffered apps per generator shard in [`stream_scaled_sharded`]. Peak
/// generator-side memory is `shards × SHARD_DEPTH` apps.
pub const SHARD_DEPTH: usize = 32;

/// Which scenario a scale-corpus index belongs to. Pure in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A calibrated paper-plan index (`index < APP_COUNT`).
    Paper,
    /// An ordinary synthesized app.
    Baseline,
    /// Ships a packed dex.
    PackedDex,
    /// Embeds eight third-party SDKs.
    LibHeavy,
    /// Huge policy document.
    HugePolicy,
    /// Structurally broken policy HTML.
    MalformedPolicy,
    /// Adversarial enumeration sentences.
    Enumeration,
    /// Root of a near-duplicate policy family.
    FamilyRoot,
    /// Near-duplicate member of its block's family.
    NearDuplicate,
}

/// Classifies an index. Indices below [`APP_COUNT`] are always
/// [`Scenario::Paper`]; beyond it the 50-index block layout applies.
pub fn scenario_of(index: usize) -> Scenario {
    if index < APP_COUNT {
        return Scenario::Paper;
    }
    match index % 50 {
        7 => Scenario::PackedDex,
        13 => Scenario::LibHeavy,
        21 => Scenario::HugePolicy,
        29 => Scenario::MalformedPolicy,
        34 => Scenario::Enumeration,
        11 => Scenario::FamilyRoot,
        41 | 43 | 47 => Scenario::NearDuplicate,
        _ => Scenario::Baseline,
    }
}

/// The family root a [`Scenario::NearDuplicate`] index duplicates: bucket
/// 11 of its own 50-index block (always smaller than the member index).
pub fn family_root_of(index: usize) -> usize {
    index - index % 50 + 11
}

const INFO_POOL: &[PrivateInfo] = &[
    PrivateInfo::Location,
    PrivateInfo::DeviceId,
    PrivateInfo::Email,
    PrivateInfo::Contact,
    PrivateInfo::PhoneNumber,
    PrivateInfo::Cookie,
    PrivateInfo::Account,
    PrivateInfo::IpAddress,
];

fn push_unique(list: &mut Vec<PrivateInfo>, info: PrivateInfo) {
    if !list.contains(&info) {
        list.push(info);
    }
}

/// An ordinary synthesized app: one or two covered resources, code that
/// collects a covered one, an occasional planted coverage gap, and an
/// embedded SDK on every fourth index.
fn baseline_spec(index: usize) -> AppSpec {
    let mut spec = AppSpec { index, ..AppSpec::default() };
    let a = INFO_POOL[index % INFO_POOL.len()];
    let b = INFO_POOL[(index / INFO_POOL.len()) % INFO_POOL.len()];
    spec.policy_cover.push(a);
    push_unique(&mut spec.policy_cover, b);
    spec.code_collect.push((a, index.is_multiple_of(3)));
    if index % 10 == 3 {
        // Planted incompleteness: the dex collects something the policy
        // never mentions.
        let missed = INFO_POOL[(index / 7 + 3) % INFO_POOL.len()];
        if !spec.policy_cover.contains(&missed) {
            spec.code_collect.push((missed, false));
            spec.truth.incomplete_via_code = true;
            spec.truth.code_missed.push((missed, false));
        }
    }
    if index.is_multiple_of(4) {
        spec.libs.push(KNOWN_LIBS[index % KNOWN_LIBS.len()].id);
        // The embedded SDK body collects a device id; cover it so the
        // baseline stays problem-free on that axis.
        push_unique(&mut spec.policy_cover, PrivateInfo::DeviceId);
        spec.disclaimer = index.is_multiple_of(8);
    }
    spec
}

/// The spec for any index of the scale corpus: the calibrated plan below
/// [`APP_COUNT`], synthesized scenarios beyond it. Pure in
/// `(plan, index)` — this is the function sharded generation distributes.
pub fn scaled_spec(plan: &[AppSpec], index: usize) -> AppSpec {
    if index < plan.len() {
        return plan[index].clone();
    }
    match scenario_of(index) {
        Scenario::Paper => unreachable!("paper indices are covered by the plan prefix"),
        Scenario::Baseline | Scenario::FamilyRoot => baseline_spec(index),
        Scenario::PackedDex => AppSpec { packed: true, ..baseline_spec(index) },
        Scenario::LibHeavy => {
            let mut spec = baseline_spec(index);
            spec.libs.clear();
            for k in 0..8 {
                let lib = KNOWN_LIBS[(index / 50 + k * 7) % KNOWN_LIBS.len()].id;
                if !spec.libs.contains(&lib) {
                    spec.libs.push(lib);
                }
            }
            push_unique(&mut spec.policy_cover, PrivateInfo::DeviceId);
            spec
        }
        Scenario::HugePolicy => {
            AppSpec { policy_shape: PolicyShape::Huge(40), ..baseline_spec(index) }
        }
        Scenario::MalformedPolicy => {
            AppSpec { policy_shape: PolicyShape::Malformed, ..baseline_spec(index) }
        }
        Scenario::Enumeration => {
            let mut spec = baseline_spec(index);
            push_unique(&mut spec.policy_cover, PrivateInfo::PhoneNumber);
            push_unique(&mut spec.policy_cover, PrivateInfo::Cookie);
            spec.policy_shape = PolicyShape::Enumeration(6);
            spec
        }
        Scenario::NearDuplicate => {
            let root = family_root_of(index);
            let mut spec = scaled_spec(plan, root);
            spec.index = index;
            spec.near_dup_of = Some(root);
            spec
        }
    }
}

/// Generates one scale-corpus app. Pure in `(plan, seed, index)`.
pub fn generate_scaled(plan: &[AppSpec], seed: u64, index: usize) -> GeneratedApp {
    let spec = scaled_spec(plan, index);
    GeneratedApp { input: generate_app(&spec, seed), spec }
}

/// The canonical serial stream over the first `n` scale-corpus indices.
/// For `n <= APP_COUNT` this is byte-identical to
/// [`crate::stream_apps`] truncated to `n`. This is the reference
/// ordering every sharded configuration must reproduce.
pub fn stream_scaled(seed: u64, n: usize) -> impl Iterator<Item = GeneratedApp> {
    let plan = build_plan();
    (0..n).map(move |index| generate_scaled(&plan, seed, index))
}

/// The sharded stream: same apps, same order, generated by `shards`
/// background threads with a bounded per-shard buffer ([`SHARD_DEPTH`]),
/// so generation overlaps analysis and peak memory stays constant in `n`.
pub fn stream_scaled_sharded(seed: u64, n: usize, shards: usize) -> ShardedStream<GeneratedApp> {
    let plan = Arc::new(build_plan());
    sharded_stream(n, shards, SHARD_DEPTH, move |index| generate_scaled(&plan, seed, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prefix_is_untouched() {
        let plan = build_plan();
        for index in [0, 5, 500, APP_COUNT - 1] {
            let spec = scaled_spec(&plan, index);
            assert_eq!(spec.policy_shape, PolicyShape::Normal);
            assert!(spec.near_dup_of.is_none());
            assert_eq!(scenario_of(index), Scenario::Paper);
        }
    }

    #[test]
    fn scenarios_land_on_their_buckets() {
        let base = 2000; // any block base beyond the paper prefix
        assert_eq!(scenario_of(base + 7), Scenario::PackedDex);
        assert_eq!(scenario_of(base + 13), Scenario::LibHeavy);
        assert_eq!(scenario_of(base + 21), Scenario::HugePolicy);
        assert_eq!(scenario_of(base + 29), Scenario::MalformedPolicy);
        assert_eq!(scenario_of(base + 34), Scenario::Enumeration);
        assert_eq!(scenario_of(base + 41), Scenario::NearDuplicate);
        assert_eq!(family_root_of(base + 41), base + 11);
    }

    #[test]
    fn scaled_specs_generate_valid_apps() {
        let plan = build_plan();
        for index in [2007, 2013, 2021, 2029, 2034, 2041, 2050] {
            let app = generate_scaled(&plan, 42, index);
            assert!(!app.input.policy_html.is_empty());
            assert!(!app.input.description.is_empty());
            assert_eq!(app.spec.index, index);
        }
    }

    #[test]
    fn packed_scenario_packs_the_dex() {
        let plan = build_plan();
        let app = generate_scaled(&plan, 42, 2007);
        assert!(app.input.apk.is_packed());
    }

    #[test]
    fn lib_heavy_embeds_eight_sdks() {
        let plan = build_plan();
        let app = generate_scaled(&plan, 42, 2013);
        assert_eq!(app.spec.libs.len(), 8);
    }

    #[test]
    fn near_duplicates_share_their_root_body() {
        let plan = build_plan();
        let root = generate_scaled(&plan, 42, 2011);
        let dup_a = generate_scaled(&plan, 42, 2041);
        let dup_b = generate_scaled(&plan, 42, 2043);
        // The duplicate keeps the root's entire body and appends exactly
        // one revision sentence.
        let body_end = root.input.policy_html.len() - "</body></html>".len();
        let root_body = &root.input.policy_html[..body_end];
        assert!(dup_a.input.policy_html.starts_with(root_body));
        assert!(dup_b.input.policy_html.starts_with(root_body));
        assert_ne!(dup_a.input.policy_html, dup_b.input.policy_html);
        assert_ne!(dup_a.input.policy_html, root.input.policy_html);
    }

    #[test]
    fn malformed_policy_still_analyzes() {
        let plan = build_plan();
        let app = generate_scaled(&plan, 42, 2029);
        assert!(!app.input.policy_html.ends_with("</html>"));
        // The parser must degrade gracefully, not panic.
        let analysis = ppchecker_policy::PolicyAnalyzer::new().analyze_html(&app.input.policy_html);
        assert!(analysis.total_sentences > 0);
    }

    #[test]
    fn huge_policy_is_actually_huge() {
        let plan = build_plan();
        let huge = generate_scaled(&plan, 42, 2021);
        let normal = generate_scaled(&plan, 42, 2022);
        assert!(huge.input.policy_html.len() > 4 * normal.input.policy_html.len());
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_count() {
        let n = 1300; // crosses the paper/synthesized boundary
        let reference: Vec<String> = stream_scaled(42, n).map(|a| a.input.policy_html).collect();
        for shards in [1, 4, 16] {
            let sharded: Vec<String> =
                stream_scaled_sharded(42, n, shards).map(|a| a.input.policy_html).collect();
            assert_eq!(sharded, reference, "shards={shards}");
        }
    }
}
