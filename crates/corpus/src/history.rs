//! Versioned app histories: the corpus as an app store sees it over
//! time.
//!
//! Real marketplaces re-crawl: most apps are unchanged between crawls,
//! a few ship a new release. This module simulates that — starting from
//! a base snapshot, each subsequent version mutates a deterministic
//! fraction of the apps with one of three release-shaped changes:
//!
//! - [`MutationKind::PolicyDrift`] — the policy HTML is rephrased and
//!   gains a revision marker (same ground truth, new bytes), so the
//!   stored policy analysis and report are both invalidated.
//! - [`MutationKind::PermissionAdd`] — the manifest requests one more
//!   permission; the dex is untouched but the APK content hash moves.
//! - [`MutationKind::LibSwap`] — one embedded third-party library is
//!   swapped for another, regenerating the dex.
//!
//! Every unchanged app is byte-identical to the previous version, which
//! is exactly what a persistent artifact store needs to prove its
//! incremental win: re-analysis work should scale with
//! [`CorpusVersion::changes`], not with corpus size.

use crate::dataset::GeneratedApp;
use crate::generate::{generate_apk, generate_app, generate_policy};
use crate::libs::{lib_policies, LibPolicy};
use crate::plan::build_plan;
use ppchecker_apk::Permission;
use ppchecker_core::PPChecker;
use ppchecker_static::KNOWN_LIBS;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The kind of change an app shipped between two consecutive versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// The policy text was rewritten (hash changes, semantics do not).
    PolicyDrift,
    /// The manifest gained a permission it did not request before.
    PermissionAdd,
    /// One embedded third-party library was replaced by another.
    LibSwap,
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MutationKind::PolicyDrift => "policy-drift",
            MutationKind::PermissionAdd => "permission-add",
            MutationKind::LibSwap => "lib-swap",
        })
    }
}

/// One app's change record within a [`CorpusVersion`].
#[derive(Debug, Clone)]
pub struct VersionChange {
    /// Corpus index of the changed app.
    pub index: usize,
    /// The app's package name.
    pub package: String,
    /// What changed.
    pub kind: MutationKind,
}

/// One snapshot of the corpus: all apps at a given version, plus the
/// subset that differs from the previous version.
#[derive(Debug)]
pub struct CorpusVersion {
    /// Version number, starting at 0 for the base snapshot.
    pub version: usize,
    /// Every app at this version (unchanged apps are byte-identical to
    /// the previous snapshot).
    pub apps: Vec<GeneratedApp>,
    /// The apps that differ from the previous version. Empty for the
    /// base snapshot.
    pub changes: Vec<VersionChange>,
}

/// A versioned corpus: N successive snapshots over the same app
/// population, plus the (version-independent) lib-policy corpus.
#[derive(Debug)]
pub struct VersionedHistory {
    /// The snapshots, oldest first.
    pub versions: Vec<CorpusVersion>,
    /// The 81 third-party lib policies.
    pub lib_policies: Vec<LibPolicy>,
}

impl VersionedHistory {
    /// Builds a [`PPChecker`] with every lib policy registered.
    pub fn make_checker(&self) -> PPChecker {
        let mut checker = PPChecker::new();
        for lp in &self.lib_policies {
            checker.register_lib_policy(lp.lib.id, &lp.html);
        }
        checker
    }
}

/// A cheap keyed mixer (splitmix64-style) deciding, deterministically,
/// which apps change at which version.
fn mix(seed: u64, version: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(version.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(index.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Permissions a release plausibly adds, tried in order until one is
/// absent from the app's manifest.
const ADDABLE: &[Permission] = &[
    Permission::Bluetooth,
    Permission::AccessWifiState,
    Permission::GetTasks,
    Permission::RecordAudio,
    Permission::ReadContacts,
    Permission::ReadCalendar,
];

/// Applies one mutation to `app`, in place. Returns the kind actually
/// applied (a [`MutationKind::LibSwap`] on an app with no swappable lib
/// falls back to a policy drift so every mutation changes bytes).
fn apply_mutation(
    app: &mut GeneratedApp,
    kind: MutationKind,
    salt: u64,
    version: usize,
) -> MutationKind {
    match kind {
        MutationKind::PolicyDrift => {
            let mut rng = StdRng::seed_from_u64(salt);
            let mut html = generate_policy(&app.spec, &mut rng);
            let marker = format!("<p>this policy was last revised for release {version}.</p>");
            match html.rfind("</body>") {
                Some(pos) => html.insert_str(pos, &marker),
                None => html.push_str(&marker),
            }
            app.input.policy_html = html;
            MutationKind::PolicyDrift
        }
        MutationKind::PermissionAdd => {
            let start = (salt as usize) % ADDABLE.len();
            let manifest = &mut app.input.apk.manifest;
            for i in 0..ADDABLE.len() {
                let p = &ADDABLE[(start + i) % ADDABLE.len()];
                if !manifest.permissions.contains(p) {
                    manifest.add_permission(p.clone());
                    return MutationKind::PermissionAdd;
                }
            }
            // Every addable permission already present: fall back.
            apply_mutation(app, MutationKind::PolicyDrift, salt, version)
        }
        MutationKind::LibSwap => {
            if app.spec.libs.is_empty() {
                return apply_mutation(app, MutationKind::PolicyDrift, salt, version);
            }
            let pool: Vec<&'static str> =
                KNOWN_LIBS.iter().map(|l| l.id).filter(|id| !app.spec.libs.contains(id)).collect();
            if pool.is_empty() {
                return apply_mutation(app, MutationKind::PolicyDrift, salt, version);
            }
            app.spec.libs[0] = pool[(salt as usize) % pool.len()];
            let mut rng = StdRng::seed_from_u64(salt);
            app.input.apk = generate_apk(&app.spec, &app.input.package, &mut rng);
            MutationKind::LibSwap
        }
    }
}

/// Generates a versioned history: `apps` apps over `versions` snapshots,
/// mutating roughly `change_percent`% of the population at each step.
///
/// Deterministic under `seed` — the same arguments always produce
/// byte-identical snapshots, and apps untouched at a step are
/// byte-identical to the previous snapshot.
///
/// # Panics
///
/// Panics if `versions` is 0 or `change_percent` exceeds 100.
pub fn versioned_history(
    seed: u64,
    apps: usize,
    versions: usize,
    change_percent: u64,
) -> VersionedHistory {
    assert!(versions > 0, "need at least the base snapshot");
    assert!(change_percent <= 100, "change_percent is a percentage");
    let base: Vec<GeneratedApp> = build_plan()
        .into_iter()
        .take(apps)
        .map(|spec| GeneratedApp { input: generate_app(&spec, seed), spec })
        .collect();
    let mut snapshots = vec![CorpusVersion { version: 0, apps: base, changes: Vec::new() }];

    for v in 1..versions {
        let prev = &snapshots[v - 1];
        let mut apps: Vec<GeneratedApp> = prev.apps.clone();
        let mut changes = Vec::new();
        for (i, app) in apps.iter_mut().enumerate() {
            let roll = mix(seed, v as u64, i as u64);
            if roll % 100 >= change_percent {
                continue;
            }
            let requested = match (roll >> 8) % 3 {
                0 => MutationKind::PolicyDrift,
                1 => MutationKind::PermissionAdd,
                _ => MutationKind::LibSwap,
            };
            let applied = apply_mutation(app, requested, roll >> 16, v);
            changes.push(VersionChange {
                index: i,
                package: app.input.package.clone(),
                kind: applied,
            });
        }
        snapshots.push(CorpusVersion { version: v, apps, changes });
    }
    VersionedHistory { versions: snapshots, lib_policies: lib_policies() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_are_deterministic() {
        let a = versioned_history(9, 12, 3, 25);
        let b = versioned_history(9, 12, 3, 25);
        for (va, vb) in a.versions.iter().zip(b.versions.iter()) {
            assert_eq!(va.changes.len(), vb.changes.len());
            for (x, y) in va.apps.iter().zip(vb.apps.iter()) {
                assert_eq!(x.input.policy_html, y.input.policy_html);
                assert_eq!(x.input.apk, y.input.apk);
            }
        }
    }

    #[test]
    fn unchanged_apps_are_byte_identical_across_versions() {
        let h = versioned_history(3, 20, 4, 20);
        for w in h.versions.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let changed: Vec<usize> = next.changes.iter().map(|c| c.index).collect();
            for (i, (a, b)) in prev.apps.iter().zip(next.apps.iter()).enumerate() {
                if changed.contains(&i) {
                    continue;
                }
                assert_eq!(a.input.policy_html, b.input.policy_html, "app {i} policy drifted");
                assert_eq!(a.input.description, b.input.description);
                assert_eq!(a.input.apk, b.input.apk, "app {i} apk drifted");
            }
        }
    }

    #[test]
    fn every_recorded_change_moves_the_invalidation_keys() {
        let h = versioned_history(5, 30, 3, 30);
        for w in h.versions.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            assert!(!next.changes.is_empty(), "30% of 30 apps should change");
            for c in &next.changes {
                let before = &prev.apps[c.index].input;
                let after = &next.apps[c.index].input;
                let moved = before.policy_html != after.policy_html || before.apk != after.apk;
                assert!(moved, "{} ({}) recorded but byte-identical", c.package, c.kind);
                match c.kind {
                    MutationKind::PolicyDrift => {
                        assert_ne!(before.policy_html, after.policy_html);
                        assert_eq!(before.apk, after.apk);
                    }
                    MutationKind::PermissionAdd => {
                        assert_eq!(before.policy_html, after.policy_html);
                        assert!(
                            after.apk.manifest.permissions.len()
                                > before.apk.manifest.permissions.len()
                        );
                    }
                    MutationKind::LibSwap => {
                        assert_ne!(before.apk, after.apk);
                    }
                }
            }
        }
    }

    #[test]
    fn change_rate_tracks_the_requested_percentage() {
        let h = versioned_history(11, 100, 2, 10);
        let changed = h.versions[1].changes.len();
        assert!((2..=25).contains(&changed), "10% of 100 apps, got {changed}");
    }

    #[test]
    fn zero_percent_means_frozen_corpus() {
        let h = versioned_history(2, 10, 3, 0);
        assert!(h.versions.iter().all(|v| v.changes.is_empty()));
    }
}
