//! Runs the full §V evaluation over the 1,197-app corpus and dumps the
//! raw [`ppchecker_corpus::Evaluation`] (the `repro_*` binaries in
//! `ppchecker-bench` print the formatted per-table views).

use ppchecker_corpus::{evaluate, paper_dataset};
fn main() {
    let t0 = std::time::Instant::now();
    let d = paper_dataset(42);
    eprintln!("dataset built in {:?}", t0.elapsed());
    let t1 = std::time::Instant::now();
    let ev = evaluate(&d);
    eprintln!("evaluated in {:?}", t1.elapsed());
    println!("{ev:#?}");
    println!("problem rate {:.1}%", ev.problem_rate() * 100.0);
    println!(
        "cur precision {:.3} recall {:.3} f1 {:.3}",
        ev.cur.precision(),
        ev.cur.recall(),
        ev.cur.f1()
    );
    println!(
        "d precision {:.3} recall {:.3} f1 {:.3}",
        ev.disclose.precision(),
        ev.disclose.recall(),
        ev.disclose.f1()
    );
}
