//! HTML text extraction (the Beautiful Soup substitute).
//!
//! Privacy policies arrive as HTML pages; Step 1 extracts the visible text,
//! dropping tags, scripts, styles, and comments, and decoding the common
//! entities. Block-level closing tags become paragraph breaks so the
//! sentence splitter sees document structure.

/// Extracts visible text from an HTML document.
///
/// # Examples
///
/// ```
/// use ppchecker_policy::html::extract_text;
/// let html = "<html><body><h1>Privacy</h1><p>We collect data.</p>\
///             <script>var x=1;</script></body></html>";
/// let text = extract_text(html);
/// assert!(text.contains("We collect data."));
/// assert!(!text.contains("var x"));
/// ```
pub fn extract_text(html: &str) -> String {
    let mut out = String::with_capacity(html.len() / 2);
    let bytes = html.as_bytes();
    let mut i = 0;
    let mut skip_until: Option<&str> = None;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Comment?
            if html[i..].starts_with("<!--") {
                match html[i..].find("-->") {
                    Some(end) => {
                        i += end + 3;
                        continue;
                    }
                    None => break,
                }
            }
            let close = match html[i..].find('>') {
                Some(c) => i + c,
                None => break,
            };
            let tag_body = &html[i + 1..close];
            let tag_name: String = tag_body
                .trim_start_matches('/')
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            if let Some(terminator) = skip_until {
                if tag_body.starts_with('/') && tag_name == terminator {
                    skip_until = None;
                }
                i = close + 1;
                continue;
            }
            match tag_name.as_str() {
                "script" | "style" if !tag_body.starts_with('/') => {
                    skip_until = Some(if tag_name == "script" { "script" } else { "style" });
                }
                // Block-level boundaries become paragraph breaks.
                "p" | "div" | "li" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" | "tr" | "table"
                | "ul" | "ol" | "section" | "article" | "header" | "footer" | "blockquote" => {
                    out.push_str("\n\n");
                }
                "br" => out.push('\n'),
                _ => {}
            }
            i = close + 1;
        } else if skip_until.is_some() {
            i += 1;
        } else if bytes[i] == b'&' {
            let (decoded, len) = decode_entity(&html[i..]);
            out.push_str(decoded);
            i += len;
        } else {
            // SAFETY of slicing: iterate bytes but push full UTF-8 chars.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&html[i..i + ch_len]);
            i += ch_len;
        }
    }
    out
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn decode_entity(s: &str) -> (&'static str, usize) {
    const ENTITIES: &[(&str, &str)] = &[
        ("&amp;", "&"),
        ("&lt;", "<"),
        ("&gt;", ">"),
        ("&quot;", "\""),
        ("&apos;", "'"),
        ("&#39;", "'"),
        ("&nbsp;", " "),
        ("&mdash;", "-"),
        ("&ndash;", "-"),
        ("&rsquo;", "'"),
        ("&lsquo;", "'"),
        ("&rdquo;", "\""),
        ("&ldquo;", "\""),
    ];
    for (ent, rep) in ENTITIES {
        if s.starts_with(ent) {
            return (rep, ent.len());
        }
    }
    ("&", 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_tags() {
        assert_eq!(
            extract_text("<p>We collect <b>location</b> data.</p>").trim(),
            "We collect location data."
        );
    }

    #[test]
    fn drops_script_and_style() {
        let t = extract_text("<style>.x{}</style><script>alert(1)</script><p>ok</p>");
        assert!(t.contains("ok"));
        assert!(!t.contains("alert"));
        assert!(!t.contains(".x{}"));
    }

    #[test]
    fn drops_comments() {
        let t = extract_text("before<!-- hidden -->after");
        assert_eq!(t, "beforeafter");
    }

    #[test]
    fn decodes_entities() {
        let t = extract_text("Terms &amp; Conditions&nbsp;&lt;here&gt;");
        assert_eq!(t, "Terms & Conditions <here>");
    }

    #[test]
    fn block_tags_become_breaks() {
        let t = extract_text("<p>one</p><p>two</p>");
        assert!(t.contains("\n\n"));
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(extract_text("no markup at all"), "no markup at all");
    }

    #[test]
    fn unterminated_tag_is_safe() {
        assert_eq!(extract_text("text <unclosed"), "text ");
    }
}
