//! Pattern bootstrapping (Step 3): automatic pattern mining with blacklist
//! control of semantic drift, and the accuracy/confidence scoring of Eq. 1.
//!
//! Starting from the seed subject-verb-object pattern and the four verb
//! lists, the miner alternates between (a) harvesting frequent subjects and
//! objects from sentences the current patterns match, and (b) proposing new
//! patterns from still-unmatched sentences whose subject and object are
//! already in those lists — extracting the path between them (in our
//! representation, a lexical verb or verb+noun shape). Three blacklists
//! (subjects, verbs, objects) remove semantic drift.

use crate::elements;
use crate::patterns::{match_sentence, Pattern, PatternKind};
use crate::verbs::VerbCategory;
use ppchecker_nlp::depparse::{parse, Parse, Rel};
use ppchecker_nlp::intern::Symbol;
use std::collections::HashMap;

/// A mining-corpus sentence, labeled with the behaviour section it came
/// from (the paper's corpus is organized by collection / use / retention /
/// disclosure).
#[derive(Debug, Clone)]
pub struct CorpusSentence {
    /// The sentence text.
    pub text: String,
    /// Which behaviour the corpus section describes.
    pub category: VerbCategory,
}

/// A pattern with its Eq.-1 quality metrics.
#[derive(Debug, Clone)]
pub struct ScoredPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Positive sentences matched.
    pub pos: usize,
    /// Negative sentences matched.
    pub neg: usize,
    /// `acc(p) = pos / (pos + neg)`.
    pub acc: f64,
    /// `conf(p) = (pos - neg) / (pos + neg + unk)`.
    pub conf: f64,
    /// `Score(p) = conf(p) × log(pos)`.
    pub score: f64,
}

/// The bootstrapper with its three anti-drift blacklists.
#[derive(Debug, Clone)]
pub struct Bootstrapper {
    /// Subjects describing the *user* rather than the app.
    pub subject_blacklist: Vec<String>,
    /// Verbs unrelated to the four behaviours.
    pub verb_blacklist: Vec<String>,
    /// Objects that are not personal information.
    pub object_blacklist: Vec<String>,
}

impl Default for Bootstrapper {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
        Bootstrapper {
            subject_blacklist: s(&[
                "you",
                "user",
                "users",
                "visitor",
                "visitors",
                "customer",
                "customers",
                "member",
                "members",
                "child",
                "children",
            ]),
            verb_blacklist: s(&[
                "be", "have", "make", "do", "go", "come", "see", "say", "want", "like", "visit",
                "click", "agree", "read", "contact", "review",
            ]),
            object_blacklist: s(&[
                "service",
                "services",
                "website",
                "site",
                "app",
                "application",
                "policy",
                "terms",
                "agreement",
                "question",
                "questions",
                "page",
                "pages",
                "feature",
                "features",
                "experience",
                "time",
                "support",
            ]),
        }
    }
}

impl Bootstrapper {
    /// Runs the bootstrapping loop over a mining corpus, returning the seed
    /// patterns followed by every mined pattern (unranked — rank with
    /// [`score_patterns`]).
    pub fn mine(&self, corpus: &[CorpusSentence]) -> Vec<Pattern> {
        let parses: Vec<(Parse, VerbCategory)> =
            corpus.iter().map(|s| (parse(&s.text), s.category)).collect();

        let mut patterns = Pattern::seeds();

        loop {
            // Phase a: harvest subjects/objects from matched sentences.
            let mut subjects: HashMap<Symbol, usize> = HashMap::new();
            let mut objects: HashMap<String, usize> = HashMap::new();
            let mut matched = vec![false; parses.len()];
            for (i, (p, _)) in parses.iter().enumerate() {
                if let Some(m) = match_sentence(p, &patterns) {
                    matched[i] = true;
                    if let Some(exec) = elements::executor_of(p, m.verb) {
                        if !self.subject_blacklist.iter().any(|b| b == exec.as_str()) {
                            *subjects.entry(exec).or_insert(0) += 1;
                        }
                    }
                    for r in elements::resources_of(p, &m) {
                        let text = r.as_str();
                        let head = ppchecker_nlp::lemma::lemmatize_noun(
                            text.split_whitespace().last().unwrap_or(text),
                        );
                        if !self.object_blacklist.contains(&head) {
                            *objects.entry(head).or_insert(0) += 1;
                        }
                    }
                }
            }
            let subj_list = above_median_syms(&subjects);
            let obj_list = above_median(&objects);

            // Phase b: propose patterns from unmatched sentences whose
            // subject and object are already known.
            let mut added = false;
            for (i, (p, category)) in parses.iter().enumerate() {
                if matched[i] {
                    continue;
                }
                let Some(candidate) = self.propose(p, *category, &subj_list, &obj_list) else {
                    continue;
                };
                if !patterns.contains(&candidate) {
                    patterns.push(candidate);
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
        patterns
    }

    /// Proposes a new pattern from an unmatched sentence: the path between
    /// a known subject and a known object through the root.
    fn propose(
        &self,
        p: &Parse,
        category: VerbCategory,
        subj_list: &[Symbol],
        obj_list: &[String],
    ) -> Option<Pattern> {
        let root = p.root?;
        let subj = p.dependent(root, Rel::Nsubj).or_else(|| p.dependent(root, Rel::NsubjPass))?;
        let subj_word = p.tokens[subj].lower;
        if self.subject_blacklist.iter().any(|b| b == subj_word.as_str())
            || !subj_list.contains(&subj_word)
        {
            return None;
        }
        let root_lemma = p.lemma_sym(root);
        if self.verb_blacklist.iter().any(|b| b == root_lemma.as_str()) {
            // "have access to X": the verb is blacklisted but the
            // verb+object-noun shape may still be meaningful.
            let obj = p.dependent(root, Rel::Dobj)?;
            let noun = p.lemma_sym(obj);
            if self.object_blacklist.iter().any(|b| b == noun.as_str()) {
                return None;
            }
            // The actual resource must follow and be known.
            let chunk = p.chunks.iter().find(|c| c.start > obj)?;
            let res_head = p.tokens[chunk.head].lemma;
            if !obj_list.iter().any(|o| o == res_head.as_str())
                || self.object_blacklist.iter().any(|b| b == res_head.as_str())
            {
                return None;
            }
            return Some(Pattern::new(PatternKind::VerbNounResource {
                verb: root_lemma,
                noun,
                category,
            }));
        }
        // Plain new verb: its object must be a known resource.
        let obj = p.dependent(root, Rel::Dobj).or_else(|| p.dependent(root, Rel::NsubjPass))?;
        let obj_lemma = p.tokens[obj].lemma;
        if self.object_blacklist.iter().any(|b| b == obj_lemma.as_str())
            || !obj_list.iter().any(|o| o == obj_lemma.as_str())
        {
            return None;
        }
        if VerbCategory::of_verb_sym(root_lemma).is_some() {
            return None; // already covered by seeds
        }
        Some(Pattern::new(PatternKind::LexicalVerb { verb: root_lemma, category }))
    }
}

fn above_median_syms(freqs: &HashMap<Symbol, usize>) -> Vec<Symbol> {
    if freqs.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<usize> = freqs.values().copied().collect();
    counts.sort_unstable();
    let median = counts[counts.len() / 2];
    let threshold = median.max(1);
    freqs.iter().filter(|(_, &c)| c >= threshold).map(|(&w, _)| w).collect()
}

fn above_median(freqs: &HashMap<String, usize>) -> Vec<String> {
    if freqs.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<usize> = freqs.values().copied().collect();
    counts.sort_unstable();
    let median = counts[counts.len() / 2];
    let threshold = median.max(1);
    freqs.iter().filter(|(_, &c)| c >= threshold).map(|(w, _)| w.clone()).collect()
}

/// Scores patterns against manually-labeled positive and negative sentence
/// sets (Eq. 1) and returns them sorted by descending score.
pub fn score_patterns(
    patterns: &[Pattern],
    positive: &[String],
    negative: &[String],
) -> Vec<ScoredPattern> {
    let pos_parses: Vec<Parse> = positive.iter().map(|s| parse(s)).collect();
    let neg_parses: Vec<Parse> = negative.iter().map(|s| parse(s)).collect();

    // unk: sentences not matched by ANY pattern.
    let unk = pos_parses
        .iter()
        .chain(neg_parses.iter())
        .filter(|p| match_sentence(p, patterns).is_none())
        .count();

    let mut scored: Vec<ScoredPattern> = patterns
        .iter()
        .map(|pat| {
            let single = std::slice::from_ref(pat);
            let pos = pos_parses.iter().filter(|p| match_sentence(p, single).is_some()).count();
            let neg = neg_parses.iter().filter(|p| match_sentence(p, single).is_some()).count();
            let denom = (pos + neg) as f64;
            let acc = if denom > 0.0 { pos as f64 / denom } else { 0.0 };
            let conf_denom = (pos + neg + unk) as f64;
            let conf = if conf_denom > 0.0 { (pos as f64 - neg as f64) / conf_denom } else { 0.0 };
            let score = if pos > 0 { conf * (pos as f64).ln() } else { f64::NEG_INFINITY };
            ScoredPattern { pattern: *pat, pos, neg, acc, conf, score }
        })
        .collect();
    scored.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    scored
}

/// Takes the top-`n` patterns from a scored ranking.
pub fn select_top_n(scored: &[ScoredPattern], n: usize) -> Vec<Pattern> {
    scored.iter().take(n).map(|s| s.pattern).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<CorpusSentence> {
        let mk = |t: &str, c| CorpusSentence { text: t.to_string(), category: c };
        vec![
            mk("we will collect your location", VerbCategory::Collect),
            mk("we collect your device id", VerbCategory::Collect),
            mk("we collect your contacts", VerbCategory::Collect),
            mk("we may gather your email address", VerbCategory::Collect),
            mk("we will harvest your contacts", VerbCategory::Collect),
            mk("we harvest your location", VerbCategory::Collect),
            mk("we have access to your contacts", VerbCategory::Collect),
            mk("we store your email address", VerbCategory::Retain),
            mk("we will share your location", VerbCategory::Disclose),
        ]
    }

    #[test]
    fn mines_new_lexical_verb() {
        let b = Bootstrapper::default();
        let pats = b.mine(&corpus());
        assert!(pats.iter().any(|p| matches!(
            p.kind,
            PatternKind::LexicalVerb { verb, category: VerbCategory::Collect } if verb == "harvest"
        )));
    }

    #[test]
    fn mines_verb_noun_resource() {
        let b = Bootstrapper::default();
        let pats = b.mine(&corpus());
        assert!(pats.iter().any(|p| matches!(
            p.kind,
            PatternKind::VerbNounResource { verb, noun, .. } if verb == "have" && noun == "access"
        )));
    }

    #[test]
    fn blacklisted_subject_not_mined() {
        let b = Bootstrapper::default();
        let mut c = corpus();
        c.push(CorpusSentence {
            text: "you will download the files".to_string(),
            category: VerbCategory::Collect,
        });
        let pats = b.mine(&c);
        assert!(!pats.iter().any(|p| matches!(
            p.kind,
            PatternKind::LexicalVerb { verb, .. } if verb == "download"
        )));
    }

    #[test]
    fn scoring_ranks_precise_patterns_first() {
        let b = Bootstrapper::default();
        let pats = b.mine(&corpus());
        let positive: Vec<String> = vec![
            "we will collect your location".to_string(),
            "we collect your contacts".to_string(),
            "your personal information will be used".to_string(),
            "we harvest your location".to_string(),
        ];
        let negative: Vec<String> = vec![
            "this policy describes our practices".to_string(),
            "the service is provided as is".to_string(),
        ];
        let scored = score_patterns(&pats, &positive, &negative);
        assert!(!scored.is_empty());
        // Sorted descending.
        for w in scored.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // acc within [0, 1].
        for s in &scored {
            assert!((0.0..=1.0).contains(&s.acc) || s.pos + s.neg == 0);
        }
    }

    #[test]
    fn top_n_truncates() {
        let b = Bootstrapper::default();
        let pats = b.mine(&corpus());
        let scored = score_patterns(&pats, &["we collect your location".to_string()], &[]);
        assert_eq!(select_top_n(&scored, 3).len(), 3);
        assert!(select_top_n(&scored, 1000).len() <= scored.len());
    }
}
