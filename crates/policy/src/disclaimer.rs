//! Third-party disclaimer detection.
//!
//! Some policies declare they are "not responsible for the privacy
//! practices" of third parties; the paper ignores app↔lib inconsistencies
//! for such policies.

/// Returns `true` if the sentence is a third-party responsibility
/// disclaimer.
///
/// # Examples
///
/// ```
/// use ppchecker_policy::disclaimer::is_disclaimer;
/// assert!(is_disclaimer(
///     "we are not responsible for the privacy practices of those sites"
/// ));
/// assert!(!is_disclaimer("we will not collect your location"));
/// ```
pub fn is_disclaimer(sentence: &str) -> bool {
    let s = sentence.to_lowercase();
    let negated_responsibility = s.contains("not responsible")
        || s.contains("no responsibility")
        || s.contains("not liable")
        || s.contains("cannot be held responsible");
    if !negated_responsibility {
        return false;
    }
    s.contains("third part")
        || s.contains("privacy practice")
        || s.contains("those sites")
        || s.contains("these sites")
        || s.contains("other sites")
        || s.contains("external")
        || s.contains("other companies")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_disclaimer() {
        // com.shortbreakstudios.HammerTime, §IV-C.
        assert!(is_disclaimer(
            "we encourage you to review the privacy practices of these third parties before \
             disclosing any personally identifiable information, as we are not responsible \
             for the privacy practices of those sites"
        ));
    }

    #[test]
    fn responsibility_without_third_party_is_not() {
        assert!(!is_disclaimer("we are not responsible for your password strength"));
    }

    #[test]
    fn ordinary_negative_sentence_is_not() {
        assert!(!is_disclaimer("we do not share your contacts with anyone"));
    }

    #[test]
    fn liability_variant() {
        assert!(is_disclaimer("we are not liable for the data collection of third parties"));
    }
}
