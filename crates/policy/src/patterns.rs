//! Sentence-selection patterns (Step 4).
//!
//! The five hand-seeded shapes of Table II (active voice, passive voice,
//! passive allow expression, ability expression, purpose expression) plus
//! the lexical patterns mined by the bootstrapper. A sentence is *useful*
//! iff it matches at least one selected pattern; the match pins down the
//! category-bearing verb used by element extraction.

use crate::verbs::VerbCategory;
use ppchecker_nlp::depparse::{Parse, Rel};
use ppchecker_nlp::intern::{Interner, Symbol};
use std::fmt;
use std::sync::OnceLock;

/// The shape a pattern matches. Lexical material (trigger words, mined
/// verb/noun lemmas) is held as interned [`Symbol`]s, so matching compares
/// `u32`s against the parse's lemma symbols and a whole `Pattern` is a
/// small `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// P1: the root verb is a main verb, active voice
    /// ("we will collect location").
    ActiveVoice,
    /// P2: the root verb is a main verb, passive voice
    /// ("your personal information will be used").
    PassiveVoice,
    /// P3: passive allow expression — root is `trigger` (a passive
    /// participle like "allowed"/"permitted") with an xcomp main verb
    /// ("we are allowed to access your personal information").
    PassiveAllow {
        /// The participle word, e.g. "allowed".
        trigger: Symbol,
    },
    /// P4: ability expression — root is the copular adjective `trigger`
    /// with an xcomp main verb ("we are able to collect location").
    AbilityAdj {
        /// The adjective, e.g. "able".
        trigger: Symbol,
    },
    /// P5: purpose expression — the root has an advcl/xcomp verb that is a
    /// main verb ("we use GPS to get your location").
    PurposeClause,
    /// Mined: a specific verb lemma outside the seed lists, mapped to a
    /// category ("we may harvest your contacts" → collect).
    LexicalVerb {
        /// The verb lemma.
        verb: Symbol,
        /// Category the bootstrapper assigned.
        category: VerbCategory,
    },
    /// Mined: verb + object-noun shape whose real resource follows the
    /// noun ("we have access to your contacts").
    VerbNounResource {
        /// Root verb lemma, e.g. "have".
        verb: Symbol,
        /// Object noun lemma, e.g. "access".
        noun: Symbol,
        /// Category the bootstrapper assigned.
        category: VerbCategory,
    },
}

/// A selectable pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// The matcher.
    pub kind: PatternKind,
}

impl Pattern {
    /// Creates a pattern.
    pub fn new(kind: PatternKind) -> Self {
        Pattern { kind }
    }

    /// The five seed patterns of Table II, as a shared static table.
    pub fn seed_set() -> &'static [Pattern] {
        static SEEDS: OnceLock<[Pattern; 5]> = OnceLock::new();
        SEEDS
            .get_or_init(|| {
                let interner = Interner::global();
                [
                    Pattern::new(PatternKind::ActiveVoice),
                    Pattern::new(PatternKind::PassiveVoice),
                    Pattern::new(PatternKind::PassiveAllow {
                        trigger: interner.intern_static("allow"),
                    }),
                    Pattern::new(PatternKind::AbilityAdj {
                        trigger: interner.intern_static("able"),
                    }),
                    Pattern::new(PatternKind::PurposeClause),
                ]
            })
            .as_slice()
    }

    /// The five seed patterns of Table II as an owned, extendable list.
    pub fn seeds() -> Vec<Pattern> {
        Pattern::seed_set().to_vec()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            PatternKind::ActiveVoice => write!(f, "sbj→V_P→obj (active)"),
            PatternKind::PassiveVoice => write!(f, "obj→V_P (passive)"),
            PatternKind::PassiveAllow { trigger } => write!(f, "sbj {trigger} to V_P"),
            PatternKind::AbilityAdj { trigger } => write!(f, "sbj {trigger} to V_P"),
            PatternKind::PurposeClause => write!(f, "sbj V x to V_P obj"),
            PatternKind::LexicalVerb { verb, category } => write!(f, "sbj→{verb}→obj [{category}]"),
            PatternKind::VerbNounResource { verb, noun, category } => {
                write!(f, "sbj {verb} {noun} obj [{category}]")
            }
        }
    }
}

/// The result of matching a sentence against a pattern list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentenceMatch {
    /// Index of the matching pattern in the supplied list.
    pub pattern_idx: usize,
    /// Behaviour category.
    pub category: VerbCategory,
    /// Token index of the category-bearing verb.
    pub verb: usize,
    /// `true` if that verb is passive.
    pub passive: bool,
    /// For [`PatternKind::VerbNounResource`]: the object-noun token whose
    /// following NP is the actual resource.
    pub resource_after: Option<usize>,
}

/// Matches a parsed sentence against an ordered pattern list, returning
/// the first hit.
pub fn match_sentence(parse: &Parse, patterns: &[Pattern]) -> Option<SentenceMatch> {
    let root = parse.root?;
    patterns.iter().enumerate().find_map(|(idx, p)| match_one(parse, root, idx, p))
}

fn match_one(parse: &Parse, root: usize, idx: usize, pattern: &Pattern) -> Option<SentenceMatch> {
    let root_lemma = parse.lemma_sym(root);
    let root_passive = parse.has_auxpass(root);
    match pattern.kind {
        PatternKind::ActiveVoice => {
            let cat = VerbCategory::of_verb_sym(root_lemma)?;
            if root_passive {
                return None;
            }
            Some(SentenceMatch {
                pattern_idx: idx,
                category: cat,
                verb: root,
                passive: false,
                resource_after: None,
            })
        }
        PatternKind::PassiveVoice => {
            let cat = VerbCategory::of_verb_sym(root_lemma)?;
            if !root_passive {
                return None;
            }
            Some(SentenceMatch {
                pattern_idx: idx,
                category: cat,
                verb: root,
                passive: true,
                resource_after: None,
            })
        }
        PatternKind::PassiveAllow { trigger } => {
            if root_lemma != trigger || !root_passive {
                return None;
            }
            let x = parse.dependent(root, Rel::Xcomp)?;
            let cat = VerbCategory::of_verb_sym(parse.lemma_sym(x))?;
            Some(SentenceMatch {
                pattern_idx: idx,
                category: cat,
                verb: x,
                passive: false,
                resource_after: None,
            })
        }
        PatternKind::AbilityAdj { trigger } => {
            if root_lemma != trigger {
                return None;
            }
            let x = parse.dependent(root, Rel::Xcomp)?;
            let cat = VerbCategory::of_verb_sym(parse.lemma_sym(x))?;
            Some(SentenceMatch {
                pattern_idx: idx,
                category: cat,
                verb: x,
                passive: false,
                resource_after: None,
            })
        }
        PatternKind::PurposeClause => {
            // Root itself must NOT be a main verb (those are P1/P2), but an
            // advcl/xcomp child is.
            if VerbCategory::of_verb_sym(root_lemma).is_some() {
                return None;
            }
            for rel in [Rel::Advcl, Rel::Xcomp] {
                for child in parse.dependents(root, rel) {
                    // Skip constraint clauses ("if you register"): those
                    // carry a mark dependency.
                    if parse.dependent(child, Rel::Mark).is_some() {
                        continue;
                    }
                    if let Some(cat) = VerbCategory::of_verb_sym(parse.lemma_sym(child)) {
                        return Some(SentenceMatch {
                            pattern_idx: idx,
                            category: cat,
                            verb: child,
                            passive: parse.has_auxpass(child),
                            resource_after: None,
                        });
                    }
                }
            }
            None
        }
        PatternKind::LexicalVerb { verb, category } => {
            if root_lemma != verb {
                return None;
            }
            Some(SentenceMatch {
                pattern_idx: idx,
                category,
                verb: root,
                passive: root_passive,
                resource_after: None,
            })
        }
        PatternKind::VerbNounResource { verb, noun, category } => {
            if root_lemma != verb {
                return None;
            }
            let obj = parse.dependent(root, Rel::Dobj)?;
            if parse.lemma_sym(obj) != noun {
                return None;
            }
            Some(SentenceMatch {
                pattern_idx: idx,
                category,
                verb: root,
                passive: false,
                resource_after: Some(obj),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_nlp::depparse::parse;
    use ppchecker_nlp::intern::intern;

    fn match_with_seeds(s: &str) -> Option<SentenceMatch> {
        match_sentence(&parse(s), &Pattern::seeds())
    }

    #[test]
    fn p1_active_voice() {
        let m = match_with_seeds("we are able to collect location information");
        // "able" matches P4 before P1 would; check a plain active sentence:
        let m2 = match_with_seeds("we will collect your location").unwrap();
        assert_eq!(m2.category, VerbCategory::Collect);
        assert!(!m2.passive);
        assert!(m.is_some());
    }

    #[test]
    fn p2_passive_voice() {
        let m = match_with_seeds("your personal information will be used").unwrap();
        assert_eq!(m.category, VerbCategory::Use);
        assert!(m.passive);
    }

    #[test]
    fn p3_passive_allow() {
        let m = match_with_seeds("we are allowed to access your personal information").unwrap();
        assert_eq!(m.category, VerbCategory::Collect);
    }

    #[test]
    fn p4_ability() {
        let m = match_with_seeds("we are able to collect location information").unwrap();
        assert_eq!(m.category, VerbCategory::Collect);
    }

    #[test]
    fn p5_purpose_clause() {
        let m = match_with_seeds("we use gps to get your location");
        // "use" ∈ V_use so this actually matches P1 with category Use —
        // acceptable and matches the paper's Table II row ordering.
        assert!(m.is_some());
        // A root outside the lists exercises P5 proper:
        let m2 = match_with_seeds("we need your permission to access your contacts").unwrap();
        assert_eq!(m2.category, VerbCategory::Collect);
    }

    #[test]
    fn mined_lexical_verb() {
        let mut pats = Pattern::seeds();
        pats.push(Pattern::new(PatternKind::LexicalVerb {
            verb: intern("harvest"),
            category: VerbCategory::Collect,
        }));
        let m = match_sentence(&parse("we may harvest your contacts"), &pats).unwrap();
        assert_eq!(m.category, VerbCategory::Collect);
    }

    #[test]
    fn mined_verb_noun_resource() {
        let mut pats = Pattern::seeds();
        pats.push(Pattern::new(PatternKind::VerbNounResource {
            verb: intern("have"),
            noun: intern("access"),
            category: VerbCategory::Collect,
        }));
        let m = match_sentence(&parse("we have access to your contacts"), &pats).unwrap();
        assert_eq!(m.category, VerbCategory::Collect);
        assert!(m.resource_after.is_some());
    }

    #[test]
    fn irrelevant_sentence_is_unmatched() {
        assert!(match_with_seeds("this policy describes our practices").is_none());
        assert!(match_with_seeds("the weather is nice today").is_none());
    }

    #[test]
    fn unmined_verb_is_unmatched_without_its_pattern() {
        // The paper's false negative: "display" is not in the seed lists.
        assert!(match_with_seeds("we will not display any of your personal information").is_none());
    }
}
