//! Privacy-policy version diffing.
//!
//! Policies change over time ("this policy may change from time to time")
//! and regulators care exactly about what changed: which behaviours were
//! newly declared, which disclosures quietly disappeared, and which
//! promises ("we will not ...") were dropped. This module compares two
//! [`PolicyAnalysis`] results at the behaviour level rather than the text
//! level.

use crate::pipeline::PolicyAnalysis;
use crate::verbs::VerbCategory;
use std::collections::BTreeSet;

/// One behaviour statement: a category plus a resource, with polarity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Statement {
    /// The behaviour category.
    pub category: VerbCategory,
    /// The resource phrase.
    pub resource: String,
    /// `true` for denials ("we will not ...").
    pub negative: bool,
}

/// The behaviour-level difference between two policy versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyDiff {
    /// Statements present in the new version only.
    pub added: Vec<Statement>,
    /// Statements present in the old version only.
    pub removed: Vec<Statement>,
    /// The disclaimer appeared (`Some(true)`) or disappeared
    /// (`Some(false)`); `None` when unchanged.
    pub disclaimer_changed: Option<bool>,
}

impl PolicyDiff {
    /// `true` when nothing changed at the behaviour level.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.disclaimer_changed.is_none()
    }

    /// Newly declared data practices (positive statements added) — the
    /// changes a user would most want to be notified about.
    pub fn new_practices(&self) -> impl Iterator<Item = &Statement> {
        self.added.iter().filter(|s| !s.negative)
    }

    /// Dropped promises (negative statements removed): the policy used to
    /// deny a behaviour and no longer does.
    pub fn dropped_promises(&self) -> impl Iterator<Item = &Statement> {
        self.removed.iter().filter(|s| s.negative)
    }
}

fn statements(analysis: &PolicyAnalysis) -> BTreeSet<Statement> {
    let mut out = BTreeSet::new();
    for cat in VerbCategory::ALL {
        for negative in [false, true] {
            for r in analysis.resources(cat, negative) {
                out.insert(Statement { category: cat, resource: r.to_string(), negative });
            }
        }
    }
    out
}

/// Computes the behaviour-level diff from `old` to `new`.
///
/// # Examples
///
/// ```
/// use ppchecker_policy::{diff::diff, PolicyAnalyzer};
///
/// let analyzer = PolicyAnalyzer::new();
/// let v1 = analyzer.analyze_text("We collect your email address. We will not share your location.");
/// let v2 = analyzer.analyze_text("We collect your email address. We may share your location.");
/// let d = diff(&v1, &v2);
/// assert_eq!(d.dropped_promises().count(), 1); // the location promise is gone
/// assert_eq!(d.new_practices().count(), 1);    // and sharing is now declared
/// ```
pub fn diff(old: &PolicyAnalysis, new: &PolicyAnalysis) -> PolicyDiff {
    let old_set = statements(old);
    let new_set = statements(new);
    PolicyDiff {
        added: new_set.difference(&old_set).cloned().collect(),
        removed: old_set.difference(&new_set).cloned().collect(),
        disclaimer_changed: if old.has_disclaimer == new.has_disclaimer {
            None
        } else {
            Some(new.has_disclaimer)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PolicyAnalyzer;

    fn analyze(text: &str) -> PolicyAnalysis {
        PolicyAnalyzer::new().analyze_text(text)
    }

    #[test]
    fn identical_policies_diff_empty() {
        let a = analyze("We collect your location. We will not sell your personal information.");
        let d = diff(&a, &a);
        assert!(d.is_empty());
    }

    #[test]
    fn added_collection_detected() {
        let old = analyze("We collect your email address.");
        let new = analyze("We collect your email address. We may collect your location.");
        let d = diff(&old, &new);
        assert_eq!(d.removed.len(), 0);
        assert!(d
            .added
            .iter()
            .any(|s| s.category == VerbCategory::Collect && s.resource.contains("location")));
    }

    #[test]
    fn dropped_promise_detected() {
        let old = analyze("We will not share your contacts. We collect your email address.");
        let new = analyze("We collect your email address.");
        let d = diff(&old, &new);
        let dropped: Vec<_> = d.dropped_promises().collect();
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].resource.contains("contacts"));
    }

    #[test]
    fn disclaimer_appearance_tracked() {
        let old = analyze("We collect your location.");
        let new = analyze(
            "We collect your location. We are not responsible for the privacy practices of \
             those third party sites.",
        );
        assert_eq!(diff(&old, &new).disclaimer_changed, Some(true));
        assert_eq!(diff(&new, &old).disclaimer_changed, Some(false));
    }

    #[test]
    fn polarity_flip_is_add_plus_remove() {
        let old = analyze("We will not collect your location.");
        let new = analyze("We may collect your location.");
        let d = diff(&old, &new);
        assert!(d.added.iter().any(|s| !s.negative));
        assert!(d.removed.iter().any(|s| s.negative));
    }
}
