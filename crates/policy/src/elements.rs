//! Information-element extraction (Step 6): main verb, action executor,
//! resources, and constraints.

use crate::patterns::SentenceMatch;
use ppchecker_nlp::depparse::{Parse, Rel};
use ppchecker_nlp::intern::Symbol;
use ppchecker_nlp::lexicon;

/// Constraint kind: pre-conditions start with "if"/"upon"/"unless";
/// post-conditions start with "when"/"before" (and kin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// "if ...", "upon ...", "unless ..."
    Pre,
    /// "when ...", "before ...", "after ...", "while ..."
    Post,
}

/// An extracted constraint clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Pre- or post-condition.
    pub kind: ConstraintKind,
    /// The clause text starting at the marker.
    pub text: String,
}

/// The four information elements of a useful sentence.
///
/// Verb, executor and resources are interned [`Symbol`]s; the string views
/// are recovered through the accessor methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elements {
    /// The main verb lemma.
    pub main_verb: Symbol,
    /// The action executor (subject), lowercased, if present.
    pub executor: Option<Symbol>,
    /// Resource phrases (determiner-stripped noun phrases).
    pub resources: Vec<Symbol>,
    /// Constraints attached to the sentence.
    pub constraints: Vec<Constraint>,
}

impl Elements {
    /// The main verb lemma as text.
    pub fn main_verb(&self) -> &'static str {
        self.main_verb.as_str()
    }

    /// The executor as text.
    pub fn executor(&self) -> Option<&'static str> {
        self.executor.map(Symbol::as_str)
    }

    /// The resource phrases as text, in extraction order.
    pub fn resource_texts(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.resources.iter().map(|s| s.as_str())
    }
}

/// Extracts the information elements for a matched sentence.
pub fn extract(parse: &Parse, m: &SentenceMatch) -> Elements {
    Elements {
        main_verb: parse.lemma_sym(m.verb),
        executor: executor_of(parse, m.verb),
        resources: resources_of(parse, m),
        constraints: constraints_of(parse),
    }
}

/// The action executor: the subject of the verb, or of its governor for
/// xcomp chains ("we are able to collect" — executor "we").
pub fn executor_of(parse: &Parse, verb: usize) -> Option<Symbol> {
    let direct =
        parse.dependent(verb, Rel::Nsubj).or_else(|| parse.dependent(verb, Rel::NsubjPass));
    let subj = direct.or_else(|| {
        [Rel::Xcomp, Rel::Advcl, Rel::Conj].iter().find_map(|&r| {
            parse.governor(verb, r).and_then(|g| {
                parse.dependent(g, Rel::Nsubj).or_else(|| parse.dependent(g, Rel::NsubjPass))
            })
        })
    })?;
    Some(parse.tokens[subj].lower)
}

/// Extracts the resource phrases handled by the matched verb.
///
/// Active voice: the direct object and its conjuncts, expanded through
/// "such as"/"including" appositions. Passive voice: the passive subject
/// and its conjuncts. [`SentenceMatch::resource_after`] overrides with the
/// NP following the object noun ("access **to your contacts**").
pub fn resources_of(parse: &Parse, m: &SentenceMatch) -> Vec<Symbol> {
    let mut heads: Vec<usize> = Vec::new();

    if let Some(after) = m.resource_after {
        // The resource is the first chunk after `after`.
        if let Some(chunk) = parse.chunks.iter().find(|c| c.start > after) {
            push_with_conjs(parse, chunk.head, &mut heads);
        }
    } else if m.passive {
        if let Some(s) = parse.dependent(m.verb, Rel::NsubjPass) {
            push_with_conjs(parse, s, &mut heads);
        }
    } else if let Some(o) = parse.dependent(m.verb, Rel::Dobj) {
        push_with_conjs(parse, o, &mut heads);
    }

    // Expansion through "such as X" / "including X" appositions and
    // "of X" complements ("your date of birth", "those of your contacts")
    // hanging off the verb ("collect information such as your name").
    if !heads.is_empty() || m.resource_after.is_none() {
        for prep in parse.dependents(m.verb, Rel::Prep) {
            let w = parse.tokens[prep].lower();
            if matches!(w, "as" | "including" | "of") {
                if let Some(pobj) = parse.dependent(prep, Rel::Pobj) {
                    push_with_conjs(parse, pobj, &mut heads);
                }
            }
        }
    }

    heads
        .into_iter()
        .filter_map(|h| {
            let sym = parse
                .chunk_headed_by(h)
                .map(|c| c.content_symbol(&parse.tokens))
                .unwrap_or(parse.tokens[h].lower);
            if sym.as_str().is_empty() {
                None
            } else {
                Some(sym)
            }
        })
        .collect()
}

fn push_with_conjs(parse: &Parse, head: usize, out: &mut Vec<usize>) {
    if !out.contains(&head) {
        out.push(head);
    }
    for c in parse.dependents(head, Rel::Conj) {
        if !out.contains(&c) {
            out.push(c);
        }
    }
}

/// Collects the constraint clauses of a sentence by following `mark`
/// dependencies and slicing from the marker to the clause end.
pub fn constraints_of(parse: &Parse) -> Vec<Constraint> {
    let mut out = Vec::new();
    for d in &parse.deps {
        if d.rel != Rel::Mark {
            continue;
        }
        let marker = d.dep;
        if !lexicon::is_subordinator(parse.tokens[marker].lower) {
            continue;
        }
        let word = parse.tokens[marker].lower();
        let kind = match word {
            "if" | "upon" | "unless" => ConstraintKind::Pre,
            _ => ConstraintKind::Post,
        };
        // Clause text: marker up to the next comma or sentence end.
        let end = parse.tokens[marker + 1..]
            .iter()
            .position(|t| t.lower() == ",")
            .map(|p| marker + 1 + p)
            .unwrap_or(parse.tokens.len());
        let text =
            parse.tokens[marker..end].iter().map(|t| t.lower()).collect::<Vec<_>>().join(" ");
        out.push(Constraint { kind, text });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{match_sentence, Pattern};
    use ppchecker_nlp::depparse::parse;

    fn elements(s: &str) -> Elements {
        let p = parse(s);
        let m = match_sentence(&p, &Pattern::seeds()).expect("should match a seed pattern");
        extract(&p, &m)
    }

    #[test]
    fn paper_running_example() {
        // Fig. 8: "we will provide your information to third party
        // companies to improve service if you ..."
        let e = elements(
            "we will provide your information to third party companies to improve service if you agree",
        );
        assert_eq!(e.main_verb(), "provide");
        assert_eq!(e.executor(), Some("we"));
        assert_eq!(e.resource_texts().collect::<Vec<_>>(), vec!["information"]);
        assert_eq!(e.constraints.len(), 1);
        assert_eq!(e.constraints[0].kind, ConstraintKind::Pre);
        assert!(e.constraints[0].text.starts_with("if you"));
    }

    #[test]
    fn passive_resource_is_subject() {
        let e = elements("your location will be collected by us");
        assert_eq!(e.main_verb(), "collect");
        assert_eq!(e.resource_texts().collect::<Vec<_>>(), vec!["location"]);
    }

    #[test]
    fn coordinated_resources() {
        let e = elements("we will not store your real phone number , name and contacts");
        assert_eq!(e.resources.len(), 3);
        let texts: Vec<&str> = e.resource_texts().collect();
        assert!(texts.contains(&"real phone number"));
        assert!(texts.contains(&"name"));
        assert!(texts.contains(&"contacts"));
    }

    #[test]
    fn such_as_expansion() {
        let e = elements("we collect information such as your name and your email address");
        let texts: Vec<&str> = e.resource_texts().collect();
        assert!(texts.contains(&"information"));
        assert!(texts.contains(&"name"));
        assert!(texts.contains(&"email address"));
    }

    #[test]
    fn post_condition_when() {
        let e = elements("we collect usage data when you use the service");
        assert_eq!(e.constraints.len(), 1);
        assert_eq!(e.constraints[0].kind, ConstraintKind::Post);
    }

    #[test]
    fn executor_through_xcomp() {
        let e = elements("we are able to collect location information");
        assert_eq!(e.executor(), Some("we"));
        assert_eq!(e.resource_texts().collect::<Vec<_>>(), vec!["location information"]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::patterns::{match_sentence, Pattern};
    use ppchecker_nlp::depparse::parse;

    fn elements(s: &str) -> Elements {
        let p = parse(s);
        let m = match_sentence(&p, &Pattern::seeds()).expect("matches a seed");
        extract(&p, &m)
    }

    #[test]
    fn upon_is_pre_condition() {
        let e = elements("we collect your email address upon registration completing");
        // "upon registration" without a verb is a plain PP; with a verbal
        // clause it becomes a pre-condition.
        let _ = e; // parse-dependent: presence asserted below with 'if'
        let e2 = elements("we collect your email address if you register");
        assert_eq!(e2.constraints[0].kind, ConstraintKind::Pre);
    }

    #[test]
    fn unless_is_pre_condition() {
        let e = elements("we share your data unless you opt out");
        assert_eq!(e.constraints[0].kind, ConstraintKind::Pre);
        assert!(e.constraints[0].text.starts_with("unless"));
    }

    #[test]
    fn before_clause_is_post_condition() {
        let e = elements("we collect your preferences before you start playing");
        assert_eq!(e.constraints[0].kind, ConstraintKind::Post);
    }

    #[test]
    fn multiple_constraints_collected() {
        let e = elements("if you agree , we collect your location when you use the map");
        assert_eq!(e.constraints.len(), 2);
    }

    #[test]
    fn passive_conjunction_resources() {
        let e = elements("your name and your email address will be collected");
        let texts: Vec<&str> = e.resource_texts().collect();
        assert!(texts.contains(&"name"));
        assert!(texts.contains(&"email address"));
    }

    #[test]
    fn executor_missing_for_subjectless_fragment() {
        let p = parse("to collect your location");
        if let Some(m) = match_sentence(&p, &Pattern::seeds()) {
            let e = extract(&p, &m);
            assert!(e.executor.is_none());
        }
    }
}
