//! Negation analysis (Step 5).
//!
//! A sentence is negative if negation appears in either of two places: the
//! subject ("**nothing** will be collected") or the modifiers of the root
//! word ("we will **not** collect information"). The negation word list
//! follows the paper's source and includes negative verbs ("prevent"),
//! adverbs ("hardly"), adjectives ("unable"), and determiners ("no").

use ppchecker_nlp::depparse::{Parse, Rel};
use ppchecker_nlp::intern::{Symbol, SymbolSet};
use std::sync::OnceLock;

/// Negative adverbs and particles.
pub const NEG_ADVERBS: &[&str] =
    &["not", "n't", "never", "hardly", "rarely", "seldom", "scarcely", "barely", "neither", "nor"];

/// Negative determiners and pronouns.
pub const NEG_DETERMINERS: &[&str] = &["no", "none", "nothing", "nobody", "neither"];

/// Negative verbs: their complement is negated ("we prevent the app from
/// collecting...").
pub const NEG_VERBS: &[&str] =
    &["prevent", "refuse", "decline", "deny", "avoid", "prohibit", "forbid"];

/// Negative adjectives ("we are unable to collect ...").
pub const NEG_ADJECTIVES: &[&str] = &["unable", "unlikely", "impossible"];

/// Negative verbs and adjectives, as an interned set.
fn is_neg_head(lemma: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    SET.get_or_init(|| {
        let mut words: Vec<&'static str> = NEG_VERBS.to_vec();
        words.extend_from_slice(NEG_ADJECTIVES);
        SymbolSet::new(&words)
    })
    .contains(lemma)
}

/// Negative determiners and pronouns, as an interned set.
fn is_neg_determiner(word: Symbol) -> bool {
    static SET: OnceLock<SymbolSet> = OnceLock::new();
    SET.get_or_init(|| SymbolSet::new(NEG_DETERMINERS)).contains(word)
}

/// Decides whether the clause rooted at `verb` is negated.
///
/// Checks, per the paper:
/// 1. the subject (nsubj/nsubjpass) for negative determiners/pronouns;
/// 2. the modifiers of the root word (a `neg` dependency or negative
///    adverbs/verbs/adjectives on the root or its governing chain).
pub fn is_negative(parse: &Parse, verb: usize) -> bool {
    // neg() edge on the verb itself.
    if parse.dependent(verb, Rel::Neg).is_some() {
        return true;
    }
    // Negative root lemma (negative verb or adjective as root/governor).
    if is_neg_head(parse.lemma_sym(verb)) {
        return true;
    }
    // A negated or negative governor: "we are unable to collect",
    // "we will not be allowed to access" — the verb hangs off the governor
    // via xcomp/advcl.
    for rel in [Rel::Xcomp, Rel::Advcl] {
        if let Some(gov) = parse.governor(verb, rel) {
            if parse.dependent(gov, Rel::Neg).is_some() {
                return true;
            }
            if is_neg_head(parse.lemma_sym(gov)) {
                return true;
            }
        }
    }
    // Negative subject.
    let subj = parse
        .dependent(verb, Rel::Nsubj)
        .or_else(|| parse.dependent(verb, Rel::NsubjPass))
        .or_else(|| {
            // Subject may attach to the governor ("we are unable to ...").
            [Rel::Xcomp, Rel::Advcl].iter().find_map(|&r| {
                parse.governor(verb, r).and_then(|g| {
                    parse.dependent(g, Rel::Nsubj).or_else(|| parse.dependent(g, Rel::NsubjPass))
                })
            })
        });
    if let Some(s) = subj {
        if is_neg_determiner(parse.tokens[s].lower) {
            return true;
        }
        if let Some(chunk) = parse.chunk_headed_by(s) {
            for i in chunk.start..chunk.end {
                if is_neg_determiner(parse.tokens[i].lower) {
                    return true;
                }
            }
            // Partitive negative subjects: "none of your contacts will be
            // collected" — the negative head sits before the "of".
            if chunk.start >= 2
                && parse.tokens[chunk.start - 1].lower() == "of"
                && is_neg_determiner(parse.tokens[chunk.start - 2].lower)
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_nlp::depparse::parse;

    fn root_negative(s: &str) -> bool {
        let p = parse(s);
        let r = p.root.expect("sentence should have a root");
        is_negative(&p, r)
    }

    #[test]
    fn plain_positive_sentence() {
        assert!(!root_negative("we will collect your location"));
    }

    #[test]
    fn not_modifier() {
        assert!(root_negative("we will not collect your location"));
    }

    #[test]
    fn contracted_negation() {
        assert!(root_negative("we don't sell your data"));
    }

    #[test]
    fn never_adverb() {
        assert!(root_negative("we will never share your contacts"));
    }

    #[test]
    fn negative_subject() {
        assert!(root_negative("nothing will be collected"));
        assert!(root_negative("no personal information will be collected"));
    }

    #[test]
    fn negative_adjective_root() {
        // "unable" is the copular root; the collect verb hangs off it.
        let p = parse("we are unable to collect your location");
        let r = p.root.unwrap();
        assert!(is_negative(&p, r));
        // and the embedded verb is also judged negative via its governor
        let x = p.dependent(r, Rel::Xcomp).unwrap();
        assert!(is_negative(&p, x));
    }

    #[test]
    fn positive_passive() {
        assert!(!root_negative("your personal information will be used"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ppchecker_nlp::depparse::parse;

    fn root_negative(s: &str) -> bool {
        let p = parse(s);
        is_negative(&p, p.root.expect("root"))
    }

    #[test]
    fn hardly_and_rarely_are_negative() {
        assert!(root_negative("we hardly collect your location"));
        assert!(root_negative("we rarely share your data"));
    }

    #[test]
    fn prevent_style_verbs_negate() {
        let p = parse("we prevent our partners from collecting your location");
        assert!(is_negative(&p, p.root.unwrap()));
    }

    #[test]
    fn neither_nor_subject_negates() {
        assert!(root_negative("none of your contacts will be collected"));
    }

    #[test]
    fn affirmative_with_negative_looking_words_stays_positive() {
        // "no longer than necessary" style wording — "no" is inside a PP,
        // not the subject or root modifiers.
        assert!(!root_negative("we keep your data for a short period"));
        assert!(!root_negative("we collect your anonymous usage data"));
    }

    #[test]
    fn wont_contraction() {
        assert!(root_negative("we won't share your contacts"));
    }
}
