//! The six-step privacy-policy analysis pipeline (Fig. 5):
//! sentence extraction → syntactic analysis → pattern generation →
//! sentence selection → negation analysis → information-element extraction.

use crate::disclaimer;
use crate::elements::{self, Constraint, Elements};
use crate::html;
use crate::negation;
use crate::patterns::{match_sentence, Pattern, PatternKind};
use crate::purpose::{detect_purpose, PurposeClaim};
use crate::verbs::VerbCategory;
use ppchecker_nlp::depparse::parse;
use ppchecker_nlp::intern::{Interner, Symbol};
use ppchecker_nlp::sentence::split_sentences;
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A useful sentence with its extracted elements.
#[derive(Debug, Clone)]
pub struct AnalyzedSentence {
    /// Normalized sentence text.
    pub text: String,
    /// Behaviour category of the main verb.
    pub category: VerbCategory,
    /// `true` if the sentence is negated (Step 5).
    pub negative: bool,
    /// `true` if a consent-style exception conditions the sentence
    /// ("without your consent", "unless you opt in" — the paper's §VI
    /// observation that such constraints "affect the actual meaning").
    pub conditional: bool,
    /// The purpose the sentence states for the practice, if any
    /// ("for advertising", "only to provide app functionality").
    pub purpose: Option<PurposeClaim>,
    /// Extracted elements (Step 6).
    pub elements: Elements,
}

impl AnalyzedSentence {
    /// Resource phrases of this sentence, as text.
    pub fn resources(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.elements.resource_texts()
    }

    /// Resource phrases of this sentence, as interned symbols.
    pub fn resource_symbols(&self) -> &[Symbol] {
        &self.elements.resources
    }
}

/// The analysis of one privacy policy.
#[derive(Debug, Clone, Default)]
pub struct PolicyAnalysis {
    /// The useful sentences.
    pub sentences: Vec<AnalyzedSentence>,
    /// Total sentences in the document (before selection).
    pub total_sentences: usize,
    /// `true` if the policy disclaims responsibility for third parties.
    pub has_disclaimer: bool,
}

impl PolicyAnalysis {
    /// Resources of positive (`negative == false`) or negative sentences in
    /// one category: the paper's `Collect_PP` / `NotCollect_PP` etc.
    pub fn resources(&self, category: VerbCategory, negative: bool) -> BTreeSet<&'static str> {
        self.sentences
            .iter()
            .filter(|s| s.category == category && s.negative == negative)
            .flat_map(|s| s.resources())
            .collect()
    }

    /// Like [`resources`](PolicyAnalysis::resources), but as interned
    /// symbols — the form the cross-checker's set operations consume.
    pub fn resource_symbols(&self, category: VerbCategory, negative: bool) -> BTreeSet<Symbol> {
        self.sentences
            .iter()
            .filter(|s| s.category == category && s.negative == negative)
            .flat_map(|s| s.resource_symbols().iter().copied())
            .collect()
    }

    /// Union of positive resources across all four categories: the
    /// `PPInfos` set of Algorithms 1–2.
    pub fn mentioned_resources(&self) -> BTreeSet<&'static str> {
        VerbCategory::ALL.into_iter().flat_map(|c| self.resources(c, false)).collect()
    }

    /// [`mentioned_resources`](PolicyAnalysis::mentioned_resources) as
    /// interned symbols, for the incompleteness detectors' ESA probes.
    pub fn mentioned_resource_symbols(&self) -> BTreeSet<Symbol> {
        VerbCategory::ALL.into_iter().flat_map(|c| self.resource_symbols(c, false)).collect()
    }

    /// Union of negated resources across all four categories.
    pub fn denied_resources(&self) -> BTreeSet<&'static str> {
        VerbCategory::ALL.into_iter().flat_map(|c| self.resources(c, true)).collect()
    }

    /// Positive sentences (for Algorithm 5's lib side).
    pub fn positive_sentences(&self) -> impl Iterator<Item = &AnalyzedSentence> {
        self.sentences.iter().filter(|s| !s.negative)
    }

    /// Negative sentences (for Algorithm 5's app side).
    pub fn negative_sentences(&self) -> impl Iterator<Item = &AnalyzedSentence> {
        self.sentences.iter().filter(|s| s.negative)
    }
}

/// Subjects describing the *user* rather than the app.
const SUBJECT_BLACKLIST: &[&str] =
    &["you", "user", "users", "visitor", "visitors", "customer", "customers", "member", "members"];

/// Resources that are not personal information.
const OBJECT_BLACKLIST: &[&str] = &[
    "service",
    "services",
    "website",
    "site",
    "app",
    "application",
    "policy",
    "terms",
    "agreement",
    "experience",
    "question",
    "questions",
    "feature",
    "features",
    "support",
    "page",
    "pages",
    "time",
];

/// The configured analyzer: a pattern list plus the filtering blacklists.
///
/// The stock pattern table (seeds + curated mined patterns) is built once
/// per process and borrowed by every [`PolicyAnalyzer::new`] instance;
/// only analyzers with custom or expanded pattern lists own their table.
#[derive(Debug, Clone)]
pub struct PolicyAnalyzer {
    patterns: Cow<'static, [Pattern]>,
    model_constraints: bool,
}

impl Default for PolicyAnalyzer {
    fn default() -> Self {
        PolicyAnalyzer::new()
    }
}

impl PolicyAnalyzer {
    /// An analyzer with the seed patterns plus the curated mined patterns
    /// the deployed system ships with.
    pub fn new() -> Self {
        PolicyAnalyzer { patterns: Cow::Borrowed(default_pattern_set()), model_constraints: false }
    }

    /// An analyzer over an explicit (e.g. freshly bootstrapped) pattern
    /// list.
    pub fn with_patterns(patterns: Vec<Pattern>) -> Self {
        PolicyAnalyzer { patterns: Cow::Owned(patterns), model_constraints: false }
    }

    /// The active pattern list.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// A stable fingerprint of this analyzer's configuration: the
    /// persisted text form of the pattern table plus the constraint-
    /// modeling flag. Two analyzers with the same fingerprint produce the
    /// same [`PolicyAnalysis`] for the same input, so the artifact store
    /// folds this into every policy-derived record key — changing the
    /// pattern set invalidates stored analyses instead of replaying them.
    pub fn fingerprint(&self) -> u64 {
        // The trailing constant is the analysis format version: bumped
        // when `AnalyzedSentence` gains a field (and the wire codec a
        // column), so stored analyses from older formats key differently
        // and recompute instead of replaying without the new field.
        let text = crate::persist::to_text(&self.patterns);
        ppchecker_store::combine_hashes(&[
            ppchecker_store::content_hash(text.as_bytes()),
            u64::from(self.model_constraints),
            2,
        ])
    }

    /// Enables constraint modeling (the paper's §VI future-work item):
    /// a denial carrying a consent-style exception ("we will not share X
    /// *without your consent*") is conditional rather than absolute, so it
    /// is excluded from the `Not*_PP` sets instead of producing spurious
    /// incorrect/inconsistent findings.
    pub fn with_constraint_modeling(mut self) -> Self {
        self.model_constraints = true;
        self
    }

    /// Enables verb-synonym expansion (the paper's §V-E future-work item):
    /// additional verbs like "display" are mapped onto the four categories,
    /// recovering sentences the mined patterns miss.
    pub fn with_synonym_expansion(mut self) -> Self {
        let patterns = self.patterns.to_mut();
        for &p in crate::synonyms::synonym_patterns() {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        self
    }

    /// Analyzes a privacy policy delivered as HTML.
    pub fn analyze_html(&self, html_doc: &str) -> PolicyAnalysis {
        let _span = ppchecker_obs::span!("policy.analyze");
        self.analyze_text(&html::extract_text(html_doc))
    }

    /// Analyzes plain policy text.
    pub fn analyze_text(&self, text: &str) -> PolicyAnalysis {
        let sents = split_sentences(text);
        let mut analysis =
            PolicyAnalysis { total_sentences: sents.len(), ..PolicyAnalysis::default() };
        for sent in sents {
            if disclaimer::is_disclaimer(&sent) {
                analysis.has_disclaimer = true;
                continue;
            }
            if let Some(a) = self.analyze_sentence(&sent) {
                analysis.sentences.push(a);
            }
        }
        analysis
    }

    /// Runs steps 2 and 4–6 on one sentence. Returns `None` for sentences
    /// that are not useful.
    pub fn analyze_sentence(&self, sentence: &str) -> Option<AnalyzedSentence> {
        let p = parse(sentence);
        let m = match_sentence(&p, &self.patterns)?;
        let negative = negation::is_negative(&p, m.verb)
            || p.root.is_some_and(|r| r != m.verb && negation::is_negative(&p, r));
        let els = elements::extract(&p, &m);
        let conditional = has_consent_exception(sentence);
        if self.model_constraints && negative && conditional {
            // A consent-gated denial neither promises nor forbids the
            // behaviour unconditionally.
            return None;
        }

        // Subject blacklist: sentences about the user's own actions.
        if let Some(exec) = els.executor() {
            if SUBJECT_BLACKLIST.contains(&exec) {
                return None;
            }
            if exec.contains("website") || exec.contains("site") {
                return None;
            }
        }

        // Constraint filter: behaviours performed on the website, not by
        // the app (registration through a website; website visit logging).
        if els.constraints.iter().any(|c: &Constraint| {
            c.text.contains("website") || c.text.contains("web site") || c.text.contains("our site")
        }) {
            return None;
        }

        // Object blacklist: resources that are not personal information.
        let resources: Vec<Symbol> = els
            .resources
            .iter()
            .copied()
            .filter(|r| {
                let text = r.as_str();
                let head = text.split_whitespace().last().unwrap_or(text);
                !OBJECT_BLACKLIST.contains(&head)
            })
            .collect();
        if resources.is_empty() {
            return None;
        }

        Some(AnalyzedSentence {
            text: sentence.to_string(),
            category: m.category,
            negative,
            conditional,
            purpose: detect_purpose(sentence),
            elements: Elements { resources, ..els },
        })
    }
}

/// Detects consent-style exceptions that condition a sentence's meaning.
fn has_consent_exception(sentence: &str) -> bool {
    const EXCEPTIONS: &[&str] = &[
        "without your consent",
        "without your permission",
        "without your prior consent",
        "without your explicit consent",
        "unless you consent",
        "unless you agree",
        "unless you opt in",
        "unless you allow us",
        "with your consent",
        "except as described",
        "except as required by law",
        "if you do not allow us",
    ];
    let lower = sentence.to_lowercase();
    EXCEPTIONS.iter().any(|e| lower.contains(e))
}

/// The full stock pattern table (seeds + curated mined patterns), built
/// once per process.
pub fn default_pattern_set() -> &'static [Pattern] {
    static SET: OnceLock<Vec<Pattern>> = OnceLock::new();
    SET.get_or_init(|| {
        let mut patterns = Pattern::seeds();
        patterns.extend(default_mined_patterns());
        patterns
    })
}

/// The curated mined patterns the deployed analyzer ships with (a compact
/// stand-in for the top-230 bootstrap selection; the full bootstrap is
/// exercised by the Fig. 12 bench).
pub fn default_mined_patterns() -> Vec<Pattern> {
    use VerbCategory::*;
    let interner = Interner::global();
    let lex = |verb: &'static str, category| {
        Pattern::new(PatternKind::LexicalVerb { verb: interner.intern_static(verb), category })
    };
    vec![
        lex("harvest", Collect),
        lex("view", Collect),
        lex("monitor", Collect),
        lex("check", Collect),
        lex("scan", Collect),
        lex("sync", Collect),
        lex("know", Collect),
        lex("log", Retain),
        lex("upload", Disclose),
        lex("post", Disclose),
        lex("publish", Disclose),
        lex("report", Disclose),
        Pattern::new(PatternKind::VerbNounResource {
            verb: interner.intern_static("have"),
            noun: interner.intern_static("access"),
            category: Collect,
        }),
        Pattern::new(PatternKind::VerbNounResource {
            verb: interner.intern_static("make"),
            noun: interner.intern_static("use"),
            category: Use,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> PolicyAnalyzer {
        PolicyAnalyzer::new()
    }

    #[test]
    fn extracts_collect_set() {
        let a = analyzer().analyze_text(
            "We value your privacy. We will collect your location and your device id. \
             We will not share your contacts.",
        );
        let collected = a.resources(VerbCategory::Collect, false);
        assert!(collected.contains("location"));
        assert!(collected.contains("device id"));
        let not_disclosed = a.resources(VerbCategory::Disclose, true);
        assert!(not_disclosed.contains("contacts"));
    }

    #[test]
    fn negative_retain_set() {
        // com.easyxapp.secret's sentence (§II-B).
        let a =
            analyzer().analyze_text("We will not store your real phone number, name and contacts.");
        let not_retained = a.resources(VerbCategory::Retain, true);
        assert!(not_retained.contains("real phone number"));
        assert!(not_retained.contains("name"));
        assert!(not_retained.contains("contacts"));
    }

    #[test]
    fn user_subject_sentences_dropped() {
        let a = analyzer().analyze_text("You may provide your email address.");
        assert!(a.sentences.is_empty());
    }

    #[test]
    fn website_constraint_dropped() {
        let a = analyzer()
            .analyze_text("We collect your email address when you register through our website.");
        assert!(a.sentences.is_empty());
    }

    #[test]
    fn blacklisted_objects_dropped() {
        let a = analyzer().analyze_text("We will improve the service.");
        assert!(a.sentences.is_empty());
    }

    #[test]
    fn disclaimer_flag_set() {
        let a = analyzer().analyze_text(
            "We are not responsible for the privacy practices of those third party sites. \
             We collect your location.",
        );
        assert!(a.has_disclaimer);
        assert_eq!(a.sentences.len(), 1);
    }

    #[test]
    fn html_pipeline_end_to_end() {
        let htmldoc = "<html><body><h1>Privacy Policy</h1>\
            <p>We may collect your location and IP address.</p>\
            <script>track();</script>\
            <p>We will not disclose your phone number.</p></body></html>";
        let a = analyzer().analyze_html(htmldoc);
        assert!(a.resources(VerbCategory::Collect, false).contains("location"));
        assert!(a.resources(VerbCategory::Disclose, true).contains("phone number"));
    }

    #[test]
    fn enumeration_list_resources_extracted() {
        let a = analyzer().analyze_text(
            "We will collect the following information: your name; your IP address; your device ID.",
        );
        // The splitter repairs the enumeration into one sentence; the
        // resource extraction reaches at least the first conjunct chain.
        assert!(!a.sentences.is_empty());
    }

    #[test]
    fn mentioned_resources_unions_categories() {
        let a = analyzer().analyze_text(
            "We collect your location. We store your email address. We may share your device id.",
        );
        let all = a.mentioned_resources();
        assert!(all.contains("location"));
        assert!(all.contains("email address"));
        assert!(all.contains("device id"));
    }

    #[test]
    fn fingerprint_tracks_configuration() {
        let stock = PolicyAnalyzer::new();
        assert_eq!(stock.fingerprint(), PolicyAnalyzer::new().fingerprint());
        assert_ne!(
            stock.fingerprint(),
            PolicyAnalyzer::new().with_synonym_expansion().fingerprint()
        );
        assert_ne!(
            stock.fingerprint(),
            PolicyAnalyzer::new().with_constraint_modeling().fingerprint()
        );
        assert_ne!(
            stock.fingerprint(),
            PolicyAnalyzer::with_patterns(Pattern::seeds()).fingerprint()
        );
    }

    #[test]
    fn purpose_claims_ride_the_analyzed_sentence() {
        let a = analyzer().analyze_text(
            "We use your device id only to provide app functionality. \
             We collect your location for advertising purposes. \
             We may retain your email address.",
        );
        let claims: Vec<_> = a.sentences.iter().map(|s| s.purpose).collect();
        assert!(claims.contains(&Some(crate::purpose::PurposeClaim {
            purpose: crate::purpose::Purpose::Functionality,
            exclusive: true,
        })));
        assert!(claims.contains(&Some(crate::purpose::PurposeClaim {
            purpose: crate::purpose::Purpose::Advertising,
            exclusive: false,
        })));
        assert!(claims.contains(&None));
    }

    #[test]
    fn total_sentences_counted() {
        let a = analyzer().analyze_text("One. Two. Three.");
        assert_eq!(a.total_sentences, 3);
    }
}

#[cfg(test)]
mod constraint_tests {
    use super::*;

    const CONDITIONAL_DENIAL: &str = "we will not share your location without your consent.";

    #[test]
    fn conditional_denial_is_marked() {
        let a = PolicyAnalyzer::new().analyze_text(CONDITIONAL_DENIAL);
        assert_eq!(a.sentences.len(), 1);
        assert!(a.sentences[0].negative);
        assert!(a.sentences[0].conditional);
    }

    #[test]
    fn constraint_modeling_drops_conditional_denials() {
        let analyzer = PolicyAnalyzer::new().with_constraint_modeling();
        let a = analyzer.analyze_text(CONDITIONAL_DENIAL);
        assert!(a.sentences.is_empty());
        // Unconditional denials survive.
        let b = analyzer.analyze_text("we will not share your location.");
        assert_eq!(b.sentences.len(), 1);
        // Positive sentences with consent wording also survive.
        let c = analyzer.analyze_text("we may collect your location with your consent.");
        assert_eq!(c.sentences.len(), 1);
        assert!(c.sentences[0].conditional);
    }

    #[test]
    fn unless_phrasing_detected() {
        let a = PolicyAnalyzer::new()
            .analyze_text("we do not disclose your contacts unless you agree.");
        assert!(a.sentences[0].conditional);
    }
}
