//! Wire codec for [`PolicyAnalysis`]: the persistent form a parsed policy
//! takes in the artifact store.
//!
//! Interned [`ppchecker_nlp::intern::Symbol`] handles are process-local, so the encoding carries
//! the symbol *text* and decoding re-interns it — a decoded analysis is
//! behaviourally identical to a freshly computed one (same resource sets,
//! same sentence structure), never pointer-identical.

use crate::elements::{Constraint, ConstraintKind, Elements};
use crate::pipeline::{AnalyzedSentence, PolicyAnalysis};
use crate::purpose::{Purpose, PurposeClaim};
use crate::verbs::VerbCategory;
use ppchecker_nlp::intern::intern;
use ppchecker_store::{WireError, WireReader, WireWriter};

fn category_byte(c: VerbCategory) -> u8 {
    match c {
        VerbCategory::Collect => 0,
        VerbCategory::Use => 1,
        VerbCategory::Retain => 2,
        VerbCategory::Disclose => 3,
    }
}

fn category_from(b: u8) -> Result<VerbCategory, WireError> {
    match b {
        0 => Ok(VerbCategory::Collect),
        1 => Ok(VerbCategory::Use),
        2 => Ok(VerbCategory::Retain),
        3 => Ok(VerbCategory::Disclose),
        other => Err(WireError(format!("bad verb category {other}"))),
    }
}

fn purpose_byte(p: Option<PurposeClaim>) -> u8 {
    match p {
        None => 0,
        Some(c) => {
            let base = match c.purpose {
                Purpose::Advertising => 1,
                Purpose::Analytics => 2,
                Purpose::Functionality => 3,
            };
            base | if c.exclusive { 0x80 } else { 0 }
        }
    }
}

fn purpose_from(b: u8) -> Result<Option<PurposeClaim>, WireError> {
    let exclusive = b & 0x80 != 0;
    let purpose = match b & 0x7F {
        0 if !exclusive => return Ok(None),
        1 => Purpose::Advertising,
        2 => Purpose::Analytics,
        3 => Purpose::Functionality,
        other => return Err(WireError(format!("bad purpose {other}"))),
    };
    Ok(Some(PurposeClaim { purpose, exclusive }))
}

/// Encodes a policy analysis for the artifact store.
pub fn encode_analysis(a: &PolicyAnalysis) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(a.total_sentences as u64);
    w.bool(a.has_disclaimer);
    w.seq(a.sentences.len());
    for s in &a.sentences {
        w.str(&s.text);
        w.u8(category_byte(s.category));
        w.bool(s.negative);
        w.bool(s.conditional);
        w.u8(purpose_byte(s.purpose));
        w.str(s.elements.main_verb.as_str());
        w.opt_str(s.elements.executor.map(|e| e.as_str()));
        w.seq(s.elements.resources.len());
        for r in &s.elements.resources {
            w.str(r.as_str());
        }
        w.seq(s.elements.constraints.len());
        for c in &s.elements.constraints {
            w.u8(matches!(c.kind, ConstraintKind::Pre) as u8);
            w.str(&c.text);
        }
    }
    w.into_bytes()
}

/// Decodes a stored policy analysis, re-interning every symbol.
///
/// # Errors
///
/// Returns [`WireError`] on any defect; the store layer treats that as a
/// miss and re-parses the policy HTML.
pub fn decode_analysis(bytes: &[u8]) -> Result<PolicyAnalysis, WireError> {
    let mut r = WireReader::new(bytes);
    let total_sentences = r.u64()? as usize;
    let has_disclaimer = r.bool()?;
    let n = r.seq()?;
    let mut sentences = Vec::with_capacity(n);
    for _ in 0..n {
        let text = r.str()?.to_string();
        let category = category_from(r.u8()?)?;
        let negative = r.bool()?;
        let conditional = r.bool()?;
        let purpose = purpose_from(r.u8()?)?;
        let main_verb = intern(r.str()?);
        let executor = r.opt_str()?.map(intern);
        let n_res = r.seq()?;
        let mut resources = Vec::with_capacity(n_res);
        for _ in 0..n_res {
            resources.push(intern(r.str()?));
        }
        let n_con = r.seq()?;
        let mut constraints = Vec::with_capacity(n_con);
        for _ in 0..n_con {
            let kind = if r.u8()? == 1 { ConstraintKind::Pre } else { ConstraintKind::Post };
            constraints.push(Constraint { kind, text: r.str()?.to_string() });
        }
        sentences.push(AnalyzedSentence {
            text,
            category,
            negative,
            conditional,
            purpose,
            elements: Elements { main_verb, executor, resources, constraints },
        });
    }
    if !r.is_exhausted() {
        return Err(WireError("trailing bytes after analysis".into()));
    }
    Ok(PolicyAnalysis { sentences, total_sentences, has_disclaimer })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PolicyAnalyzer;

    fn sample() -> PolicyAnalysis {
        PolicyAnalyzer::new().analyze_text(
            "We are not responsible for third party sites. \
             We may collect your location and your device id if you agree. \
             We will not share your contacts without your consent.",
        )
    }

    #[test]
    fn analysis_round_trips() {
        let original = sample();
        let decoded = decode_analysis(&encode_analysis(&original)).unwrap();
        assert_eq!(decoded.total_sentences, original.total_sentences);
        assert_eq!(decoded.has_disclaimer, original.has_disclaimer);
        assert_eq!(decoded.sentences.len(), original.sentences.len());
        for (d, o) in decoded.sentences.iter().zip(&original.sentences) {
            assert_eq!(d.text, o.text);
            assert_eq!(d.category, o.category);
            assert_eq!(d.negative, o.negative);
            assert_eq!(d.conditional, o.conditional);
            assert_eq!(d.purpose, o.purpose);
            assert_eq!(d.elements, o.elements);
        }
        // The derived sets — what the checker actually consumes — match.
        for cat in VerbCategory::ALL {
            for neg in [false, true] {
                assert_eq!(decoded.resources(cat, neg), original.resources(cat, neg));
                assert_eq!(decoded.resource_symbols(cat, neg), original.resource_symbols(cat, neg));
            }
        }
    }

    #[test]
    fn purpose_claims_round_trip() {
        let original = PolicyAnalyzer::new().analyze_text(
            "We use your device id only to provide app functionality. \
             We collect your location for advertising purposes.",
        );
        assert!(original.sentences.iter().any(|s| s.purpose.is_some()));
        let decoded = decode_analysis(&encode_analysis(&original)).unwrap();
        for (d, o) in decoded.sentences.iter().zip(&original.sentences) {
            assert_eq!(d.purpose, o.purpose);
        }
    }

    #[test]
    fn truncated_encoding_is_an_error() {
        let bytes = encode_analysis(&sample());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_analysis(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_analysis(&sample());
        bytes.push(0);
        assert!(decode_analysis(&bytes).is_err());
    }

    #[test]
    fn empty_analysis_round_trips() {
        let empty = PolicyAnalysis::default();
        let decoded = decode_analysis(&encode_analysis(&empty)).unwrap();
        assert!(decoded.sentences.is_empty());
        assert_eq!(decoded.total_sentences, 0);
    }
}
