//! The four main-verb categories of privacy-policy sentences
//! ($V_P^{collect}$, $V_P^{use}$, $V_P^{retain}$, $V_P^{disclose}$).

use ppchecker_nlp::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// The behaviour a policy sentence describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VerbCategory {
    /// One party accesses/collects/acquires data from another.
    Collect,
    /// One party uses data for some purpose.
    Use,
    /// One party keeps collected data.
    Retain,
    /// One party transfers collected data to another party.
    Disclose,
}

impl VerbCategory {
    /// All categories.
    pub const ALL: [VerbCategory; 4] =
        [VerbCategory::Collect, VerbCategory::Use, VerbCategory::Retain, VerbCategory::Disclose];

    /// The seed verbs of the category (base forms).
    pub fn verbs(self) -> &'static [&'static str] {
        match self {
            VerbCategory::Collect => &[
                "collect", "gather", "obtain", "acquire", "access", "receive", "record", "request",
                "track", "capture", "solicit", "read",
            ],
            VerbCategory::Use => {
                &["use", "process", "utilize", "employ", "analyze", "combine", "link", "associate"]
            }
            VerbCategory::Retain => &[
                "retain", "store", "keep", "save", "preserve", "hold", "maintain", "archive",
                "cache", "remember",
            ],
            VerbCategory::Disclose => &[
                "disclose",
                "share",
                "transfer",
                "provide",
                "send",
                "transmit",
                "give",
                "sell",
                "rent",
                "release",
                "reveal",
                "distribute",
                "supply",
                "pass",
                "trade",
                "expose",
            ],
        }
    }

    /// Classifies a verb lemma into its category, if it is a main verb.
    ///
    /// Every category verb is pre-interned, so a lemma that never made it
    /// into the interner cannot be a main verb and is rejected without a
    /// string comparison.
    pub fn of_verb(lemma: &str) -> Option<VerbCategory> {
        Interner::global().get(lemma).and_then(VerbCategory::of_verb_sym)
    }

    /// Symbol-keyed category lookup: one hash probe on a `u32`.
    pub fn of_verb_sym(lemma: Symbol) -> Option<VerbCategory> {
        static MAP: OnceLock<HashMap<Symbol, VerbCategory>> = OnceLock::new();
        MAP.get_or_init(|| {
            let interner = Interner::global();
            let mut map = HashMap::new();
            for cat in VerbCategory::ALL {
                for v in cat.verbs() {
                    map.insert(interner.intern_static(v), cat);
                }
            }
            map
        })
        .get(&lemma)
        .copied()
    }
}

impl fmt::Display for VerbCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerbCategory::Collect => "collect",
            VerbCategory::Use => "use",
            VerbCategory::Retain => "retain",
            VerbCategory::Disclose => "disclose",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_verbs_classify() {
        assert_eq!(VerbCategory::of_verb("collect"), Some(VerbCategory::Collect));
        assert_eq!(VerbCategory::of_verb("store"), Some(VerbCategory::Retain));
        assert_eq!(VerbCategory::of_verb("share"), Some(VerbCategory::Disclose));
        assert_eq!(VerbCategory::of_verb("process"), Some(VerbCategory::Use));
        assert_eq!(VerbCategory::of_verb("dance"), None);
    }

    #[test]
    fn symbol_lookup_matches_string_lookup() {
        use ppchecker_nlp::intern::intern;
        for cat in VerbCategory::ALL {
            for v in cat.verbs() {
                assert_eq!(VerbCategory::of_verb_sym(intern(v)), Some(cat));
            }
        }
        assert_eq!(VerbCategory::of_verb_sym(intern("dance")), None);
    }

    #[test]
    fn categories_are_disjoint() {
        for a in VerbCategory::ALL {
            for b in VerbCategory::ALL {
                if a == b {
                    continue;
                }
                for v in a.verbs() {
                    assert!(!b.verbs().contains(v), "{v} in both {a} and {b}");
                }
            }
        }
    }
}
