//! The four main-verb categories of privacy-policy sentences
//! ($V_P^{collect}$, $V_P^{use}$, $V_P^{retain}$, $V_P^{disclose}$).

use std::fmt;

/// The behaviour a policy sentence describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VerbCategory {
    /// One party accesses/collects/acquires data from another.
    Collect,
    /// One party uses data for some purpose.
    Use,
    /// One party keeps collected data.
    Retain,
    /// One party transfers collected data to another party.
    Disclose,
}

impl VerbCategory {
    /// All categories.
    pub const ALL: [VerbCategory; 4] = [
        VerbCategory::Collect,
        VerbCategory::Use,
        VerbCategory::Retain,
        VerbCategory::Disclose,
    ];

    /// The seed verbs of the category (base forms).
    pub fn verbs(self) -> &'static [&'static str] {
        match self {
            VerbCategory::Collect => &[
                "collect", "gather", "obtain", "acquire", "access", "receive", "record",
                "request", "track", "capture", "solicit", "read",
            ],
            VerbCategory::Use => &[
                "use", "process", "utilize", "employ", "analyze", "combine", "link", "associate",
            ],
            VerbCategory::Retain => &[
                "retain", "store", "keep", "save", "preserve", "hold", "maintain", "archive",
                "cache", "remember",
            ],
            VerbCategory::Disclose => &[
                "disclose", "share", "transfer", "provide", "send", "transmit", "give", "sell",
                "rent", "release", "reveal", "distribute", "supply", "pass", "trade", "expose",
            ],
        }
    }

    /// Classifies a verb lemma into its category, if it is a main verb.
    pub fn of_verb(lemma: &str) -> Option<VerbCategory> {
        VerbCategory::ALL
            .into_iter()
            .find(|c| c.verbs().contains(&lemma))
    }
}

impl fmt::Display for VerbCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerbCategory::Collect => "collect",
            VerbCategory::Use => "use",
            VerbCategory::Retain => "retain",
            VerbCategory::Disclose => "disclose",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_verbs_classify() {
        assert_eq!(VerbCategory::of_verb("collect"), Some(VerbCategory::Collect));
        assert_eq!(VerbCategory::of_verb("store"), Some(VerbCategory::Retain));
        assert_eq!(VerbCategory::of_verb("share"), Some(VerbCategory::Disclose));
        assert_eq!(VerbCategory::of_verb("process"), Some(VerbCategory::Use));
        assert_eq!(VerbCategory::of_verb("dance"), None);
    }

    #[test]
    fn categories_are_disjoint() {
        for a in VerbCategory::ALL {
            for b in VerbCategory::ALL {
                if a == b {
                    continue;
                }
                for v in a.verbs() {
                    assert!(!b.verbs().contains(v), "{v} in both {a} and {b}");
                }
            }
        }
    }
}
