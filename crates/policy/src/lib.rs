//! # ppchecker-policy
//!
//! The privacy-policy analysis module of the PPChecker reproduction: the
//! six-step pipeline of the paper's Fig. 5 — HTML extraction and sentence
//! splitting ([`html`], Step 1), syntactic analysis (via `ppchecker-nlp`,
//! Step 2), bootstrapped pattern generation with Eq.-1 scoring
//! ([`bootstrap`], Step 3), pattern-based sentence selection ([`patterns`],
//! Step 4), negation analysis ([`negation`], Step 5), and information-
//! element extraction ([`elements`], Step 6) — plus third-party disclaimer
//! detection ([`disclaimer`]).
//!
//! # Examples
//!
//! ```
//! use ppchecker_policy::{PolicyAnalyzer, VerbCategory};
//!
//! let analyzer = PolicyAnalyzer::new();
//! let analysis = analyzer.analyze_text(
//!     "We will collect your location. We will not share your contacts.",
//! );
//! assert!(analysis.resources(VerbCategory::Collect, false).contains("location"));
//! assert!(analysis.resources(VerbCategory::Disclose, true).contains("contacts"));
//! ```

pub mod bootstrap;
pub mod diff;
pub mod disclaimer;
pub mod elements;
pub mod html;
pub mod negation;
pub mod patterns;
pub mod persist;
pub mod pipeline;
pub mod purpose;
pub mod synonyms;
pub mod verbs;
pub mod wire;

pub use bootstrap::{score_patterns, select_top_n, Bootstrapper, CorpusSentence, ScoredPattern};
pub use diff::{diff, PolicyDiff, Statement};
pub use elements::{Constraint, ConstraintKind, Elements};
pub use patterns::{match_sentence, Pattern, PatternKind, SentenceMatch};
pub use persist::{from_text as patterns_from_text, to_text as patterns_to_text};
pub use pipeline::{AnalyzedSentence, PolicyAnalysis, PolicyAnalyzer};
pub use purpose::{detect_purpose, Purpose, PurposeClaim};
pub use synonyms::synonym_patterns;
pub use verbs::VerbCategory;
pub use wire::{decode_analysis, encode_analysis};
