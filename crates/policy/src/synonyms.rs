//! Verb-synonym expansion — the paper's §V-E future-work item.
//!
//! PPChecker missed "we will not display any of your personal information"
//! because "display" was in neither the seed lists nor the mined patterns;
//! the authors propose using "the synonyms of major verbs to tackle this
//! issue in future work". This module implements that extension: a synonym
//! table mapping additional verbs onto the four categories, exposed as
//! extra [`Pattern`]s that [`crate::PolicyAnalyzer`] can opt into.

use crate::patterns::{Pattern, PatternKind};
use crate::verbs::VerbCategory;
use ppchecker_nlp::intern::Interner;
use std::sync::OnceLock;

/// Synonyms of the main verbs, by category.
pub const SYNONYMS: &[(&str, VerbCategory)] = &[
    // collect
    ("examine", VerbCategory::Collect),
    ("inspect", VerbCategory::Collect),
    ("observe", VerbCategory::Collect),
    ("retrieve", VerbCategory::Collect),
    ("fetch", VerbCategory::Collect),
    ("extract", VerbCategory::Collect),
    ("look", VerbCategory::Collect),
    ("survey", VerbCategory::Collect),
    // use
    ("leverage", VerbCategory::Use),
    ("evaluate", VerbCategory::Use),
    ("interpret", VerbCategory::Use),
    ("profile", VerbCategory::Use),
    ("aggregate", VerbCategory::Use),
    // retain
    ("persist", VerbCategory::Retain),
    ("warehouse", VerbCategory::Retain),
    ("stockpile", VerbCategory::Retain),
    ("backup", VerbCategory::Retain),
    // disclose — including the paper's missed "display"
    ("display", VerbCategory::Disclose),
    ("show", VerbCategory::Disclose),
    ("exhibit", VerbCategory::Disclose),
    ("present", VerbCategory::Disclose),
    ("broadcast", VerbCategory::Disclose),
    ("forward", VerbCategory::Disclose),
    ("publicize", VerbCategory::Disclose),
    ("divulge", VerbCategory::Disclose),
];

/// The synonym patterns, built once and shared by every analyzer.
pub fn synonym_patterns() -> &'static [Pattern] {
    static PATTERNS: OnceLock<Vec<Pattern>> = OnceLock::new();
    PATTERNS.get_or_init(|| {
        let interner = Interner::global();
        SYNONYMS
            .iter()
            .map(|&(verb, category)| {
                Pattern::new(PatternKind::LexicalVerb {
                    verb: interner.intern_static(verb),
                    category,
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PolicyAnalyzer;

    #[test]
    fn synonym_table_is_consistent() {
        for (v, _) in SYNONYMS {
            assert!(
                VerbCategory::of_verb(v).is_none(),
                "{v} is already a main verb — not a synonym"
            );
        }
        let mut verbs: Vec<&str> = SYNONYMS.iter().map(|(v, _)| *v).collect();
        verbs.sort_unstable();
        verbs.dedup();
        assert_eq!(verbs.len(), SYNONYMS.len());
    }

    #[test]
    fn display_sentence_recovered_with_expansion() {
        // The paper's §V-E false negative.
        let sentence = "we will not display any of your personal information.";
        let plain = PolicyAnalyzer::new();
        assert!(plain.analyze_text(sentence).sentences.is_empty());

        let expanded = PolicyAnalyzer::new().with_synonym_expansion();
        let analysis = expanded.analyze_text(sentence);
        assert_eq!(analysis.sentences.len(), 1);
        let s = &analysis.sentences[0];
        assert_eq!(s.category, VerbCategory::Disclose);
        assert!(s.negative);
    }

    #[test]
    fn expansion_does_not_change_plain_matches() {
        let text = "we will collect your location. we will not share your contacts.";
        let plain = PolicyAnalyzer::new().analyze_text(text);
        let expanded = PolicyAnalyzer::new().with_synonym_expansion().analyze_text(text);
        assert_eq!(plain.sentences.len(), expanded.sentences.len());
    }
}
