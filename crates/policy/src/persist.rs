//! Pattern-list persistence: save a bootstrapped/selected pattern set to a
//! line-based text form and load it back, so the expensive mining +
//! scoring pass (Fig. 12) can run once and ship its result.

use crate::patterns::{Pattern, PatternKind};
use crate::verbs::VerbCategory;
use ppchecker_nlp::intern::intern;
use std::fmt;

/// Error produced when parsing a persisted pattern list fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePatternError {}

fn category_tag(c: VerbCategory) -> &'static str {
    match c {
        VerbCategory::Collect => "collect",
        VerbCategory::Use => "use",
        VerbCategory::Retain => "retain",
        VerbCategory::Disclose => "disclose",
    }
}

fn parse_category(s: &str) -> Option<VerbCategory> {
    match s {
        "collect" => Some(VerbCategory::Collect),
        "use" => Some(VerbCategory::Use),
        "retain" => Some(VerbCategory::Retain),
        "disclose" => Some(VerbCategory::Disclose),
        _ => None,
    }
}

/// Serializes a pattern list, one pattern per line.
pub fn to_text(patterns: &[Pattern]) -> String {
    let mut out = String::new();
    for p in patterns {
        let line = match &p.kind {
            PatternKind::ActiveVoice => "active".to_string(),
            PatternKind::PassiveVoice => "passive".to_string(),
            PatternKind::PassiveAllow { trigger } => format!("allow {trigger}"),
            PatternKind::AbilityAdj { trigger } => format!("ability {trigger}"),
            PatternKind::PurposeClause => "purpose".to_string(),
            PatternKind::LexicalVerb { verb, category } => {
                format!("verb {verb} {}", category_tag(*category))
            }
            PatternKind::VerbNounResource { verb, noun, category } => {
                format!("verbnoun {verb} {noun} {}", category_tag(*category))
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses a persisted pattern list.
///
/// # Errors
///
/// Returns [`ParsePatternError`] on malformed lines; blank lines and `#`
/// comments are skipped.
pub fn from_text(text: &str) -> Result<Vec<Pattern>, ParsePatternError> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ParsePatternError { line: lineno, message: message.into() };
        let mut f = line.split_whitespace();
        let kind = match f.next().unwrap_or_default() {
            "active" => PatternKind::ActiveVoice,
            "passive" => PatternKind::PassiveVoice,
            "allow" => PatternKind::PassiveAllow {
                trigger: intern(f.next().ok_or_else(|| err("allow needs a trigger"))?),
            },
            "ability" => PatternKind::AbilityAdj {
                trigger: intern(f.next().ok_or_else(|| err("ability needs a trigger"))?),
            },
            "purpose" => PatternKind::PurposeClause,
            "verb" => {
                let verb = intern(f.next().ok_or_else(|| err("verb needs a lemma"))?);
                let cat = f
                    .next()
                    .and_then(parse_category)
                    .ok_or_else(|| err("verb needs a category"))?;
                PatternKind::LexicalVerb { verb, category: cat }
            }
            "verbnoun" => {
                let verb = intern(f.next().ok_or_else(|| err("verbnoun needs a verb"))?);
                let noun = intern(f.next().ok_or_else(|| err("verbnoun needs a noun"))?);
                let cat = f
                    .next()
                    .and_then(parse_category)
                    .ok_or_else(|| err("verbnoun needs a category"))?;
                PatternKind::VerbNounResource { verb, noun, category: cat }
            }
            other => return Err(err(&format!("unknown pattern kind '{other}'"))),
        };
        out.push(Pattern::new(kind));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{default_mined_patterns, PolicyAnalyzer};

    #[test]
    fn seed_patterns_round_trip() {
        let pats = Pattern::seeds();
        let text = to_text(&pats);
        assert_eq!(from_text(&text).unwrap(), pats);
    }

    #[test]
    fn mined_patterns_round_trip() {
        let mut pats = Pattern::seeds();
        pats.extend(default_mined_patterns());
        let text = to_text(&pats);
        assert_eq!(from_text(&text).unwrap(), pats);
    }

    #[test]
    fn full_analyzer_set_round_trips() {
        let analyzer = PolicyAnalyzer::new().with_synonym_expansion();
        let pats = analyzer.patterns().to_vec();
        assert_eq!(from_text(&to_text(&pats)).unwrap(), pats);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# my patterns\n\nactive\n  passive  \n";
        assert_eq!(from_text(text).unwrap().len(), 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert_eq!(from_text("bogus").unwrap_err().line, 1);
        assert!(from_text("verb collectonly").is_err());
        assert!(from_text("verb x nosuchcategory").is_err());
        assert!(from_text("allow").is_err());
    }

    #[test]
    fn loaded_patterns_drive_the_analyzer() {
        let text = "active\npassive\nverb harvest collect\n";
        let pats = from_text(text).unwrap();
        let analyzer = PolicyAnalyzer::with_patterns(pats);
        let a = analyzer.analyze_text("we may harvest your contacts.");
        assert_eq!(a.sentences.len(), 1);
    }
}
