//! The data-*purpose* dimension of policy sentences.
//!
//! Successor work to the paper (purpose-compliance checking) asks not
//! just *what* a policy says is collected but *why*: a sentence may
//! claim collection "for advertising purposes", "for analytics", or
//! "only to provide app functionality". The purpose detector
//! cross-checks these claims against the app's embedded-library
//! evidence, so the analyzer tags every selected sentence with the
//! purpose it states, if any.

use std::fmt;

/// A stated purpose of a data practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// Serving or personalizing advertisements.
    Advertising,
    /// Usage measurement, crash reporting, statistics.
    Analytics,
    /// Providing the app's own features.
    Functionality,
}

impl Purpose {
    /// Stable lowercase identifier (wire and JSON form).
    pub fn as_str(self) -> &'static str {
        match self {
            Purpose::Advertising => "advertising",
            Purpose::Analytics => "analytics",
            Purpose::Functionality => "functionality",
        }
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A purpose claim extracted from one sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PurposeClaim {
    /// The stated purpose.
    pub purpose: Purpose,
    /// `true` when the sentence restricts the practice to this purpose
    /// alone ("only", "solely", "exclusively") — an exclusive claim is
    /// contradicted by evidence of any other purpose.
    pub exclusive: bool,
}

const ADVERTISING_MARKERS: &[&str] = &[
    "for advertising",
    "advertising purposes",
    "to serve ads",
    "to show you ads",
    "personalized ads",
    "targeted advertising",
    "ad personalization",
];

const ANALYTICS_MARKERS: &[&str] = &[
    "for analytics",
    "analytics purposes",
    "to analyze usage",
    "for statistical purposes",
    "usage statistics",
    "crash reporting",
];

const FUNCTIONALITY_MARKERS: &[&str] = &[
    "app functionality",
    "core functionality",
    "to provide the service",
    "to provide our service",
    "to provide app features",
    "to operate the app",
];

const EXCLUSIVITY_MARKERS: &[&str] = &["only", "solely", "exclusively"];

/// Scans one sentence for a stated purpose. Advertising and analytics
/// markers win over functionality markers when both appear (the more
/// specific purpose is the claim that matters for compliance).
pub fn detect_purpose(sentence: &str) -> Option<PurposeClaim> {
    let lower = sentence.to_lowercase();
    let purpose = if ADVERTISING_MARKERS.iter().any(|m| lower.contains(m)) {
        Purpose::Advertising
    } else if ANALYTICS_MARKERS.iter().any(|m| lower.contains(m)) {
        Purpose::Analytics
    } else if FUNCTIONALITY_MARKERS.iter().any(|m| lower.contains(m)) {
        Purpose::Functionality
    } else {
        return None;
    };
    let exclusive = EXCLUSIVITY_MARKERS
        .iter()
        .any(|m| lower.split(|c: char| !c.is_alphanumeric()).any(|w| w == *m));
    Some(PurposeClaim { purpose, exclusive })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertising_claim_detected() {
        let c = detect_purpose("We collect your location for advertising purposes.").unwrap();
        assert_eq!(c.purpose, Purpose::Advertising);
        assert!(!c.exclusive);
    }

    #[test]
    fn exclusive_functionality_claim_detected() {
        let c = detect_purpose("We use your device id only to provide app functionality.").unwrap();
        assert_eq!(c.purpose, Purpose::Functionality);
        assert!(c.exclusive);
    }

    #[test]
    fn analytics_claim_detected() {
        let c = detect_purpose("We process your ip address solely for analytics.").unwrap();
        assert_eq!(c.purpose, Purpose::Analytics);
        assert!(c.exclusive);
    }

    #[test]
    fn specific_purpose_wins_over_functionality() {
        let c =
            detect_purpose("We use your data to provide the service and for advertising purposes.")
                .unwrap();
        assert_eq!(c.purpose, Purpose::Advertising);
    }

    #[test]
    fn exclusivity_requires_a_whole_word() {
        // "only" must be a word, not a substring of e.g. "commonly".
        let c = detect_purpose("We commonly use your data for analytics.").unwrap();
        assert!(!c.exclusive);
    }

    #[test]
    fn plain_sentences_have_no_claim() {
        assert!(detect_purpose("We may collect your location.").is_none());
    }
}
