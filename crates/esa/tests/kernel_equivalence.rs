//! Property tests holding the CSR kernel to the retained HashMap
//! reference implementation.
//!
//! The kernel stores f32 weights and merges sorted pairs; the reference
//! path ([`Interpreter::interpret`] + [`ppchecker_esa::cosine`]) keeps f64
//! HashMaps. Over random texts drawn from the knowledge-base vocabulary
//! (plus out-of-vocabulary junk), similarities must agree within 1e-6 and
//! every threshold verdict — with norm-bound pruning and the pair memo
//! active — must equal the exact comparison.

use ppchecker_esa::{cosine, kb, Interpreter, SIMILARITY_THRESHOLD};
use proptest::prelude::*;

/// Deduplicated words of every knowledge-base article, the exact universe
/// the index is built from.
fn vocabulary() -> &'static [&'static str] {
    use std::sync::OnceLock;
    static VOCAB: OnceLock<Vec<&'static str>> = OnceLock::new();
    VOCAB.get_or_init(|| {
        let mut words: Vec<&'static str> =
            kb::concepts().iter().flat_map(|c| c.text.split_whitespace()).collect();
        words.sort_unstable();
        words.dedup();
        words
    })
}

/// Builds a text from vocabulary indices; indices past the vocabulary
/// inject unknown terms so empty/partial vectors are exercised too.
fn text_from(ids: &[usize]) -> String {
    let vocab = vocabulary();
    ids.iter()
        .map(|&i| if i % 8 == 7 { "zzunknownzz" } else { vocab[i % vocab.len()] })
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    /// CSR kernel similarity equals the HashMap reference within 1e-6.
    #[test]
    fn kernel_matches_hashmap_reference(
        a in prop::collection::vec(0usize..100_000, 0..10),
        b in prop::collection::vec(0usize..100_000, 0..10),
    ) {
        let esa = Interpreter::shared();
        let (ta, tb) = (text_from(&a), text_from(&b));
        let kernel = esa.similarity(&ta, &tb);
        let reference = cosine(&esa.interpret(&ta), &esa.interpret(&tb));
        prop_assert!(
            (kernel - reference).abs() < 1e-6,
            "kernel {} vs reference {} for ({}) / ({})", kernel, reference, ta, tb
        );
    }

    /// The pruned + memoized threshold predicate is verdict-exact.
    #[test]
    fn predicate_matches_exact_similarity(
        a in prop::collection::vec(0usize..100_000, 0..10),
        b in prop::collection::vec(0usize..100_000, 0..10),
    ) {
        let esa = Interpreter::shared();
        let (ta, tb) = (text_from(&a), text_from(&b));
        let exact = esa.similarity(&ta, &tb) >= SIMILARITY_THRESHOLD;
        prop_assert_eq!(esa.same_thing(&ta, &tb), exact);
        // Symmetric ask agrees (and exercises the canonical pair key).
        prop_assert_eq!(esa.same_thing(&tb, &ta), exact);
    }

    /// Interpretation norms: the kernel's precomputed norm matches the
    /// reference vector's norm within f32 quantization error.
    #[test]
    fn norms_agree(ids in prop::collection::vec(0usize..100_000, 0..10)) {
        let esa = Interpreter::shared();
        let text = text_from(&ids);
        let sparse = esa.interpret_sparse(&text);
        let reference = esa.interpret(&text);
        let ref_norm = reference.values().map(|w| w * w).sum::<f64>().sqrt();
        prop_assert!((sparse.norm() - ref_norm).abs() < 1e-5);
        prop_assert_eq!(sparse.len(), reference.len());
    }
}
