//! # ppchecker-esa
//!
//! Explicit Semantic Analysis (ESA) for the PPChecker reproduction.
//!
//! PPChecker uses ESA (Gabrilovich & Markovitch, 2007) to decide whether two
//! pieces of private information "refer to the same thing" — e.g. the
//! "location" inferred from bytecode versus the "location information"
//! mentioned in a privacy policy — with a similarity threshold of 0.67
//! (following AutoCog). The original runs over Wikipedia; this crate bundles
//! a compact privacy-domain concept corpus ([`kb`]) that covers the
//! vocabulary the pipeline compares.
//!
//! # Examples
//!
//! ```
//! use ppchecker_esa::Interpreter;
//!
//! let esa = Interpreter::shared();
//! assert!(esa.same_thing("latitude", "location"));
//! assert!(!esa.same_thing("camera", "calendar"));
//! ```

pub mod interpreter;
pub mod kb;
pub mod kernel;
pub mod simd;

pub use interpreter::{cosine, ConceptVector, Interpreter, SIMILARITY_THRESHOLD};
pub use kb::Concept;
pub use kernel::{merge_dot, CsrIndex, SparseVector};
pub use simd::{active_path, force_scalar, mask_dot, merge_dot_f32, simd_active, BoundSoa};
