//! The bundled knowledge base backing Explicit Semantic Analysis.
//!
//! ESA (Gabrilovich & Markovitch, 2007) maps a text to a weighted vector of
//! knowledge-base concepts and compares texts by cosine similarity in that
//! concept space. The paper runs ESA over Wikipedia; this reproduction
//! bundles a compact, privacy-domain-scoped concept corpus that covers the
//! vocabulary PPChecker compares: private-information categories on one side
//! and distractor concepts (services, payments, games, ...) on the other.

/// A knowledge-base concept: a title and a short article.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Concept {
    /// Concept title.
    pub title: &'static str,
    /// Article text.
    pub text: &'static str,
}

/// Returns the full bundled concept corpus.
pub fn concepts() -> &'static [Concept] {
    CONCEPTS
}

const CONCEPTS: &[Concept] = &[
    // ---- private information concepts ----
    Concept {
        title: "Location",
        text: "location location location geolocation geographic position place \
               gps latitude longitude coordinates coarse fine precise approximate \
               location information location data whereabouts map navigation \
               position tracking geo coordinates city country region locate",
    },
    Concept {
        title: "GPS",
        text: "gps global positioning system satellite location latitude longitude \
               navigation position coordinates precise location receiver signal",
    },
    Concept {
        title: "Device identifier",
        text: "device id device identifier unique identifier imei imsi udid android \
               id serial hardware identifier device information handset \
               identifier device id device fingerprint",
    },
    Concept {
        title: "IP address",
        text: "ip address internet protocol ip ipv4 ipv6 host ip routing \
               ip connection internet ip network identifier ip",
    },
    Concept {
        title: "Cookie",
        text: "cookie cookies browser cookie tracking cookie session cookie web \
               beacon pixel local storage cookie identifier http cookie \
               persistent cookie third-party cookie",
    },
    Concept {
        title: "Contact list",
        text: "contact contacts contact list address book phonebook contact \
               information friends contact data people acquaintances contact \
               details contacts list phone contacts stored contacts",
    },
    Concept {
        title: "Account",
        text: "account accounts user account account name account information \
               google account login credentials username sign-in \
               account data registered account profile account",
    },
    Concept {
        title: "Calendar",
        text: "calendar calendar events appointments schedule meetings reminders \
               calendar information calendar data agenda events dates calendar \
               entries",
    },
    Concept {
        title: "Phone number",
        text: "phone number telephone number mobile number msisdn cell number \
               real phone number phone digits caller number telephone digits \
               number phone line subscriber number",
    },
    Concept {
        title: "Camera",
        text: "camera photo photos picture pictures image images photographs \
               camera roll lens capture snapshot video recording camera data \
               photography gallery",
    },
    Concept {
        title: "Microphone audio",
        text: "audio microphone voice sound recording speech mic audio data \
               voice recording sound capture audio information listening",
    },
    Concept {
        title: "Installed applications",
        text: "app list installed apps applications installed packages package \
               list application list software list installed applications apps \
               on device running apps app inventory",
    },
    Concept {
        title: "SMS messages",
        text: "sms text message text messages short message service mms messages \
               sms content message body inbox sent messages messaging sms data",
    },
    Concept {
        title: "Call log",
        text: "call log call history phone calls outgoing calls incoming calls \
               call records dialed numbers call duration call data",
    },
    Concept {
        title: "Email address",
        text: "email e-mail email address electronic mail mail address inbox \
               e-mail address correspondence",
    },
    Concept {
        title: "Personal name",
        text: "name real name full name first name last name surname given name \
               legal name username display name personal name",
    },
    Concept {
        title: "Birthday",
        text: "birthday birth date date of birth birthdate age anniversary born \
               birth year dob",
    },
    Concept { title: "Gender", text: "gender sex male female demographic gender identity" },
    Concept {
        title: "Personal information",
        text: "personal information personally identifiable information pii \
               personal data private information sensitive information user \
               information individual information personal details private data \
               information about you identifiable data personal",
    },
    Concept {
        title: "Browsing history",
        text: "browsing history web history visited pages browser history surfing \
               history navigation history search history viewed pages history",
    },
    Concept {
        title: "Password",
        text: "password passcode secret credentials pin authentication password \
               security code login secret",
    },
    Concept {
        title: "Wi-Fi network",
        text: "wifi wi-fi wireless network ssid access point network name \
               connection wifi state bssid hotspot",
    },
    Concept {
        title: "Clipboard",
        text: "clipboard copied text paste buffer clipboard contents copy paste",
    },
    Concept {
        title: "Usage data",
        text: "usage data usage statistics analytics data app usage interaction \
               data activity data behavior telemetry diagnostics usage \
               information crash reports logs",
    },
    Concept {
        title: "Financial information",
        text: "payment credit card billing financial information bank account \
               card number purchase transaction money payment details",
    },
    Concept {
        title: "Address",
        text: "address postal address street address mailing address home \
               address zip code city state residence physical address",
    },
    Concept {
        title: "Profile",
        text: "profile user profile profile information profile picture bio \
               social profile member profile preferences",
    },
    Concept {
        title: "Sensor data",
        text: "sensor sensors accelerometer gyroscope barometer proximity light \
               sensor motion data orientation",
    },
    // ---- actor / behaviour concepts (help disambiguate sentences) ----
    Concept {
        title: "Third party",
        text: "third party third parties partner companies advertisers affiliates \
               vendors service providers external parties other companies",
    },
    Concept {
        title: "Advertising",
        text: "advertising advertisement ads ad network banner interstitial \
               sponsored targeted advertising ad identifier marketing promotion",
    },
    Concept {
        title: "Analytics service",
        text: "analytics measurement metrics tracking service statistics \
               reporting service audience measurement",
    },
    Concept {
        title: "Data collection",
        text: "collect collection gather obtain acquire receive record data \
               collection information collection collected data",
    },
    Concept {
        title: "Data retention",
        text: "retain retention store storage keep save preserve hold archive \
               retained data stored data retention period",
    },
    Concept {
        title: "Data disclosure",
        text: "disclose disclosure share sharing transfer provide transmit sell \
               release reveal distribute disclosed data shared data",
    },
    // ---- distractor concepts ----
    Concept {
        title: "Mobile application",
        text: "app application mobile app software program apk android \
               application smartphone app feature functionality",
    },
    Concept {
        title: "Service",
        text: "service services functionality feature offering platform \
               operation experience improve service provide service quality",
    },
    Concept {
        title: "Website",
        text: "website web site webpage web page internet site online portal \
               url link browser visit website",
    },
    Concept {
        title: "Privacy policy",
        text: "privacy policy terms conditions agreement notice legal document \
               policy statement privacy practices terms of service",
    },
    Concept {
        title: "Security",
        text: "security encryption secure protection safeguard ssl https \
               firewall security measures protect",
    },
    Concept {
        title: "Law",
        text: "law legal regulation compliance statute act legislation court \
               government authority jurisdiction",
    },
    Concept {
        title: "Children",
        text: "children child kids minors under 13 coppa parental consent \
               age restriction young users",
    },
    Concept {
        title: "Customer support",
        text: "support help customer service assistance feedback inquiry \
               question reach out respond",
    },
    Concept {
        title: "Game",
        text: "game games gaming play player score level achievement puzzle \
               arcade entertainment fun",
    },
    Concept {
        title: "Weather",
        text: "weather forecast temperature rain snow climate conditions \
               humidity wind meteorology",
    },
    Concept {
        title: "Music",
        text: "music song audio player playlist artist album streaming listen \
               radio sound track",
    },
    Concept {
        title: "Shopping",
        text: "shopping purchase buy store cart checkout order product item \
               price deal discount",
    },
    Concept {
        title: "News",
        text: "news article headline story journalism media press breaking \
               newspaper magazine",
    },
    Concept {
        title: "Social network",
        text: "social network facebook twitter friends followers post share \
               like comment feed social media community",
    },
    Concept {
        title: "Fitness",
        text: "fitness exercise workout health steps running training gym \
               calories activity heart rate",
    },
    Concept {
        title: "Travel",
        text: "travel trip flight hotel booking destination vacation tourism \
               itinerary journey",
    },
    Concept {
        title: "Photography app",
        text: "filter edit crop collage sticker beauty effect lens gallery \
               editor enhance",
    },
    Concept {
        title: "Messaging app",
        text: "chat messaging conversation send receive emoji group chat \
               instant message notification reply",
    },
    Concept {
        title: "Education",
        text: "education learning course lesson study school student teacher \
               quiz knowledge",
    },
    Concept {
        title: "Finance app",
        text: "finance banking budget expense income investment stock wallet \
               currency exchange",
    },
    Concept {
        title: "Productivity",
        text: "productivity task todo note reminder document spreadsheet \
               organize work office",
    },
    Concept {
        title: "Navigation app",
        text: "navigation map route direction traffic drive turn-by-turn \
               destination street transit",
    },
    Concept {
        title: "Video streaming",
        text: "video streaming watch movie episode series player subtitle \
               channel playback",
    },
    Concept {
        title: "Keyboard app",
        text: "keyboard typing input method key layout autocorrect swipe \
               emoji prediction",
    },
    Concept {
        title: "Battery",
        text: "battery power charge energy saver consumption drain optimize",
    },
    Concept {
        title: "File storage",
        text: "file files folder document storage download upload cloud sync \
               backup drive",
    },
    Concept {
        title: "Operating system",
        text: "operating system android version platform firmware kernel \
               update system software os",
    },
    Concept {
        title: "Network carrier",
        text: "carrier operator network provider mobile network cellular \
               roaming signal sim",
    },
    Concept {
        title: "Notification",
        text: "notification push alert badge sound vibrate remind message \
               banner",
    },
    Concept {
        title: "Subscription",
        text: "subscription premium trial renewal plan membership upgrade \
               billing cycle",
    },
    Concept {
        title: "Registration",
        text: "register registration sign up create account enroll join \
               membership signup form",
    },
    Concept {
        title: "Consent",
        text: "consent permission authorize agree opt-in opt-out choice \
               approval acceptance",
    },
    Concept {
        title: "Aggregated data",
        text: "aggregate aggregated anonymous anonymized statistical \
               de-identified non-personal summary data",
    },
    Concept {
        title: "Server",
        text: "server servers backend database host infrastructure cloud \
               datacenter request response",
    },
    Concept {
        title: "Log file",
        text: "log logs log file logging server log event log error log \
               recorded entries diagnostic log",
    },
    Concept {
        title: "Bluetooth",
        text: "bluetooth pairing wireless short-range beacon ble connection \
               peripheral",
    },
    Concept {
        title: "Screen",
        text: "screen display resolution brightness orientation touchscreen \
               pixel",
    },
    Concept {
        title: "Language",
        text: "language locale translation english spanish localization \
               dialect",
    },
    Concept { title: "Time zone", text: "time zone clock date time timestamp utc local time" },
    Concept {
        title: "Neighborhood",
        text: "nearby city area district neighborhood around town local \
               places close vicinity surrounding",
    },
    Concept {
        title: "Contact management",
        text: "merge duplicate duplicates organize entries entry backup \
               restore cleanup deduplicate editing",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_reasonably_sized() {
        assert!(concepts().len() >= 60, "need a rich concept space");
    }

    #[test]
    fn titles_are_unique() {
        let mut titles: Vec<&str> = concepts().iter().map(|c| c.title).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), concepts().len());
    }

    #[test]
    fn articles_are_nonempty() {
        for c in concepts() {
            assert!(!c.text.trim().is_empty(), "empty article: {}", c.title);
        }
    }
}
