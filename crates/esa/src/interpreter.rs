//! The ESA interpreter: term → concept-space vectors and text similarity.
//!
//! The numeric core lives in [`crate::kernel`]: the inverted index is
//! compiled to CSR once at construction, interpretation vectors are flat
//! sorted [`SparseVector`]s, and the threshold predicate combines a
//! norm-bound prune with a sharded symbol-pair verdict memo. The `f64`
//! public API and the 0.67 verdict semantics are unchanged (DESIGN.md §10).

use crate::kb::{concepts, Concept};
use crate::kernel::{self, CsrIndex, SparseVector};
use ppchecker_nlp::intern::{intern, Symbol};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Similarity threshold adopted by the paper (following AutoCog): two texts
/// whose ESA cosine similarity reaches this value "refer to the same thing".
pub const SIMILARITY_THRESHOLD: f64 = 0.67;

/// A sparse vector in concept space: `concept index → weight`.
///
/// Retained as the *reference representation*: [`Interpreter::interpret`]
/// produces it and [`cosine`] consumes it, and the property tests hold the
/// CSR kernel to it within 1e-6. The hot path uses [`SparseVector`].
pub type ConceptVector = HashMap<usize, f64>;

/// Number of lock shards for the vector cache and the pair memo. Sharding
/// by symbol hash keeps the PR-1 parallel engine from serializing on one
/// global `RwLock` at high `--jobs`.
const SHARDS: usize = 16;

/// Upper bound on memoized interpretation vectors across all shards; past
/// this the cache stops admitting new texts (hits still count).
const VECTOR_CACHE_CAP: usize = 65_536;
const VECTOR_SHARD_CAP: usize = VECTOR_CACHE_CAP / SHARDS;

/// Upper bound on memoized symbol-pair verdicts across all shards.
const PAIR_MEMO_CAP: usize = 131_072;
const PAIR_MEMO_SHARD_CAP: usize = PAIR_MEMO_CAP / SHARDS;

/// Fibonacci-multiply hasher for the symbol-keyed caches. Keys are one or
/// two interned `u32` ids; SipHash's DoS resistance buys nothing for them
/// and costs a large fraction of a cache probe. fxhash-style mix: rotate,
/// xor, multiply by the 64-bit golden ratio.
#[derive(Debug, Default, Clone, Copy)]
struct SymHasher(u64);

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl std::hash::Hasher for SymHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(FIB);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(20) ^ n as u64).wrapping_mul(FIB);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(20) ^ n).wrapping_mul(FIB);
    }
}

type SymBuild = std::hash::BuildHasherDefault<SymHasher>;

/// The crate's obs counters, resolved from the registry once. Hot paths
/// consult [`ppchecker_obs::enabled`] (one relaxed load) before touching
/// them, so disabled runs pay nothing beyond that branch.
struct ObsCounters {
    memo_hits: &'static ppchecker_obs::Counter,
    memo_misses: &'static ppchecker_obs::Counter,
    kernel_dots: &'static ppchecker_obs::Counter,
}

fn obs_counters() -> &'static ObsCounters {
    static COUNTERS: OnceLock<ObsCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| ObsCounters {
        memo_hits: ppchecker_obs::counter("esa.pair_memo.hits"),
        memo_misses: ppchecker_obs::counter("esa.pair_memo.misses"),
        kernel_dots: ppchecker_obs::counter("esa.kernel.dots"),
    })
}

type VectorShard = RwLock<HashMap<Symbol, Arc<SparseVector>, SymBuild>>;
type PairShard = RwLock<HashMap<(Symbol, Symbol), bool, SymBuild>>;

/// Sharded, cap-bounded memo of `same_thing` verdicts at the paper
/// threshold, keyed by canonically-ordered symbol pairs. A corpus re-asks
/// identical resource pairs thousands of times across apps; after the
/// first decision each repeat is one read-locked `u64`-keyed probe.
#[derive(Debug, Default)]
struct PairMemo {
    shards: [PairShard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PairMemo {
    /// Canonical key: cosine is symmetric, so `(a,b)` and `(b,a)` share
    /// one entry.
    fn key(a: Symbol, b: Symbol) -> (Symbol, Symbol) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn shard_of(key: (Symbol, Symbol)) -> usize {
        let packed = ((key.0.id() as u64) << 32) | key.1.id() as u64;
        (packed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize
    }

    fn get(&self, a: Symbol, b: Symbol) -> Option<bool> {
        let key = Self::key(a, b);
        let found =
            self.shards[Self::shard_of(key)].read().expect("pair memo lock").get(&key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if ppchecker_obs::enabled() {
            match found {
                Some(_) => obs_counters().memo_hits.inc(),
                None => obs_counters().memo_misses.inc(),
            }
        }
        found
    }

    fn insert(&self, a: Symbol, b: Symbol, verdict: bool) {
        let key = Self::key(a, b);
        let mut shard = self.shards[Self::shard_of(key)].write().expect("pair memo lock");
        if shard.len() < PAIR_MEMO_SHARD_CAP {
            shard.insert(key, verdict);
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("pair memo lock").len()).sum()
    }
}

/// Explicit Semantic Analysis interpreter over the bundled knowledge base.
///
/// Builds a TF-IDF inverted index from terms to concepts once (in CSR
/// layout); texts are interpreted as the TF-weighted sum of their terms'
/// concept vectors and compared by cosine similarity.
///
/// # Examples
///
/// ```
/// use ppchecker_esa::Interpreter;
/// let esa = Interpreter::shared();
/// assert!(esa.similarity("location", "location information") > 0.67);
/// assert!(esa.similarity("location", "device id") < 0.67);
/// ```
#[derive(Debug)]
pub struct Interpreter {
    /// term → sorted (concept, tf-idf weight) postings, CSR-compiled.
    index: CsrIndex,
    n_concepts: usize,
    /// Memoized interpretation vectors, keyed by interned [`Symbol`] and
    /// sharded by symbol hash. Policy phrases and resource names repeat
    /// massively across a corpus, so [`similarity`](Self::similarity) is
    /// served from here — one `u32` hash probe under a per-shard lock —
    /// after the first interpretation of each text. Bounded by
    /// [`VECTOR_CACHE_CAP`] through the per-shard cap in
    /// [`admit`](Self::admit).
    vector_cache: [VectorShard; SHARDS],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Threshold comparisons answered by the norm bound alone.
    pruned: AtomicU64,
    pair_memo: PairMemo,
}

impl Interpreter {
    /// Builds an interpreter over the given concept corpus.
    pub fn new(corpus: &[Concept]) -> Self {
        let n = corpus.len();
        // term frequencies per concept
        let mut tf: Vec<HashMap<String, f64>> = Vec::with_capacity(n);
        let mut df: HashMap<String, usize> = HashMap::new();
        for concept in corpus {
            let mut counts: HashMap<String, f64> = HashMap::new();
            for term in terms(concept.text) {
                *counts.entry(term).or_insert(0.0) += 1.0;
            }
            for term in counts.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
            tf.push(counts);
        }
        let mut postings: HashMap<String, Vec<(u32, f64)>> = HashMap::new();
        for (ci, counts) in tf.iter().enumerate() {
            for (term, &count) in counts {
                let idf = ((n as f64 + 1.0) / (df[term] as f64 + 1.0)).ln() + 1.0;
                let w = (1.0 + count.ln()) * idf;
                postings.entry(term.clone()).or_default().push((ci as u32, w));
            }
        }
        // L2-normalize each term's interpretation vector so frequent terms
        // don't dominate purely by article length. Rows are already sorted
        // by concept id (the outer loop runs in concept order).
        for row in postings.values_mut() {
            let norm = row.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (_, w) in row.iter_mut() {
                    *w /= norm;
                }
            }
        }
        Interpreter {
            index: CsrIndex::build(postings),
            n_concepts: n,
            vector_cache: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            pair_memo: PairMemo::default(),
        }
    }

    /// Returns the process-wide interpreter over the bundled knowledge base.
    pub fn shared() -> &'static Interpreter {
        static ESA: OnceLock<Interpreter> = OnceLock::new();
        ESA.get_or_init(|| Interpreter::new(concepts()))
    }

    /// Number of concepts in the knowledge base.
    pub fn concept_count(&self) -> usize {
        self.n_concepts
    }

    /// Maps a text to its concept-space interpretation vector.
    ///
    /// Reference (HashMap) representation; the hot path uses
    /// [`interpret_sparse`](Self::interpret_sparse). Both read the same
    /// CSR rows, so they agree to within the kernel's f32 quantization.
    pub fn interpret(&self, text: &str) -> ConceptVector {
        let mut v: ConceptVector = HashMap::new();
        for term in terms(text) {
            if let Some(id) = self.index.term_id(&term) {
                let (concepts, weights) = self.index.row(id);
                for (&ci, &w) in concepts.iter().zip(weights) {
                    *v.entry(ci as usize).or_insert(0.0) += w as f64;
                }
            }
        }
        v
    }

    /// Maps a text to its kernel-form interpretation vector: sorted
    /// `(concept, weight)` pairs with precomputed norm and max weight.
    pub fn interpret_sparse(&self, text: &str) -> SparseVector {
        let mut contributions: Vec<(u32, f64)> = Vec::new();
        for term in terms(text) {
            if let Some(id) = self.index.term_id(&term) {
                let (concepts, weights) = self.index.row(id);
                contributions.reserve(concepts.len());
                for (&ci, &w) in concepts.iter().zip(weights) {
                    contributions.push((ci, w as f64));
                }
            }
        }
        SparseVector::from_contributions(contributions)
    }

    fn shard_of(sym: Symbol) -> usize {
        ((sym.id() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize
    }

    /// The memoized interpretation of `sym`. Every text-keyed entry point
    /// interns and lands here, so one symbol-keyed cache serves both.
    fn cached_vector_sym(&self, sym: Symbol) -> Arc<SparseVector> {
        let shard = &self.vector_cache[Self::shard_of(sym)];
        if let Some(hit) = shard.read().expect("esa cache lock").get(&sym) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let _span = ppchecker_obs::span!("esa.vector_build");
        let entry = Arc::new(self.interpret_sparse(sym.as_str()));
        self.admit(sym, entry)
    }

    /// Inserts a freshly computed vector, counting a miss only for the
    /// insert that wins: two threads interpreting the same uncached text
    /// both compute the (pure, identical) vector, but the loser's lookup
    /// resolves from the cache as a hit, so `vector_cache_stats()` misses
    /// stay consistent with `vector_cache_len()`.
    fn admit(&self, sym: Symbol, entry: Arc<SparseVector>) -> Arc<SparseVector> {
        let shard = &self.vector_cache[Self::shard_of(sym)];
        let mut map = shard.write().expect("esa cache lock");
        if map.len() >= VECTOR_SHARD_CAP && !map.contains_key(&sym) {
            drop(map);
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            return entry;
        }
        match map.entry(sym) {
            Entry::Occupied(existing) => {
                let out = Arc::clone(existing.get());
                drop(map);
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                out
            }
            Entry::Vacant(slot) => {
                slot.insert(Arc::clone(&entry));
                drop(map);
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                entry
            }
        }
    }

    /// `(hits, misses)` of the interpretation-vector cache.
    pub fn vector_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Number of memoized interpretation vectors across all shards.
    pub fn vector_cache_len(&self) -> usize {
        self.vector_cache.iter().map(|s| s.read().expect("esa cache lock").len()).sum()
    }

    /// `(hits, misses)` of the symbol-pair verdict memo.
    pub fn pair_memo_stats(&self) -> (u64, u64) {
        (self.pair_memo.hits.load(Ordering::Relaxed), self.pair_memo.misses.load(Ordering::Relaxed))
    }

    /// Number of memoized pair verdicts across all shards.
    pub fn pair_memo_len(&self) -> usize {
        self.pair_memo.len()
    }

    /// Threshold comparisons decided by the norm bound without a dot
    /// product.
    pub fn pruned_comparisons(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Records `n` comparisons answered by a batch norm-bound check
    /// ([`crate::simd::BoundSoa::survivors`]) run outside the interpreter,
    /// so the prune counter stays meaningful for batch callers.
    pub fn note_pruned(&self, n: u64) {
        if n > 0 {
            self.pruned.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Cosine similarity of two texts in concept space, in `[0, 1]`.
    ///
    /// Returns `0.0` when either text has no known terms.
    ///
    /// A thin wrapper over [`similarity_sym`](Self::similarity_sym): the
    /// texts are interned and the symbol path does the work, so both
    /// entry points share one memo. The memo is a pure-function cache —
    /// results are identical with or without it.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.similarity_sym(intern(a), intern(b))
    }

    /// Symbol-keyed similarity: both interpretation vectors are looked up
    /// (and memoized) under the symbols themselves.
    pub fn similarity_sym(&self, a: Symbol, b: Symbol) -> f64 {
        kernel::cosine(&self.cached_vector_sym(a), &self.cached_vector_sym(b))
    }

    /// The memoized kernel-form interpretation of `text`.
    ///
    /// Callers that compare one text against many (e.g. the description
    /// analyzer's permission profiles) should resolve each vector once and
    /// combine them with [`similarity_above`](Self::similarity_above) or
    /// [`kernel::cosine`], instead of paying a cache probe per pair.
    pub fn vector_of(&self, text: &str) -> Arc<SparseVector> {
        self.cached_vector_sym(intern(text))
    }

    /// Symbol-keyed [`vector_of`](Self::vector_of).
    pub fn vector_of_sym(&self, sym: Symbol) -> Arc<SparseVector> {
        self.cached_vector_sym(sym)
    }

    /// The cosine similarity of two interpretation vectors when it reaches
    /// `threshold`, `None` otherwise.
    ///
    /// Pairs whose norm bound cannot reach the threshold are rejected
    /// without a dot product; the bound dominates the cosine, so the
    /// outcome is exactly `(cos >= threshold).then_some(cos)`.
    pub fn similarity_above(
        &self,
        a: &SparseVector,
        b: &SparseVector,
        threshold: f64,
    ) -> Option<f64> {
        if kernel::cosine_upper_bound(a, b) < threshold - kernel::PRUNE_MARGIN {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if ppchecker_obs::enabled() {
            obs_counters().kernel_dots.inc();
        }
        let cos = kernel::cosine(a, b);
        (cos >= threshold).then_some(cos)
    }

    /// `similarity(a, b) >= threshold`, decided without the dot product
    /// when the norm bound already rules the pair out (exact: the bound
    /// dominates the cosine, so a pruned answer is the answer the full
    /// computation would give).
    fn decide(&self, ca: &SparseVector, cb: &SparseVector, threshold: f64) -> bool {
        self.similarity_above(ca, cb, threshold).is_some()
    }

    /// Decides the paper's "matching" predicate: whether two pieces of
    /// information refer to the same thing (similarity ≥ threshold).
    ///
    /// A thin wrapper over [`same_thing_sym`](Self::same_thing_sym), so
    /// text-keyed and symbol-keyed callers share the pair-verdict memo.
    pub fn same_thing(&self, a: &str, b: &str) -> bool {
        self.same_thing_sym(intern(a), intern(b))
    }

    /// [`same_thing`](Self::same_thing) at a caller-chosen threshold
    /// (norm-bound pruned, verdict-exact for any threshold).
    pub fn same_thing_at(&self, a: &str, b: &str, threshold: f64) -> bool {
        self.same_thing_sym_at(intern(a), intern(b), threshold)
    }

    /// Symbol-keyed [`same_thing`](Self::same_thing); verdicts at the
    /// paper threshold are memoized per canonical symbol pair.
    pub fn same_thing_sym(&self, a: Symbol, b: Symbol) -> bool {
        self.same_thing_sym_at(a, b, SIMILARITY_THRESHOLD)
    }

    /// [`same_thing_sym`](Self::same_thing_sym) at a caller-chosen
    /// threshold. Only the paper threshold consults the pair memo (a
    /// verdict is threshold-specific); other thresholds still get the
    /// vector memo and the norm-bound prune.
    pub fn same_thing_sym_at(&self, a: Symbol, b: Symbol, threshold: f64) -> bool {
        let memoizable = threshold == SIMILARITY_THRESHOLD;
        if memoizable {
            if let Some(verdict) = self.pair_memo.get(a, b) {
                return verdict;
            }
        }
        let verdict =
            self.decide(&self.cached_vector_sym(a), &self.cached_vector_sym(b), threshold);
        if memoizable {
            self.pair_memo.insert(a, b, verdict);
        }
        verdict
    }
}

/// Cosine similarity between sparse concept vectors (reference path).
///
/// Routed through the same merge kernel as the CSR hot path
/// ([`kernel::merge_dot`]) after sorting the map entries.
pub fn cosine(a: &ConceptVector, b: &ConceptVector) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    fn sorted(m: &ConceptVector) -> (Vec<u32>, Vec<f64>) {
        let mut v: Vec<(u32, f64)> = m.iter().map(|(&c, &w)| (c as u32, w)).collect();
        v.sort_unstable_by_key(|&(c, _)| c);
        v.into_iter().unzip()
    }
    let ((ia, wa), (ib, wb)) = (sorted(a), sorted(b));
    let dot = kernel::merge_dot(&ia, &wa, &ib, &wb);
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Stopwords excluded from interpretation.
const STOPWORDS: &[&str] = &[
    "the", "a", "an", "of", "to", "and", "or", "in", "on", "at", "by", "for", "with", "from", "is",
    "are", "was", "were", "be", "been", "will", "would", "can", "could", "may", "might", "we",
    "you", "your", "our", "their", "this", "that", "these", "those", "it", "its", "as", "not",
    "no", "any", "all", "such", "other", "about", "into", "if", "when", "than", "then",
];

/// Extracts normalized terms: lowercase alphabetic tokens, stopwords
/// removed, naive plural stripping so "cookies" matches "cookie".
fn terms(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '-')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .filter(|t| !STOPWORDS.contains(&t.as_str()) && t.len() > 1)
        .map(|t| singularize(&t))
        .collect()
}

/// Nouns whose singular ends in "-ie": their "-ies" plural is just the
/// singular plus "s", so stripping it must not rewrite the ending to "y"
/// ("cookies" → "cookie", not "cooky").
const IE_SINGULARS: &[&str] = &[
    "birdie", "brownie", "calorie", "cookie", "freebie", "genie", "goalie", "laddie", "movie",
    "newbie", "pixie", "prairie", "rookie", "selfie", "smoothie", "sortie", "veggie", "zombie",
];

fn singularize(t: &str) -> String {
    if t.ends_with("ies") && t.len() > 4 {
        let minus_s = &t[..t.len() - 1];
        let before = t.as_bytes()[t.len() - 4];
        if IE_SINGULARS.contains(&minus_s) || matches!(before, b'a' | b'e' | b'i' | b'o' | b'u') {
            // "-ie" singulars and vowel+"ies" words pluralize by bare "s";
            // only consonant+"ies" comes from a "-y" singular.
            return minus_s.to_string();
        }
        format!("{}y", &t[..t.len() - 3])
    } else if t.ends_with('s')
        && !t.ends_with("ss")
        && !matches!(t, "gps" | "sms" | "its" | "this" | "analytics" | "diagnostics" | "address")
        && t.len() > 3
    {
        t[..t.len() - 1].to_string()
    } else {
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esa() -> &'static Interpreter {
        Interpreter::shared()
    }

    #[test]
    fn self_similarity_is_one() {
        let s = esa().similarity("location", "location");
        assert!((s - 1.0).abs() < 1e-9, "self similarity was {s}");
    }

    #[test]
    fn symmetry() {
        let ab = esa().similarity("location data", "gps coordinates");
        let ba = esa().similarity("gps coordinates", "location data");
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn same_concept_phrases_match() {
        assert!(esa().same_thing("location", "location information"));
        assert!(esa().same_thing("contact", "contacts list"));
        assert!(esa().same_thing("device id", "device identifier"));
        assert!(esa().same_thing("phone number", "telephone number"));
    }

    #[test]
    fn related_terms_match_via_shared_concept() {
        assert!(esa().same_thing("latitude", "location"));
        assert!(esa().same_thing("gps", "location"));
    }

    #[test]
    fn different_concepts_do_not_match() {
        assert!(!esa().same_thing("location", "device id"));
        assert!(!esa().same_thing("contact", "calendar"));
        assert!(!esa().same_thing("camera", "sms"));
        assert!(!esa().same_thing("location", "cookie"));
    }

    #[test]
    fn unrelated_domains_are_dissimilar() {
        assert!(esa().similarity("location", "game score") < 0.3);
        assert!(esa().similarity("contact list", "weather forecast") < 0.3);
    }

    #[test]
    fn paper_false_positive_reproduced() {
        // §V-E: ESA mistakenly matched "information" (StaffMark) with
        // "personal information" (AdMob) — the reproduction preserves this
        // failure mode.
        assert!(esa().same_thing("information", "personal information"));
    }

    #[test]
    fn unknown_terms_yield_zero() {
        assert_eq!(esa().similarity("zzzqqq", "location"), 0.0);
        assert_eq!(esa().similarity("", ""), 0.0);
    }

    #[test]
    fn similarity_in_unit_range() {
        for (a, b) in [
            ("location", "contacts"),
            ("personal information", "data"),
            ("camera photos", "pictures"),
        ] {
            let s = esa().similarity(a, b);
            assert!((0.0..=1.0).contains(&s), "similarity({a},{b}) = {s}");
        }
    }

    #[test]
    fn plural_invariance() {
        let s1 = esa().similarity("cookie", "cookies");
        assert!(s1 > 0.99);
    }

    #[test]
    fn singularize_consonant_ies_becomes_y() {
        assert_eq!(singularize("categories"), "category");
        assert_eq!(singularize("policies"), "policy");
        assert_eq!(singularize("parties"), "party");
    }

    #[test]
    fn singularize_ie_nouns_keep_their_ending() {
        assert_eq!(singularize("cookies"), "cookie");
        assert_eq!(singularize("movies"), "movie");
        assert_eq!(singularize("selfies"), "selfie");
        assert_eq!(singularize("zombies"), "zombie");
    }

    #[test]
    fn singular_and_plural_map_to_the_same_term() {
        for (singular, plural) in [
            ("cookie", "cookies"),
            ("movie", "movies"),
            ("category", "categories"),
            ("policy", "policies"),
        ] {
            assert_eq!(terms(singular), terms(plural), "{singular} vs {plural}");
        }
    }

    #[test]
    fn threshold_predicate_matches_exact_similarity() {
        // The norm-bound prune and the pair memo must be invisible at the
        // verdict level: every predicate answer equals the exact
        // similarity compared against the threshold — asked twice, so the
        // second round is served by the memo.
        let phrases = ["location", "device id", "cookie", "personal information", "game score"];
        for _ in 0..2 {
            for a in phrases {
                for b in phrases {
                    assert_eq!(
                        esa().same_thing(a, b),
                        esa().similarity(a, b) >= SIMILARITY_THRESHOLD,
                        "verdict diverged for ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_memo_serves_repeats() {
        use ppchecker_nlp::intern::intern;
        let esa = esa();
        let (a, b) = (intern("memo probe alpha location"), intern("memo probe beta gps"));
        let first = esa.same_thing_sym(a, b);
        let (_, misses_before) = esa.pair_memo_stats();
        let second = esa.same_thing_sym(a, b);
        let (hits_after, misses_after) = esa.pair_memo_stats();
        assert_eq!(first, second);
        assert_eq!(misses_after, misses_before, "repeat must not miss");
        assert!(hits_after > 0);
        // Symmetric ask shares the canonical entry.
        assert_eq!(esa.same_thing_sym(b, a), first);
        assert!(esa.pair_memo_len() > 0);
    }

    #[test]
    fn custom_threshold_bypasses_the_memo_but_stays_exact() {
        use ppchecker_nlp::intern::intern;
        let esa = esa();
        let (a, b) = (intern("location"), intern("latitude"));
        let sim = esa.similarity_sym(a, b);
        for threshold in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(esa.same_thing_sym_at(a, b, threshold), sim >= threshold);
        }
    }

    #[test]
    fn pruning_fires_and_stays_exact() {
        let esa = esa();
        let before = esa.pruned_comparisons();
        // Disjoint-domain pairs have tiny norm bounds: the predicate
        // should answer at least some of them without a dot product.
        for (a, b) in [("location", "game score text chat"), ("cookie", "weather forecast")] {
            assert_eq!(esa.same_thing(a, b), esa.similarity(a, b) >= SIMILARITY_THRESHOLD);
        }
        assert!(esa.pruned_comparisons() >= before, "prune counter is monotonic");
    }
}

#[cfg(test)]
mod interpretation_tests {
    use super::*;

    #[test]
    fn interpret_yields_concept_weights() {
        let esa = Interpreter::shared();
        let v = esa.interpret("location gps latitude");
        assert!(!v.is_empty());
        assert!(v.values().all(|w| *w > 0.0));
        assert!(v.keys().all(|&c| c < esa.concept_count()));
    }

    #[test]
    fn interpret_of_unknown_text_is_empty() {
        let esa = Interpreter::shared();
        assert!(esa.interpret("qqq zzz xxx").is_empty());
        assert!(esa.interpret_sparse("qqq zzz xxx").is_empty());
    }

    #[test]
    fn sparse_and_reference_interpretations_agree() {
        let esa = Interpreter::shared();
        for text in ["location gps latitude", "personal information data", "camera photo"] {
            let reference = esa.interpret(text);
            let sparse = esa.interpret_sparse(text);
            assert_eq!(reference.len(), sparse.len());
            for (c, w) in sparse.pairs() {
                let r = reference[&(c as usize)];
                assert!((r - w as f64).abs() < 1e-6, "concept {c}: {r} vs {w}");
            }
        }
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let mut a = ConceptVector::new();
        a.insert(0, 1.0);
        let mut b = ConceptVector::new();
        b.insert(1, 1.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &a), 1.0);
    }

    #[test]
    fn vector_cache_memoizes_and_preserves_results() {
        let corpus = [
            Concept { title: "A", text: "alpha beta gamma" },
            Concept { title: "B", text: "delta epsilon zeta" },
        ];
        let esa = Interpreter::new(&corpus);
        let first = esa.similarity("alpha beta", "gamma");
        let (h0, m0) = esa.vector_cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, 2);
        let second = esa.similarity("alpha beta", "gamma");
        let (h1, m1) = esa.vector_cache_stats();
        assert_eq!(h1, 2, "repeat lookup served from cache");
        assert_eq!(m1, 2, "a miss is only counted for the winning insert");
        assert_eq!(first, second);
        assert_eq!(esa.vector_cache_len(), 2);
    }

    #[test]
    fn custom_corpus_interpreter() {
        let corpus = [
            Concept { title: "A", text: "alpha beta gamma" },
            Concept { title: "B", text: "delta epsilon zeta" },
        ];
        let esa = Interpreter::new(&corpus);
        assert_eq!(esa.concept_count(), 2);
        assert!(esa.similarity("alpha beta", "gamma") > 0.9);
        assert_eq!(esa.similarity("alpha", "delta"), 0.0);
    }
}
