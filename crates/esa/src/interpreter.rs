//! The ESA interpreter: term → concept-space vectors and text similarity.

use crate::kb::{concepts, Concept};
use ppchecker_nlp::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Similarity threshold adopted by the paper (following AutoCog): two texts
/// whose ESA cosine similarity reaches this value "refer to the same thing".
pub const SIMILARITY_THRESHOLD: f64 = 0.67;

/// A sparse vector in concept space: `concept index → weight`.
pub type ConceptVector = HashMap<usize, f64>;

/// Explicit Semantic Analysis interpreter over the bundled knowledge base.
///
/// Builds a TF-IDF inverted index from terms to concepts once; texts are
/// interpreted as the TF-weighted sum of their terms' concept vectors and
/// compared by cosine similarity.
///
/// # Examples
///
/// ```
/// use ppchecker_esa::Interpreter;
/// let esa = Interpreter::shared();
/// assert!(esa.similarity("location", "location information") > 0.67);
/// assert!(esa.similarity("location", "device id") < 0.67);
/// ```
#[derive(Debug)]
pub struct Interpreter {
    /// term → vector of (concept, tf-idf weight).
    index: HashMap<String, Vec<(usize, f64)>>,
    n_concepts: usize,
    /// Memoized interpretation vectors, keyed by interned [`Symbol`]
    /// (text → vector + norm). Policy phrases and resource names repeat
    /// massively across a corpus, so [`similarity`](Self::similarity) is
    /// served from here — one `u32` hash probe, no string hashing — after
    /// the first interpretation of each text. Bounded by
    /// [`VECTOR_CACHE_CAP`]; thread-safe. Texts are only interned once the
    /// cache admits them, so the cap also bounds interner growth from this
    /// path.
    vector_cache: RwLock<HashMap<Symbol, Arc<CachedVector>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Upper bound on memoized interpretation vectors; past this the cache
/// stops admitting new texts (hits on existing entries still count).
const VECTOR_CACHE_CAP: usize = 65_536;

/// An interpretation vector with its precomputed L2 norm.
#[derive(Debug)]
struct CachedVector {
    vector: ConceptVector,
    norm: f64,
}

impl Interpreter {
    /// Builds an interpreter over the given concept corpus.
    pub fn new(corpus: &[Concept]) -> Self {
        let n = corpus.len();
        // term frequencies per concept
        let mut tf: Vec<HashMap<String, f64>> = Vec::with_capacity(n);
        let mut df: HashMap<String, usize> = HashMap::new();
        for concept in corpus {
            let mut counts: HashMap<String, f64> = HashMap::new();
            for term in terms(concept.text) {
                *counts.entry(term).or_insert(0.0) += 1.0;
            }
            for term in counts.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
            tf.push(counts);
        }
        let mut index: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
        for (ci, counts) in tf.iter().enumerate() {
            for (term, &count) in counts {
                let idf = ((n as f64 + 1.0) / (df[term] as f64 + 1.0)).ln() + 1.0;
                let w = (1.0 + count.ln()) * idf;
                index.entry(term.clone()).or_default().push((ci, w));
            }
        }
        // L2-normalize each term's interpretation vector so frequent terms
        // don't dominate purely by article length.
        for vec in index.values_mut() {
            let norm = vec.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (_, w) in vec.iter_mut() {
                    *w /= norm;
                }
            }
        }
        Interpreter {
            index,
            n_concepts: n,
            vector_cache: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Returns the process-wide interpreter over the bundled knowledge base.
    pub fn shared() -> &'static Interpreter {
        static ESA: OnceLock<Interpreter> = OnceLock::new();
        ESA.get_or_init(|| Interpreter::new(concepts()))
    }

    /// Number of concepts in the knowledge base.
    pub fn concept_count(&self) -> usize {
        self.n_concepts
    }

    /// Maps a text to its concept-space interpretation vector.
    pub fn interpret(&self, text: &str) -> ConceptVector {
        let mut v: ConceptVector = HashMap::new();
        for term in terms(text) {
            if let Some(tv) = self.index.get(&term) {
                for &(ci, w) in tv {
                    *v.entry(ci).or_insert(0.0) += w;
                }
            }
        }
        v
    }

    /// The memoized interpretation of `text`, with its norm. Probes the
    /// interner without interning first: a text that was never interned
    /// cannot be cached yet.
    fn cached_vector(&self, text: &str) -> Arc<CachedVector> {
        if let Some(sym) = Interner::global().get(text) {
            return self.cached_vector_sym(sym);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(self.compute_vector(text));
        let mut cache = self.vector_cache.write().expect("esa cache lock");
        if cache.len() < VECTOR_CACHE_CAP {
            // Intern only when the cache admits the text, so a full cache
            // never grows the interner.
            let sym = Interner::global().intern(text);
            // Two threads may race to interpret the same text; both
            // compute the same pure result, so either insert wins.
            cache.entry(sym).or_insert_with(|| Arc::clone(&entry));
        }
        entry
    }

    /// Symbol-keyed variant of [`cached_vector`](Self::cached_vector).
    fn cached_vector_sym(&self, sym: Symbol) -> Arc<CachedVector> {
        if let Some(hit) = self.vector_cache.read().expect("esa cache lock").get(&sym) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(self.compute_vector(sym.as_str()));
        let mut cache = self.vector_cache.write().expect("esa cache lock");
        if cache.len() < VECTOR_CACHE_CAP {
            cache.entry(sym).or_insert_with(|| Arc::clone(&entry));
        }
        entry
    }

    fn compute_vector(&self, text: &str) -> CachedVector {
        let vector = self.interpret(text);
        let norm = vector.values().map(|v| v * v).sum::<f64>().sqrt();
        CachedVector { vector, norm }
    }

    /// `(hits, misses)` of the interpretation-vector cache.
    pub fn vector_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Number of memoized interpretation vectors.
    pub fn vector_cache_len(&self) -> usize {
        self.vector_cache.read().expect("esa cache lock").len()
    }

    /// Cosine similarity of two texts in concept space, in `[0, 1]`.
    ///
    /// Returns `0.0` when either text has no known terms.
    ///
    /// Interpretation vectors are memoized per text (see
    /// [`vector_cache_stats`](Self::vector_cache_stats)); the memo is a
    /// pure-function cache, so results are identical with or without it.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        Self::cosine_cached(&self.cached_vector(a), &self.cached_vector(b))
    }

    /// Symbol-keyed similarity: both interpretation vectors are looked up
    /// (and memoized) under the symbols themselves.
    pub fn similarity_sym(&self, a: Symbol, b: Symbol) -> f64 {
        Self::cosine_cached(&self.cached_vector_sym(a), &self.cached_vector_sym(b))
    }

    fn cosine_cached(ca: &CachedVector, cb: &CachedVector) -> f64 {
        if ca.norm == 0.0 || cb.norm == 0.0 {
            return 0.0;
        }
        let (small, large) = if ca.vector.len() <= cb.vector.len() {
            (&ca.vector, &cb.vector)
        } else {
            (&cb.vector, &ca.vector)
        };
        let dot: f64 = small.iter().filter_map(|(k, va)| large.get(k).map(|vb| va * vb)).sum();
        (dot / (ca.norm * cb.norm)).clamp(0.0, 1.0)
    }

    /// Decides the paper's "matching" predicate: whether two pieces of
    /// information refer to the same thing (similarity ≥ threshold).
    pub fn same_thing(&self, a: &str, b: &str) -> bool {
        self.similarity(a, b) >= SIMILARITY_THRESHOLD
    }

    /// Symbol-keyed [`same_thing`](Self::same_thing).
    pub fn same_thing_sym(&self, a: Symbol, b: Symbol) -> bool {
        self.similarity_sym(a, b) >= SIMILARITY_THRESHOLD
    }
}

/// Cosine similarity between sparse concept vectors.
pub fn cosine(a: &ConceptVector, b: &ConceptVector) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().filter_map(|(k, va)| large.get(k).map(|vb| va * vb)).sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Stopwords excluded from interpretation.
const STOPWORDS: &[&str] = &[
    "the", "a", "an", "of", "to", "and", "or", "in", "on", "at", "by", "for", "with", "from", "is",
    "are", "was", "were", "be", "been", "will", "would", "can", "could", "may", "might", "we",
    "you", "your", "our", "their", "this", "that", "these", "those", "it", "its", "as", "not",
    "no", "any", "all", "such", "other", "about", "into", "if", "when", "than", "then",
];

/// Extracts normalized terms: lowercase alphabetic tokens, stopwords
/// removed, naive plural stripping so "cookies" matches "cookie".
fn terms(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '-')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .filter(|t| !STOPWORDS.contains(&t.as_str()) && t.len() > 1)
        .map(|t| singularize(&t))
        .collect()
}

fn singularize(t: &str) -> String {
    if t.ends_with("ies") && t.len() > 4 {
        format!("{}y", &t[..t.len() - 3])
    } else if t.ends_with('s')
        && !t.ends_with("ss")
        && !matches!(t, "gps" | "sms" | "its" | "this" | "analytics" | "diagnostics" | "address")
        && t.len() > 3
    {
        t[..t.len() - 1].to_string()
    } else {
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esa() -> &'static Interpreter {
        Interpreter::shared()
    }

    #[test]
    fn self_similarity_is_one() {
        let s = esa().similarity("location", "location");
        assert!((s - 1.0).abs() < 1e-9, "self similarity was {s}");
    }

    #[test]
    fn symmetry() {
        let ab = esa().similarity("location data", "gps coordinates");
        let ba = esa().similarity("gps coordinates", "location data");
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn same_concept_phrases_match() {
        assert!(esa().same_thing("location", "location information"));
        assert!(esa().same_thing("contact", "contacts list"));
        assert!(esa().same_thing("device id", "device identifier"));
        assert!(esa().same_thing("phone number", "telephone number"));
    }

    #[test]
    fn related_terms_match_via_shared_concept() {
        assert!(esa().same_thing("latitude", "location"));
        assert!(esa().same_thing("gps", "location"));
    }

    #[test]
    fn different_concepts_do_not_match() {
        assert!(!esa().same_thing("location", "device id"));
        assert!(!esa().same_thing("contact", "calendar"));
        assert!(!esa().same_thing("camera", "sms"));
        assert!(!esa().same_thing("location", "cookie"));
    }

    #[test]
    fn unrelated_domains_are_dissimilar() {
        assert!(esa().similarity("location", "game score") < 0.3);
        assert!(esa().similarity("contact list", "weather forecast") < 0.3);
    }

    #[test]
    fn paper_false_positive_reproduced() {
        // §V-E: ESA mistakenly matched "information" (StaffMark) with
        // "personal information" (AdMob) — the reproduction preserves this
        // failure mode.
        assert!(esa().same_thing("information", "personal information"));
    }

    #[test]
    fn unknown_terms_yield_zero() {
        assert_eq!(esa().similarity("zzzqqq", "location"), 0.0);
        assert_eq!(esa().similarity("", ""), 0.0);
    }

    #[test]
    fn similarity_in_unit_range() {
        for (a, b) in [
            ("location", "contacts"),
            ("personal information", "data"),
            ("camera photos", "pictures"),
        ] {
            let s = esa().similarity(a, b);
            assert!((0.0..=1.0).contains(&s), "similarity({a},{b}) = {s}");
        }
    }

    #[test]
    fn plural_invariance() {
        let s1 = esa().similarity("cookie", "cookies");
        assert!(s1 > 0.99);
    }
}

#[cfg(test)]
mod interpretation_tests {
    use super::*;

    #[test]
    fn interpret_yields_concept_weights() {
        let esa = Interpreter::shared();
        let v = esa.interpret("location gps latitude");
        assert!(!v.is_empty());
        assert!(v.values().all(|w| *w > 0.0));
        assert!(v.keys().all(|&c| c < esa.concept_count()));
    }

    #[test]
    fn interpret_of_unknown_text_is_empty() {
        let esa = Interpreter::shared();
        assert!(esa.interpret("qqq zzz xxx").is_empty());
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let mut a = ConceptVector::new();
        a.insert(0, 1.0);
        let mut b = ConceptVector::new();
        b.insert(1, 1.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &a), 1.0);
    }

    #[test]
    fn vector_cache_memoizes_and_preserves_results() {
        let corpus = [
            Concept { title: "A", text: "alpha beta gamma" },
            Concept { title: "B", text: "delta epsilon zeta" },
        ];
        let esa = Interpreter::new(&corpus);
        let first = esa.similarity("alpha beta", "gamma");
        let (h0, m0) = esa.vector_cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, 2);
        let second = esa.similarity("alpha beta", "gamma");
        let (h1, m1) = esa.vector_cache_stats();
        assert_eq!(h1, 2, "repeat lookup served from cache");
        assert_eq!(m1, 2);
        assert_eq!(first, second);
        assert_eq!(esa.vector_cache_len(), 2);
    }

    #[test]
    fn custom_corpus_interpreter() {
        let corpus = [
            Concept { title: "A", text: "alpha beta gamma" },
            Concept { title: "B", text: "delta epsilon zeta" },
        ];
        let esa = Interpreter::new(&corpus);
        assert_eq!(esa.concept_count(), 2);
        assert!(esa.similarity("alpha beta", "gamma") > 0.9);
        assert_eq!(esa.similarity("alpha", "delta"), 0.0);
    }
}
