//! The CSR sparse-vector kernel behind ESA similarity.
//!
//! The ESA hot path is "dot product of two small sparse vectors", asked
//! millions of times per corpus run. This module keeps all of that math on
//! flat sorted arrays:
//!
//! - [`CsrIndex`] compiles the term → concept inverted index into
//!   compressed-sparse-row form — one shared `Vec<u32>` of concept ids, one
//!   shared `Vec<f32>` of weights, and per-term offsets — built once in
//!   `Interpreter::new`. A term's interpretation is a contiguous slice pair,
//!   not a heap-allocated map.
//! - [`SparseVector`] is an interpretation vector as sorted concept ids
//!   with parallel weights (structure-of-arrays: the id scan of the merge
//!   never drags weight bytes through cache) plus a 128-bit concept
//!   occupancy mask, its L2 norm and its max weight, all precomputed.
//! - Dot products are a branchless linear two-pointer merge
//!   ([`merge_dot`]) — sequential reads, no hashing, no probing — behind
//!   two O(1) rejections: the mask intersection proves disjointness
//!   without touching the arrays, and [`cosine_upper_bound`] proves
//!   "below threshold" for the predicate without computing the dot
//!   (see DESIGN.md §10 for the exactness argument).
//!
//! Weights are stored as `f32` (the tf-idf values carry nowhere near 24 bits
//! of signal); all accumulation happens in `f64`, and the public similarity
//! API stays `f64`.

/// A sparse concept-space vector: strictly-sorted concept ids with
/// parallel weights, plus precomputed occupancy mask, L2 norm and maximum
/// weight.
///
/// The norm and max weight are derived from the stored (f32-rounded)
/// weights so every consumer sees one consistent quantization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    ids: Vec<u32>,
    weights: Vec<f32>,
    /// Bit `id % 128` set for every stored concept id: a zero mask
    /// intersection proves two vectors share no concept (collisions only
    /// ever create false overlap, handled by the merge).
    mask: u128,
    /// `true` when every id is < 128, i.e. the mask is an *exact* occupancy
    /// set rather than a collision filter. Two exact vectors can dot by
    /// ranked mask intersection ([`crate::simd::mask_dot`]) instead of the
    /// merge — the paper KB has 75 concepts, so the entire real workload
    /// qualifies.
    mask_exact: bool,
    norm: f64,
    max_weight: f32,
    /// Hoisted prune factor `max_weight / norm` (`0.0` for empty vectors),
    /// so the norm-bound predicate is two multiplies with no division.
    prune_scale: f64,
}

impl SparseVector {
    /// Builds a vector from possibly unsorted, possibly duplicated
    /// `(concept, weight)` contributions; duplicates are summed in `f64`
    /// in their input order (so accumulation matches the HashMap reference
    /// implementation bit-for-bit before the final f32 rounding).
    pub fn from_contributions(mut contributions: Vec<(u32, f64)>) -> Self {
        contributions.sort_by_key(|&(c, _)| c); // stable: preserves input order per concept
        let mut coalesced: Vec<(u32, f64)> = Vec::with_capacity(contributions.len());
        for (concept, w) in contributions {
            match coalesced.last_mut() {
                Some((last, acc)) if *last == concept => *acc += w,
                _ => coalesced.push((concept, w)),
            }
        }
        Self::from_sorted_pairs(coalesced.into_iter().map(|(c, w)| (c, w as f32)).collect())
    }

    /// Builds a vector from already-sorted, already-coalesced pairs.
    pub fn from_sorted_pairs(pairs: Vec<(u32, f32)>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "pairs must be strictly sorted");
        let mut ids = Vec::with_capacity(pairs.len());
        let mut weights = Vec::with_capacity(pairs.len());
        let mut mask = 0u128;
        let mut norm_sq = 0.0f64;
        let mut max_weight = 0.0f32;
        for (concept, w) in pairs {
            ids.push(concept);
            weights.push(w);
            mask |= 1u128 << (concept % 128);
            norm_sq += (w as f64) * (w as f64);
            max_weight = max_weight.max(w);
        }
        // Ids are strictly sorted, so the last one is the largest.
        let mask_exact = ids.last().is_none_or(|&id| id < 128);
        let norm = norm_sq.sqrt();
        let prune_scale = if norm == 0.0 { 0.0 } else { max_weight as f64 * (1.0 / norm) };
        SparseVector { ids, weights, mask, mask_exact, norm, max_weight, prune_scale }
    }

    /// The sorted concept ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The weights, parallel to [`ids`](Self::ids).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The vector as `(concept id, weight)` pairs (allocates; for tests
    /// and interop — the hot path reads the parallel arrays directly).
    pub fn pairs(&self) -> Vec<(u32, f32)> {
        self.ids.iter().copied().zip(self.weights.iter().copied()).collect()
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the vector has no known-term mass.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Precomputed L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Largest single weight.
    pub fn max_weight(&self) -> f32 {
        self.max_weight
    }

    /// Hoisted norm-bound prune factor `max_weight / norm` (the reciprocal
    /// is folded in at construction; `0.0` for empty vectors). The cosine
    /// upper bound of a pair is `min(|a|,|b|) · a.prune_scale() ·
    /// b.prune_scale()` — no division on the prune path.
    pub fn prune_scale(&self) -> f64 {
        self.prune_scale
    }
}

/// Dot product of two sorted sparse vectors (as parallel id/weight
/// slices) by branchless linear two-pointer merge, accumulated in `f64`.
/// Generic over the stored weight width so one merge loop serves both the
/// f32 kernel vectors and the retained f64 HashMap reference path
/// ([`crate::cosine`]).
#[inline]
pub fn merge_dot<A, B>(a_ids: &[u32], a_weights: &[A], b_ids: &[u32], b_weights: &[B]) -> f64
where
    A: Copy + Into<f64>,
    B: Copy + Into<f64>,
{
    debug_assert_eq!(a_ids.len(), a_weights.len());
    debug_assert_eq!(b_ids.len(), b_weights.len());
    let mut dot = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_ids.len() && j < b_ids.len() {
        let (ca, cb) = (a_ids[i], b_ids[j]);
        if ca == cb {
            dot += a_weights[i].into() * b_weights[j].into();
            i += 1;
            j += 1;
        } else {
            // Branchless advance: the comparison results are materialized
            // as 0/1 instead of predicted, so random id interleavings
            // don't stall the pipeline.
            i += (ca < cb) as usize;
            j += (cb < ca) as usize;
        }
    }
    dot
}

/// Exact cosine of two kernel vectors, clamped to `[0, 1]`; `0.0` when
/// either vector is empty. Provably-disjoint pairs (empty mask
/// intersection) return without touching the arrays.
#[inline]
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    if a.norm == 0.0 || b.norm == 0.0 || a.mask & b.mask == 0 {
        return 0.0;
    }
    (dot(a, b) / (a.norm * b.norm)).clamp(0.0, 1.0)
}

/// The dispatch-selected dot product behind [`cosine`]: ranked mask
/// intersection ([`crate::simd::mask_dot`]) when both vectors' ids fit
/// the exact 128-bit occupancy mask and SIMD is active, the (possibly
/// vectorized) id merge otherwise. Both accelerated paths find matches
/// differently but accumulate the scalar way (f64, ascending id), so the
/// result is bit-identical across dispatch levels — see [`crate::simd`].
#[inline]
pub fn dot(a: &SparseVector, b: &SparseVector) -> f64 {
    if a.mask_exact && b.mask_exact && crate::simd::simd_active() {
        crate::simd::mask_dot(a.mask, &a.weights, b.mask, &b.weights)
    } else {
        crate::simd::merge_dot_f32(&a.ids, &a.weights, &b.ids, &b.weights)
    }
}

/// A cheap upper bound on `cosine(a, b)`.
///
/// At most `min(|a|, |b|)` concept ids can coincide, and each coinciding
/// product is at most `max_w(a) · max_w(b)`, so
/// `dot(a, b) ≤ min(|a|,|b|) · max_w(a) · max_w(b)` — dividing by the norms
/// bounds the cosine. The per-vector factor `max_w / norm` is hoisted into
/// [`SparseVector::prune_scale`] at construction, so the predicate here is
/// two multiplies and no division. The bound never undercuts the true
/// cosine (beyond f64 rounding, which callers absorb with
/// [`PRUNE_MARGIN`]), so a threshold predicate may return `false` without
/// the merge whenever the bound falls below the threshold. Mask-disjoint
/// pairs bound to `0.0` exactly.
#[inline]
pub fn cosine_upper_bound(a: &SparseVector, b: &SparseVector) -> f64 {
    if a.norm == 0.0 || b.norm == 0.0 || a.mask & b.mask == 0 {
        return 0.0;
    }
    let overlap = a.len().min(b.len()) as f64;
    // Same association as simd::BoundSoa's scalar loop, so batch and
    // per-pair pruning agree bit-for-bit.
    let bound = (overlap * a.prune_scale) * b.prune_scale;
    bound.min(1.0)
}

/// Safety margin for norm-bound pruning: the predicate only prunes when
/// `bound < threshold - PRUNE_MARGIN`, absorbing f64 rounding in the bound
/// so a pruned `false` is always the verdict the exact cosine would give.
pub const PRUNE_MARGIN: f64 = 1e-9;

/// The term → concept inverted index in compressed-sparse-row layout.
///
/// Row `t` (a term's L2-normalized tf-idf interpretation) is the slice pair
/// `concept_ids[offsets[t]..offsets[t+1]]` / `weights[offsets[t]..offsets[t+1]]`,
/// sorted by concept id. Built once; lookups never allocate.
#[derive(Debug, Default)]
pub struct CsrIndex {
    term_ids: std::collections::HashMap<String, u32>,
    offsets: Vec<u32>,
    concept_ids: Vec<u32>,
    weights: Vec<f32>,
}

impl CsrIndex {
    /// Compiles per-term posting lists (each sorted by concept id, weights
    /// in f64 from the tf-idf build) into the flat CSR arrays.
    pub fn build<I, S>(rows: I) -> Self
    where
        I: IntoIterator<Item = (S, Vec<(u32, f64)>)>,
        S: Into<String>,
    {
        let mut index = CsrIndex { offsets: vec![0], ..CsrIndex::default() };
        for (term, postings) in rows {
            debug_assert!(
                postings.windows(2).all(|w| w[0].0 < w[1].0),
                "postings must be strictly sorted by concept id"
            );
            let id = index.offsets.len() as u32 - 1;
            index.term_ids.insert(term.into(), id);
            for (concept, w) in postings {
                index.concept_ids.push(concept);
                index.weights.push(w as f32);
            }
            index.offsets.push(index.concept_ids.len() as u32);
        }
        index
    }

    /// The row id of `term`, if the term occurs in the knowledge base.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.term_ids.get(term).copied()
    }

    /// The posting slices of row `id`.
    pub fn row(&self, id: u32) -> (&[u32], &[f32]) {
        let lo = self.offsets[id as usize] as usize;
        let hi = self.offsets[id as usize + 1] as usize;
        (&self.concept_ids[lo..hi], &self.weights[lo..hi])
    }

    /// Number of terms (rows).
    pub fn term_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored postings across all rows.
    pub fn posting_count(&self) -> usize {
        self.concept_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_sorted_pairs(pairs.to_vec())
    }

    #[test]
    fn dot_merges_shared_concepts_only() {
        let a = vector(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = vector(&[(1, 1.0), (2, 4.0), (5, 0.5)]);
        let dot = merge_dot(a.ids(), a.weights(), b.ids(), b.weights());
        assert!((dot - (2.0 * 4.0 + 3.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let a = vector(&[(3, 0.25), (7, 0.5), (9, 0.125)]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_or_empty_is_zero() {
        let a = vector(&[(0, 1.0)]);
        let b = vector(&[(1, 1.0)]);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &SparseVector::default()), 0.0);
    }

    #[test]
    fn mask_collisions_still_merge_exactly() {
        // Concepts 0 and 128 collide in the occupancy mask; the mask only
        // claims *possible* overlap, and the merge finds none.
        let a = vector(&[(0, 1.0)]);
        let b = vector(&[(128, 1.0)]);
        assert_eq!(cosine(&a, &b), 0.0);
        // A genuinely shared id alongside the collision still dots.
        let c = vector(&[(0, 1.0), (128, 1.0)]);
        assert!((cosine(&a, &c) - 1.0 / 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_dominates_cosine() {
        let a = vector(&[(0, 0.3), (4, 0.9), (6, 0.1)]);
        let b = vector(&[(0, 0.8), (4, 0.2), (9, 0.7), (11, 0.4)]);
        assert!(cosine_upper_bound(&a, &b) + PRUNE_MARGIN >= cosine(&a, &b));
        // Self-comparison: the bound must still dominate (here it exceeds 1
        // before clamping, so it is exactly 1 ≥ cosine = 1).
        assert!(cosine_upper_bound(&a, &a) + PRUNE_MARGIN >= cosine(&a, &a));
    }

    #[test]
    fn upper_bound_dominates_cosine_randomized() {
        // The prune predicate keeps a pair whenever
        // bound >= threshold - PRUNE_MARGIN; for that to be exact, the
        // (reciprocal-hoisted) bound must never undercut the true cosine
        // by more than PRUNE_MARGIN on any input.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut random_vector = |max_len: u64| {
            let len = (next() % max_len) as usize;
            let mut ids: Vec<u32> = (0..len).map(|_| (next() % 300) as u32).collect();
            ids.sort_unstable();
            ids.dedup();
            let pairs = ids.into_iter().map(|id| (id, (1 + next() % 997) as f32 / 300.0)).collect();
            SparseVector::from_sorted_pairs(pairs)
        };
        for _ in 0..3000 {
            let a = random_vector(50);
            let b = random_vector(50);
            let bound = cosine_upper_bound(&a, &b);
            let exact = cosine(&a, &b);
            assert!(
                bound + PRUNE_MARGIN >= exact,
                "bound {bound} undercuts cosine {exact} beyond PRUNE_MARGIN"
            );
        }
    }

    #[test]
    fn contributions_coalesce_in_order() {
        let v = SparseVector::from_contributions(vec![(5, 0.5), (2, 1.0), (5, 0.25), (2, 0.125)]);
        assert_eq!(v.pairs(), vec![(2, 1.125), (5, 0.75)]);
        assert_eq!(v.len(), 2);
        assert!((v.max_weight() - 1.125).abs() < 1e-9);
        let expected_norm = (1.125f64 * 1.125 + 0.75 * 0.75).sqrt();
        assert!((v.norm() - expected_norm).abs() < 1e-9);
    }

    #[test]
    fn csr_rows_round_trip() {
        let index = CsrIndex::build(vec![
            ("alpha", vec![(0, 0.5), (3, 1.0)]),
            ("beta", vec![(1, 0.25)]),
            ("gamma", Vec::new()),
        ]);
        assert_eq!(index.term_count(), 3);
        assert_eq!(index.posting_count(), 3);
        let alpha = index.term_id("alpha").unwrap();
        let (concepts, weights) = index.row(alpha);
        assert_eq!(concepts, &[0, 3]);
        assert_eq!(weights, &[0.5, 1.0]);
        let gamma = index.term_id("gamma").unwrap();
        assert_eq!(index.row(gamma).0.len(), 0);
        assert!(index.term_id("delta").is_none());
    }
}
