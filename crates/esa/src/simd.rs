//! Runtime-dispatched SIMD paths for the ESA kernel.
//!
//! Two loops dominate corpus runs: the CSR two-pointer merge behind
//! [`crate::kernel::cosine`] and the norm-bound prune in front of it.
//! This module vectorizes both with `std::arch` x86 intrinsics behind
//! one runtime dispatch decision, keeping the scalar loops in
//! [`crate::kernel`] as the always-available reference:
//!
//! * [`merge_dot_f32`] — the merge's *match finding* runs in SIMD: each
//!   id of the shorter ("rare") vector is broadcast and compared against
//!   an 8-lane (AVX2) or 4-lane (SSE2) block of the longer ("freq")
//!   vector, with blocks galloped forward past ids that cannot match.
//!   The *accumulation* stays scalar `f64`, one product per matching id
//!   in ascending id order — exactly the reference loop's order — so the
//!   SIMD dot is **bit-identical** to [`crate::kernel::merge_dot`], not
//!   merely close. (IEEE multiplication is commutative, so picking the
//!   rare side freely cannot change a single bit.)
//! * [`mask_dot`] — vectors whose concept ids all fall below 128 (the
//!   paper KB has 75 concepts, so that is the entire real workload) dot
//!   by *ranked mask intersection* instead of the merge: one 128-bit AND
//!   finds every common id, and hardware bit-manipulation (`tzcnt`,
//!   `popcnt`) recovers each weight index, making the cost O(matches)
//!   instead of O(|a| + |b|). Same ascending-id scalar accumulation,
//!   same bit-identity guarantee.
//! * [`BoundSoa`] — the norm-bound batch check over one-vs-many
//!   comparisons (the description analyzer's permission profiles) folds
//!   4 `f64` bounds per AVX2 step over structure-of-arrays inputs.
//!
//! Dispatch is decided once per process: `PPCHECKER_NO_SIMD=1` forces
//! the scalar reference, otherwise AVX2 is used when the CPU has it,
//! then SSE2 (x86-64 baseline), then scalar on other architectures.
//! [`force_scalar`] is the test/bench hook behind the differential
//! suites — flipping it at runtime is safe because every entry point
//! re-reads the dispatch word.

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch states for [`DISPATCH`].
const UNDECIDED: u8 = 0;
const SCALAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const AVX2: u8 = 3;

static DISPATCH: AtomicU8 = AtomicU8::new(UNDECIDED);

/// Environment + CPUID detection, run once (or again after
/// [`force_scalar`]`(false)`).
fn detect() -> u8 {
    let forced_off =
        std::env::var("PPCHECKER_NO_SIMD").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    if forced_off {
        return SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return AVX2;
        }
        SSE2
    }
    #[cfg(not(target_arch = "x86_64"))]
    SCALAR
}

#[inline]
fn dispatch() -> u8 {
    match DISPATCH.load(Ordering::Relaxed) {
        UNDECIDED => {
            let level = detect();
            DISPATCH.store(level, Ordering::Relaxed);
            level
        }
        level => level,
    }
}

/// `true` when a vector path (AVX2 or SSE2) is active.
pub fn simd_active() -> bool {
    dispatch() != SCALAR
}

/// Human-readable name of the active path (`"avx2"`, `"sse2"`,
/// `"scalar"`), for bench and metrics labels.
pub fn active_path() -> &'static str {
    match dispatch() {
        #[cfg(target_arch = "x86_64")]
        AVX2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        SSE2 => "sse2",
        _ => "scalar",
    }
}

/// Forces the scalar reference path (`true`) or re-runs detection
/// (`false`). Test and bench hook — the differential suites flip this to
/// compare both paths inside one process, which the env var (read once)
/// cannot do.
pub fn force_scalar(on: bool) {
    DISPATCH.store(if on { SCALAR } else { detect() }, Ordering::Relaxed);
}

/// Dot product of two sorted sparse `f32` vectors, accumulated in `f64`,
/// dispatching to the widest available SIMD match-finder. Bit-identical
/// to [`crate::kernel::merge_dot`] on every input (see module docs).
#[inline]
pub fn merge_dot_f32(a_ids: &[u32], a_w: &[f32], b_ids: &[u32], b_w: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        let (r_ids, r_w, f_ids, f_w) = if a_ids.len() <= b_ids.len() {
            (a_ids, a_w, b_ids, b_w)
        } else {
            (b_ids, b_w, a_ids, a_w)
        };
        match dispatch() {
            // SAFETY: dispatch() returns AVX2/SSE2 only after the CPUID
            // check in detect() proved the feature is present.
            AVX2 => return unsafe { merge_dot_avx2(r_ids, r_w, f_ids, f_w) },
            SSE2 => return unsafe { merge_dot_sse2(r_ids, r_w, f_ids, f_w) },
            _ => {}
        }
    }
    crate::kernel::merge_dot(a_ids, a_w, b_ids, b_w)
}

/// Dot product of two *exact-mask* sparse vectors (every concept id
/// < 128, so bit `id` of the mask is set iff the vector stores id) by
/// ranked intersection: `a_mask & b_mask` enumerates the common ids in
/// ascending order, and the weight index of id `c` in a vector is the
/// popcount of its mask below bit `c` — exactly the CSR position,
/// because ids are strictly sorted. Accumulation is the same f64
/// ascending-id sum as [`crate::kernel::merge_dot`], so the result is
/// bit-identical to the merge on every eligible input.
///
/// Callers gate on [`simd_active`] so `PPCHECKER_NO_SIMD` and
/// [`force_scalar`] disable this path along with the vector merges.
#[inline]
pub fn mask_dot(a_mask: u128, a_w: &[f32], b_mask: u128, b_w: &[f32]) -> f64 {
    let mut common = a_mask & b_mask;
    let mut dot = 0.0f64;
    while common != 0 {
        let bit = common.trailing_zeros();
        let below = (1u128 << bit) - 1;
        let ia = (a_mask & below).count_ones() as usize;
        let ib = (b_mask & below).count_ones() as usize;
        dot += a_w[ia] as f64 * b_w[ib] as f64;
        common &= common - 1;
    }
    dot
}

/// The shared shape of both x86 match-finders, generated per lane width.
/// For each rare id: gallop the freq block pointer past blocks whose last
/// lane is still below the id, then compare the broadcast id against one
/// block and fold the (at most one) hit into the scalar `f64` sum. The
/// remainder past the last full block continues the scalar merge **on the
/// same accumulator** — summing the tail separately and adding it would
/// reassociate the sum and break bit-identity. The resumption point
/// `(i, j)` is sound: every freq id before `j` is smaller than every
/// unprocessed rare id.
macro_rules! x86_merge_dot {
    ($name:ident, $feature:literal, $lanes:expr, $eq_mask:expr) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = $feature)]
        unsafe fn $name(rare_ids: &[u32], rare_w: &[f32], freq_ids: &[u32], freq_w: &[f32]) -> f64 {
            const LANES: usize = $lanes;
            let n = freq_ids.len();
            let mut dot = 0.0f64;
            let mut i = 0usize;
            let mut j = 0usize;
            while i < rare_ids.len() && j + LANES <= n {
                let v = rare_ids[i];
                while j + LANES <= n && freq_ids[j + LANES - 1] < v {
                    j += LANES;
                }
                if j + LANES > n {
                    break;
                }
                // SAFETY: j + LANES <= n bounds the unaligned block load.
                let mask: i32 = unsafe { $eq_mask(freq_ids.as_ptr().add(j), v) };
                if mask != 0 {
                    // Strictly-sorted ids: at most one lane matches.
                    let k = mask.trailing_zeros() as usize;
                    dot += rare_w[i] as f64 * freq_w[j + k] as f64;
                }
                i += 1;
            }
            while i < rare_ids.len() && j < n {
                let (cr, cf) = (rare_ids[i], freq_ids[j]);
                if cr == cf {
                    dot += rare_w[i] as f64 * freq_w[j] as f64;
                    i += 1;
                    j += 1;
                } else {
                    i += (cr < cf) as usize;
                    j += (cf < cr) as usize;
                }
            }
            dot
        }
    };
}

x86_merge_dot!(merge_dot_avx2, "avx2", 8, |p: *const u32, v: u32| {
    use std::arch::x86_64::*;
    let block = _mm256_loadu_si256(p as *const __m256i);
    let eq = _mm256_cmpeq_epi32(block, _mm256_set1_epi32(v as i32));
    _mm256_movemask_ps(_mm256_castsi256_ps(eq))
});

x86_merge_dot!(merge_dot_sse2, "sse2", 4, |p: *const u32, v: u32| {
    use std::arch::x86_64::*;
    let block = _mm_loadu_si128(p as *const __m128i);
    let eq = _mm_cmpeq_epi32(block, _mm_set1_epi32(v as i32));
    _mm_movemask_ps(_mm_castsi128_ps(eq))
});

/// Structure-of-arrays prune inputs for a fixed set of vectors, built
/// once and checked against many queries: per-vector entry count and
/// prune scale (`max_weight / norm`, the reciprocal hoisted at
/// construction — see [`crate::kernel::SparseVector::prune_scale`]).
///
/// [`survivors`](Self::survivors) computes the norm upper bound
/// `min(|q|, |vᵢ|) · scale(q) · scale(vᵢ)` for every vector in 4-wide
/// `f64` lanes (AVX2) or scalar, writing one `bool` per vector: `true`
/// when the bound reaches `threshold - PRUNE_MARGIN` and the pair still
/// needs its exact dot. The expression order is identical in both paths,
/// and the margin absorbs the (few-ulp) rounding of the hoisted
/// reciprocals, so a `false` is always the verdict the exact cosine
/// would give.
#[derive(Debug, Default, Clone)]
pub struct BoundSoa {
    lens: Vec<f64>,
    scales: Vec<f64>,
}

impl BoundSoa {
    /// Builds the SoA arrays from a vector set.
    pub fn build<'a, I>(vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a crate::kernel::SparseVector>,
    {
        let mut soa = BoundSoa::default();
        for v in vectors {
            soa.lens.push(v.len() as f64);
            soa.scales.push(v.prune_scale());
        }
        soa
    }

    /// Number of vectors in the set.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Writes `out[i] = bound(query, vᵢ) >= threshold - PRUNE_MARGIN`
    /// for every vector in the set (resizing `out` to the set's length)
    /// and returns the number of survivors. Requires `threshold > 0`;
    /// an empty or zero-norm query prunes everything, exactly as the
    /// per-pair bound does.
    pub fn survivors(
        &self,
        query: &crate::kernel::SparseVector,
        threshold: f64,
        out: &mut Vec<bool>,
    ) -> usize {
        debug_assert!(threshold > 0.0, "a zero threshold defeats the prune");
        out.clear();
        out.resize(self.lens.len(), false);
        let q_scale = query.prune_scale();
        if query.is_empty() || q_scale == 0.0 {
            return 0;
        }
        let q_len = query.len() as f64;
        let cut = threshold - crate::kernel::PRUNE_MARGIN;
        let mut survivors = 0usize;
        let mut i = 0usize;
        #[cfg(target_arch = "x86_64")]
        if dispatch() == AVX2 && self.lens.len() >= 4 {
            // SAFETY: AVX2 presence proven by detect().
            unsafe {
                i = self.survivors_avx2(q_len, q_scale, cut, out, &mut survivors);
            }
        }
        while i < self.lens.len() {
            let bound = (q_len.min(self.lens[i]) * q_scale) * self.scales[i];
            if bound >= cut {
                out[i] = true;
                survivors += 1;
            }
            i += 1;
        }
        survivors
    }

    /// 4-lane AVX2 fold over the full blocks; returns the index where the
    /// scalar remainder resumes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn survivors_avx2(
        &self,
        q_len: f64,
        q_scale: f64,
        cut: f64,
        out: &mut [bool],
        survivors: &mut usize,
    ) -> usize {
        use std::arch::x86_64::*;
        let qlen_v = _mm256_set1_pd(q_len);
        let qscale_v = _mm256_set1_pd(q_scale);
        let cut_v = _mm256_set1_pd(cut);
        let n = self.lens.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds both unaligned loads.
            let bounds = unsafe {
                let lens = _mm256_loadu_pd(self.lens.as_ptr().add(i));
                let scales = _mm256_loadu_pd(self.scales.as_ptr().add(i));
                // Same association as the scalar loop: (min · qscale) · scale.
                _mm256_mul_pd(_mm256_mul_pd(_mm256_min_pd(qlen_v, lens), qscale_v), scales)
            };
            let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(bounds, cut_v);
            let mut mask = _mm256_movemask_pd(ge) as u32;
            *survivors += mask.count_ones() as usize;
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                out[i + k] = true;
                mask &= mask - 1;
            }
            i += 4;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{cosine_upper_bound, merge_dot, SparseVector, PRUNE_MARGIN};

    /// Seed-deterministic xorshift, matching the style of the taint
    /// kernel's differential tests (no rand dependency).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
            self.0 = x;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// A strictly-sorted random id list with random positive weights.
    fn random_sorted(rng: &mut Rng, max_len: u64, id_space: u64) -> (Vec<u32>, Vec<f32>) {
        let len = rng.below(max_len) as usize;
        let mut ids: Vec<u32> = (0..len).map(|_| rng.below(id_space) as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let weights = ids.iter().map(|_| (1 + rng.below(1000)) as f32 / 250.0).collect();
        (ids, weights)
    }

    #[test]
    fn simd_merge_dot_is_bit_identical_to_scalar() {
        let mut rng = Rng(7);
        for case in 0..2000u64 {
            // Mix dense-overlap and sparse-overlap id spaces so both the
            // gallop and the match lanes are exercised.
            let id_space = if case % 2 == 0 { 64 } else { 4096 };
            let (a_ids, a_w) = random_sorted(&mut rng, 80, id_space);
            let (b_ids, b_w) = random_sorted(&mut rng, 80, id_space);
            let scalar = merge_dot(&a_ids, &a_w, &b_ids, &b_w);
            let simd = merge_dot_f32(&a_ids, &a_w, &b_ids, &b_w);
            assert_eq!(
                scalar.to_bits(),
                simd.to_bits(),
                "case {case}: scalar {scalar} vs simd {simd} (path {})",
                active_path()
            );
        }
    }

    #[test]
    fn mask_dot_is_bit_identical_to_merge_for_narrow_vectors() {
        let mut rng = Rng(17);
        for case in 0..2000u64 {
            let (a_ids, a_w) = random_sorted(&mut rng, 40, 128);
            let (b_ids, b_w) = random_sorted(&mut rng, 40, 128);
            let a =
                SparseVector::from_sorted_pairs(a_ids.iter().copied().zip(a_w.clone()).collect());
            let b =
                SparseVector::from_sorted_pairs(b_ids.iter().copied().zip(b_w.clone()).collect());
            let merge = merge_dot(&a_ids, &a_w, &b_ids, &b_w);
            let masked = mask_dot(mask_of(&a_ids), &a_w, mask_of(&b_ids), &b_w);
            assert_eq!(merge.to_bits(), masked.to_bits(), "case {case}: {merge} vs {masked}");
            // And end to end: cosine (which picks the mask path when SIMD
            // is active) must match the forced-scalar cosine bit for bit.
            let auto = crate::kernel::cosine(&a, &b);
            force_scalar(true);
            let scalar = crate::kernel::cosine(&a, &b);
            force_scalar(false);
            assert_eq!(auto.to_bits(), scalar.to_bits(), "case {case}: cosine diverged");
        }
    }

    fn mask_of(ids: &[u32]) -> u128 {
        ids.iter().fold(0u128, |m, &id| m | (1u128 << id))
    }

    #[test]
    fn forced_scalar_matches_detected_path() {
        let (a_ids, a_w) = random_sorted(&mut Rng(11), 60, 256);
        let (b_ids, b_w) = random_sorted(&mut Rng(13), 60, 256);
        let auto = merge_dot_f32(&a_ids, &a_w, &b_ids, &b_w);
        force_scalar(true);
        assert_eq!(active_path(), "scalar");
        let forced = merge_dot_f32(&a_ids, &a_w, &b_ids, &b_w);
        force_scalar(false);
        assert_eq!(auto.to_bits(), forced.to_bits());
    }

    #[test]
    fn batch_survivors_agree_with_per_pair_bound() {
        let mut rng = Rng(23);
        let vectors: Vec<SparseVector> = (0..37)
            .map(|_| {
                let (ids, ws) = random_sorted(&mut rng, 40, 512);
                SparseVector::from_sorted_pairs(ids.into_iter().zip(ws).collect())
            })
            .collect();
        let soa = BoundSoa::build(vectors.iter());
        assert_eq!(soa.len(), vectors.len());
        let mut out = Vec::new();
        for threshold in [0.3, 0.67, 0.9] {
            for q in &vectors {
                let n = soa.survivors(q, threshold, &mut out);
                assert_eq!(n, out.iter().filter(|s| **s).count());
                for (i, v) in vectors.iter().enumerate() {
                    // Batch pruning must never drop a pair the per-pair
                    // bound would keep — that is the exactness direction
                    // verdicts depend on.
                    if cosine_upper_bound(q, v) >= threshold - PRUNE_MARGIN {
                        assert!(out[i], "batch pruned a surviving pair (threshold {threshold})");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_survivors_empty_query_prunes_all() {
        let v = SparseVector::from_sorted_pairs(vec![(1, 1.0)]);
        let soa = BoundSoa::build([&v]);
        let mut out = Vec::new();
        assert_eq!(soa.survivors(&SparseVector::default(), 0.67, &mut out), 0);
        assert_eq!(out, vec![false]);
    }
}
