//! The `ppchecker serve` subcommand: boot the resident daemon over a
//! warm engine and block until it drains.

use crate::batch::{builtin_lib_policies, load_corpus, BOILERPLATE_THRESHOLD};
use crate::{parse_detectors, CliError};
use ppchecker_core::{BoilerplateIndex, DetectorId, DetectorRegistry, PPChecker};
use ppchecker_corpus::{stream_scaled_sharded, DatasetManifest};
use ppchecker_engine::{available_jobs, Engine};
use ppchecker_serve::{install_sigterm_handler, ServeConfig, Server};
use ppchecker_store::Store;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed `serve` options.
#[derive(Debug)]
pub struct ServeOptions {
    /// Daemon configuration (addresses, pool sizing, body cap).
    pub config: ServeConfig,
    /// Optional corpus directory; its `libs/*.html` policies are
    /// registered on the engine at boot so every request benefits from
    /// pre-analyzed third-party lib policies.
    pub corpus_dir: Option<PathBuf>,
    /// Optional streamed warm-boot: analyze the first N generated scale
    /// apps through the engine (with the built-in lib policies) before
    /// serving. With `--store`, this pre-populates the artifact store so
    /// later requests for the same apps replay from disk.
    pub stream: Option<usize>,
    /// Seed for `--stream` generation.
    pub seed: u64,
    /// Optional manifest warm-boot: like `stream`, over the manifest's
    /// named subset.
    pub manifest: Option<PathBuf>,
    /// Optional persistent artifact store: the daemon boots warm
    /// (previously analyzed policies, lib summaries, and reports replay
    /// from disk) and keeps persisting as it serves.
    pub store_dir: Option<PathBuf>,
    /// Detector selection (`--detectors`); `None` serves the paper's
    /// default registry.
    pub detectors: Option<Vec<DetectorId>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            config: ServeConfig::default(),
            corpus_dir: None,
            stream: None,
            seed: 42,
            manifest: None,
            store_dir: None,
            detectors: None,
        }
    }
}

/// Parses `serve` flags.
///
/// # Errors
///
/// Returns [`CliError`] on unparsable numeric flags.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, CliError> {
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let positive = |flag: &str| -> Result<Option<usize>, CliError> {
        flag_value(flag)
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError(format!("{flag} needs a positive integer")))
            })
            .transpose()
    };
    let mut opts = ServeOptions::default();
    if let Some(addr) = flag_value("--addr") {
        opts.config.addr = addr.to_string();
    }
    if let Some(addr) = flag_value("--jsonl-addr") {
        opts.config.jsonl_addr = Some(addr.to_string());
    }
    if let Some(workers) = positive("--workers")? {
        opts.config.workers = workers;
        opts.config.queue_depth = 2 * workers;
    }
    if let Some(depth) = positive("--queue-depth")? {
        opts.config.queue_depth = depth;
    }
    if let Some(bytes) = positive("--max-body-bytes")? {
        opts.config.max_body_bytes = bytes;
    }
    if let Some(dir) = flag_value("--corpus") {
        opts.corpus_dir = Some(PathBuf::from(dir));
    }
    if let Some(n) = positive("--stream")? {
        opts.stream = Some(n);
    }
    if let Some(seed) = flag_value("--seed") {
        opts.seed = seed.parse::<u64>().map_err(|_| CliError("bad --seed".into()))?;
    }
    if let Some(path) = flag_value("--manifest") {
        opts.manifest = Some(PathBuf::from(path));
    }
    if let Some(dir) = flag_value("--store") {
        opts.store_dir = Some(PathBuf::from(dir));
    }
    if let Some(ids) = flag_value("--detectors") {
        opts.detectors = Some(parse_detectors(ids)?);
    }
    Ok(opts)
}

/// Boots the daemon and blocks until it has drained (via
/// `POST /shutdown` or SIGTERM). Returns a one-line summary.
///
/// # Errors
///
/// Returns [`CliError`] when the corpus fails to load or a listen
/// address cannot be bound.
pub fn run_serve(opts: ServeOptions) -> Result<String, CliError> {
    let mut checker = PPChecker::new();
    if let Some(ids) = &opts.detectors {
        checker = checker.with_registry(DetectorRegistry::with_ids(ids));
        if ids.contains(&DetectorId::Boilerplate) {
            checker = checker
                .with_boilerplate_index(Arc::new(BoilerplateIndex::new(BOILERPLATE_THRESHOLD)));
        }
        eprintln!(
            "serve: detectors {}",
            ids.iter().map(|d| d.as_str()).collect::<Vec<_>>().join(",")
        );
    }
    let warm_boot = opts.stream.is_some() || opts.manifest.is_some();
    let mut engine = match &opts.corpus_dir {
        Some(dir) => {
            let (_, libs) = load_corpus(dir)?;
            let count = libs.len();
            let engine = Engine::with_lib_policies(checker, libs);
            eprintln!("serve: registered {count} lib policies from {}", dir.display());
            engine
        }
        None if warm_boot => {
            let libs = builtin_lib_policies();
            let count = libs.len();
            let engine = Engine::with_lib_policies(checker, libs);
            eprintln!("serve: registered {count} built-in lib policies");
            engine
        }
        None => Engine::new(checker),
    };
    if let Some(dir) = &opts.store_dir {
        let store = Store::open(dir)
            .map(Arc::new)
            .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))?;
        let reports = store.records_on_disk(ppchecker_store::RecordKind::Report);
        engine = engine.with_store(store);
        eprintln!("serve: artifact store at {} ({reports} reports on disk)", dir.display());
    }
    // Warm passes run after the store attaches so their results persist.
    if let Some(n) = opts.stream {
        let apps = stream_scaled_sharded(opts.seed, n, available_jobs()).map(|g| g.input);
        let summary = engine.run_streamed(apps, |_| {});
        eprintln!(
            "serve: warmed over {n} streamed apps (seed {}, {} problem apps)",
            opts.seed, summary.aggregate.problem_apps
        );
    }
    if let Some(path) = &opts.manifest {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError(format!("--manifest {}: {e}", path.display())))?;
        let manifest = DatasetManifest::parse(&text)
            .map_err(|e| CliError(format!("--manifest {}: {e}", path.display())))?;
        let summary = engine.run_streamed(manifest.apps().map(|g| g.input), |_| {});
        eprintln!(
            "serve: warmed over manifest {} ({} apps, {} problem apps)",
            manifest.name,
            manifest.ids.len(),
            summary.aggregate.problem_apps
        );
    }
    install_sigterm_handler();
    let handle = Server::start(engine, opts.config.clone())
        .map_err(|e| CliError(format!("failed to start daemon: {e}")))?;
    eprintln!(
        "serve: listening on http://{} ({} workers, queue depth {}){}",
        handle.addr(),
        opts.config.workers,
        opts.config.queue_depth,
        match handle.jsonl_addr() {
            Some(addr) => format!(", jsonl on {addr}"),
            None => String::new(),
        },
    );
    let addr = handle.addr();
    handle.join();
    Ok(format!("serve: drained, was listening on {addr}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:7171");
        assert!(opts.config.jsonl_addr.is_none());
        assert!(opts.corpus_dir.is_none());
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse_serve_args(&args(&[
            "--addr",
            "0.0.0.0:9000",
            "--jsonl-addr",
            "127.0.0.1:9001",
            "--workers",
            "3",
            "--queue-depth",
            "11",
            "--corpus",
            "corpus-dir",
            "--store",
            ".ppstore",
        ]))
        .unwrap();
        assert_eq!(opts.config.addr, "0.0.0.0:9000");
        assert_eq!(opts.config.jsonl_addr.as_deref(), Some("127.0.0.1:9001"));
        assert_eq!(opts.config.workers, 3);
        assert_eq!(opts.config.queue_depth, 11);
        assert_eq!(opts.corpus_dir.as_deref().unwrap().to_str(), Some("corpus-dir"));
        assert_eq!(opts.store_dir.as_deref().unwrap().to_str(), Some(".ppstore"));
    }

    #[test]
    fn workers_sets_queue_depth_unless_overridden() {
        let opts = parse_serve_args(&args(&["--workers", "4"])).unwrap();
        assert_eq!(opts.config.queue_depth, 8);
    }

    #[test]
    fn bad_numbers_are_rejected() {
        assert!(parse_serve_args(&args(&["--workers", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--queue-depth", "lots"])).is_err());
        assert!(parse_serve_args(&args(&["--stream", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--seed", "nope"])).is_err());
    }

    #[test]
    fn detectors_flag_parses_and_rejects_unknown_ids() {
        let opts = parse_serve_args(&args(&["--detectors", "incomplete,boilerplate"])).unwrap();
        assert_eq!(
            opts.detectors.as_deref(),
            Some(&[DetectorId::Incomplete, DetectorId::Boilerplate][..])
        );
        let err = parse_serve_args(&args(&["--detectors", "nosuch"])).unwrap_err();
        assert!(err.0.contains("unknown detector"), "{err}");
        assert!(err.0.contains("boilerplate"), "listing includes registered ids: {err}");
    }

    #[test]
    fn stream_and_manifest_flags_parse() {
        let opts =
            parse_serve_args(&args(&["--stream", "5000", "--seed", "7", "--manifest", "pack.ppm"]))
                .unwrap();
        assert_eq!(opts.stream, Some(5000));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.manifest.as_deref().unwrap().to_str(), Some("pack.ppm"));
        let defaults = parse_serve_args(&[]).unwrap();
        assert_eq!(defaults.seed, 42);
        assert!(defaults.stream.is_none() && defaults.manifest.is_none());
    }
}
