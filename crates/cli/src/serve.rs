//! The `ppchecker serve` subcommand: boot the resident daemon over a
//! warm engine and block until it drains.

use crate::batch::load_corpus;
use crate::CliError;
use ppchecker_core::PPChecker;
use ppchecker_engine::Engine;
use ppchecker_serve::{install_sigterm_handler, ServeConfig, Server};
use ppchecker_store::Store;
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed `serve` options.
#[derive(Debug, Default)]
pub struct ServeOptions {
    /// Daemon configuration (addresses, pool sizing, body cap).
    pub config: ServeConfig,
    /// Optional corpus directory; its `libs/*.html` policies are
    /// registered on the engine at boot so every request benefits from
    /// pre-analyzed third-party lib policies.
    pub corpus_dir: Option<PathBuf>,
    /// Optional persistent artifact store: the daemon boots warm
    /// (previously analyzed policies, lib summaries, and reports replay
    /// from disk) and keeps persisting as it serves.
    pub store_dir: Option<PathBuf>,
}

/// Parses `serve` flags.
///
/// # Errors
///
/// Returns [`CliError`] on unparsable numeric flags.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, CliError> {
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let positive = |flag: &str| -> Result<Option<usize>, CliError> {
        flag_value(flag)
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError(format!("{flag} needs a positive integer")))
            })
            .transpose()
    };
    let mut opts = ServeOptions::default();
    if let Some(addr) = flag_value("--addr") {
        opts.config.addr = addr.to_string();
    }
    if let Some(addr) = flag_value("--jsonl-addr") {
        opts.config.jsonl_addr = Some(addr.to_string());
    }
    if let Some(workers) = positive("--workers")? {
        opts.config.workers = workers;
        opts.config.queue_depth = 2 * workers;
    }
    if let Some(depth) = positive("--queue-depth")? {
        opts.config.queue_depth = depth;
    }
    if let Some(bytes) = positive("--max-body-bytes")? {
        opts.config.max_body_bytes = bytes;
    }
    if let Some(dir) = flag_value("--corpus") {
        opts.corpus_dir = Some(PathBuf::from(dir));
    }
    if let Some(dir) = flag_value("--store") {
        opts.store_dir = Some(PathBuf::from(dir));
    }
    Ok(opts)
}

/// Boots the daemon and blocks until it has drained (via
/// `POST /shutdown` or SIGTERM). Returns a one-line summary.
///
/// # Errors
///
/// Returns [`CliError`] when the corpus fails to load or a listen
/// address cannot be bound.
pub fn run_serve(opts: ServeOptions) -> Result<String, CliError> {
    let checker = PPChecker::new();
    let mut engine = match &opts.corpus_dir {
        Some(dir) => {
            let (_, libs) = load_corpus(dir)?;
            let count = libs.len();
            let engine = Engine::with_lib_policies(checker, libs);
            eprintln!("serve: registered {count} lib policies from {}", dir.display());
            engine
        }
        None => Engine::new(checker),
    };
    if let Some(dir) = &opts.store_dir {
        let store = Store::open(dir)
            .map(Arc::new)
            .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))?;
        let reports = store.records_on_disk(ppchecker_store::RecordKind::Report);
        engine = engine.with_store(store);
        eprintln!("serve: artifact store at {} ({reports} reports on disk)", dir.display());
    }
    install_sigterm_handler();
    let handle = Server::start(engine, opts.config.clone())
        .map_err(|e| CliError(format!("failed to start daemon: {e}")))?;
    eprintln!(
        "serve: listening on http://{} ({} workers, queue depth {}){}",
        handle.addr(),
        opts.config.workers,
        opts.config.queue_depth,
        match handle.jsonl_addr() {
            Some(addr) => format!(", jsonl on {addr}"),
            None => String::new(),
        },
    );
    let addr = handle.addr();
    handle.join();
    Ok(format!("serve: drained, was listening on {addr}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:7171");
        assert!(opts.config.jsonl_addr.is_none());
        assert!(opts.corpus_dir.is_none());
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse_serve_args(&args(&[
            "--addr",
            "0.0.0.0:9000",
            "--jsonl-addr",
            "127.0.0.1:9001",
            "--workers",
            "3",
            "--queue-depth",
            "11",
            "--corpus",
            "corpus-dir",
            "--store",
            ".ppstore",
        ]))
        .unwrap();
        assert_eq!(opts.config.addr, "0.0.0.0:9000");
        assert_eq!(opts.config.jsonl_addr.as_deref(), Some("127.0.0.1:9001"));
        assert_eq!(opts.config.workers, 3);
        assert_eq!(opts.config.queue_depth, 11);
        assert_eq!(opts.corpus_dir.as_deref().unwrap().to_str(), Some("corpus-dir"));
        assert_eq!(opts.store_dir.as_deref().unwrap().to_str(), Some(".ppstore"));
    }

    #[test]
    fn workers_sets_queue_depth_unless_overridden() {
        let opts = parse_serve_args(&args(&["--workers", "4"])).unwrap();
        assert_eq!(opts.config.queue_depth, 8);
    }

    #[test]
    fn bad_numbers_are_rejected() {
        assert!(parse_serve_args(&args(&["--workers", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--queue-depth", "lots"])).is_err());
    }
}
