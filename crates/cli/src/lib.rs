//! # ppchecker-cli
//!
//! The `ppchecker` command-line tool: audit an app's privacy policy
//! against its description and (simulated) APK from files on disk.
//!
//! ```text
//! ppchecker check --policy policy.html --description desc.txt \
//!                 --manifest manifest.txt --dex app.dex \
//!                 [--lib-policy ID=policy.html]... [--suggest] \
//!                 [--synonyms] [--constraints] [--detectors IDS]
//! ppchecker batch (--corpus <dir> | --stream N | --manifest <file>) \
//!                 [--seed N] [--shards N] [--jobs N] \
//!                 [--out results.jsonl] [--trace trace.json] [--store <dir>] \
//!                 [--detectors IDS]
//! ppchecker trace-check <trace.json>  # validate a batch --trace file
//! ppchecker policy <policy.html>      # inspect the six-step analysis
//! ppchecker pack <dex.txt> <out.pkdx> # pack a dex (packer demo)
//! ppchecker unpack <in.pkdx> <out.txt>
//! ppchecker demo                      # run the bundled sample app
//! ppchecker serve [--addr HOST:PORT] [--jsonl-addr HOST:PORT] \
//!                 [--workers N] [--queue-depth N] [--corpus <dir>] \
//!                 [--stream N] [--seed N] [--manifest <file>] \
//!                 [--store <dir>] [--detectors IDS]
//! ```
//!
//! The dex file uses the textual serialization of
//! [`ppchecker_apk::packer`]; the manifest uses the line format of
//! [`manifest_text`].

pub mod batch;
pub mod json;
pub mod manifest_text;
pub mod serve;

pub use batch::{builtin_lib_policies, run_batch, run_batch_to, BatchOptions, BatchSource};
pub use serve::{parse_serve_args, run_serve, ServeOptions};

use ppchecker_apk::{packer, Apk};
use ppchecker_core::{suggest_fixes, AppInput, DetectorId, PPChecker};
use ppchecker_policy::{PolicyAnalyzer, VerbCategory};
use std::fmt::Write as _;

/// The bundled demo inputs (`assets/`).
pub mod assets {
    /// Demo policy HTML.
    pub const POLICY: &str = include_str!("../assets/policy.html");
    /// Demo description.
    pub const DESCRIPTION: &str = include_str!("../assets/description.txt");
    /// Demo manifest (text format).
    pub const MANIFEST: &str = include_str!("../assets/manifest.txt");
    /// Demo dex (textual serialization).
    pub const DEX: &str = include_str!("../assets/app.dex");
}

/// CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Parsed `check` options.
#[derive(Debug, Default)]
pub struct CheckOptions {
    /// Policy HTML content.
    pub policy_html: String,
    /// Description text.
    pub description: String,
    /// Manifest text.
    pub manifest_text: String,
    /// Dex text.
    pub dex_text: String,
    /// `(lib id, policy html)` pairs.
    pub lib_policies: Vec<(String, String)>,
    /// Print repair suggestions.
    pub suggest: bool,
    /// Enable verb-synonym expansion.
    pub synonyms: bool,
    /// Enable constraint modeling.
    pub constraints: bool,
    /// Emit JSON instead of the human-readable report.
    pub json: bool,
    /// Detector selection (`--detectors`); `None` runs the checker's
    /// full registry.
    pub detectors: Option<Vec<DetectorId>>,
}

/// Parses a `--detectors` value: comma-separated detector ids.
///
/// # Errors
///
/// Returns [`CliError`] naming the unknown id and listing every
/// registered id.
pub fn parse_detectors(value: &str) -> Result<Vec<DetectorId>, CliError> {
    let mut ids = Vec::new();
    for name in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let id = DetectorId::parse(name).ok_or_else(|| {
            let registered: Vec<&str> = DetectorId::ALL.iter().map(|d| d.as_str()).collect();
            CliError(format!("unknown detector {name:?} (registered: {})", registered.join(", ")))
        })?;
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    if ids.is_empty() {
        return Err(CliError("--detectors requires at least one detector id".to_string()));
    }
    Ok(ids)
}

/// Runs a `check` and renders the report to a string.
///
/// # Errors
///
/// Returns [`CliError`] when any input fails to parse.
pub fn run_check(opts: &CheckOptions) -> Result<String, CliError> {
    let manifest =
        manifest_text::parse_manifest(&opts.manifest_text).map_err(|e| CliError(e.to_string()))?;
    let dex = packer::deserialize(&opts.dex_text).map_err(|e| CliError(e.to_string()))?;
    let package = manifest.package.clone();
    let app = AppInput {
        package,
        policy_html: opts.policy_html.clone(),
        description: opts.description.clone(),
        apk: Apk::new(manifest, dex),
        labels: Vec::new(),
    };

    let mut analyzer = PolicyAnalyzer::new();
    if opts.synonyms {
        analyzer = analyzer.with_synonym_expansion();
    }
    if opts.constraints {
        analyzer = analyzer.with_constraint_modeling();
    }
    let mut checker = PPChecker::new().with_analyzer(analyzer);
    if opts.detectors.is_some() {
        // An explicit selection runs against the full registry, so ids
        // beyond the paper's three resolve.
        checker = checker.with_registry(ppchecker_core::DetectorRegistry::full());
    }
    for (id, html) in &opts.lib_policies {
        checker.register_lib_policy(id, html);
    }

    let mut request = ppchecker_core::CheckRequest::builder(&app);
    if let Some(ids) = &opts.detectors {
        request = request.detectors(ids);
    }
    let report = checker.check(request.build()).map_err(|e| CliError(e.to_string()))?;
    if opts.json {
        return Ok(format!("{}\n", json::report_to_json(&report)));
    }
    let mut out = String::new();
    let _ = write!(out, "{report}");
    let verdict = if report.has_any_problem() {
        "VERDICT: questionable privacy policy"
    } else {
        "VERDICT: no problems detected"
    };
    let _ = writeln!(out, "{verdict}");
    if opts.suggest {
        let fixes = suggest_fixes(&report);
        if !fixes.is_empty() {
            let _ = writeln!(out, "\nsuggested fixes:");
            for fix in fixes {
                let _ = writeln!(out, "  {fix}");
            }
        }
    }
    Ok(out)
}

/// Renders the six-step policy analysis of an HTML document.
pub fn run_policy(policy_html: &str) -> String {
    let analysis = PolicyAnalyzer::new().analyze_html(policy_html);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} sentences, {} useful, disclaimer: {}",
        analysis.total_sentences,
        analysis.sentences.len(),
        analysis.has_disclaimer
    );
    for s in &analysis.sentences {
        let _ = writeln!(
            out,
            "[{}{}] {:?} — «{}»",
            if s.negative { "NOT " } else { "" },
            s.category,
            s.resources().collect::<Vec<_>>(),
            s.text
        );
    }
    for cat in VerbCategory::ALL {
        let pos = analysis.resources(cat, false);
        if !pos.is_empty() {
            let _ = writeln!(out, "{cat}: {pos:?}");
        }
        let neg = analysis.resources(cat, true);
        if !neg.is_empty() {
            let _ = writeln!(out, "NOT {cat}: {neg:?}");
        }
    }
    out
}

/// Packs a textual dex into a packed blob.
///
/// # Errors
///
/// Returns [`CliError`] when the dex text fails to parse.
pub fn run_pack(dex_text: &str, key: u8) -> Result<Vec<u8>, CliError> {
    let dex = packer::deserialize(dex_text).map_err(|e| CliError(e.to_string()))?;
    Ok(packer::pack(&dex, key))
}

/// Unpacks a packed blob back into textual form.
///
/// # Errors
///
/// Returns [`CliError`] when the blob is not a packed dex.
pub fn run_unpack(blob: &[u8]) -> Result<String, CliError> {
    let dex = packer::unpack(blob).map_err(|e| CliError(e.to_string()))?;
    Ok(packer::serialize(&dex))
}

/// Validates a Chrome `trace_event` JSON file produced by
/// `batch --trace` (the `trace-check` subcommand): well-formed JSON,
/// required event fields, and balanced `B`/`E` span nesting per thread.
///
/// # Errors
///
/// Returns [`CliError`] describing the first structural problem found.
pub fn run_trace_check(trace_json: &str) -> Result<String, CliError> {
    let check = ppchecker_obs::trace::validate(trace_json).map_err(CliError)?;
    Ok(format!("{check}\n"))
}

/// Runs the bundled demo (the `demo` subcommand).
///
/// # Errors
///
/// Never fails in practice — the bundled assets are well-formed.
pub fn run_demo() -> Result<String, CliError> {
    run_check(&CheckOptions {
        policy_html: assets::POLICY.to_string(),
        description: assets::DESCRIPTION.to_string(),
        manifest_text: assets::MANIFEST.to_string(),
        dex_text: assets::DEX.to_string(),
        lib_policies: vec![(
            "unity3d".to_string(),
            "<p>we may receive your location information and device identifiers.</p>".to_string(),
        )],
        suggest: true,
        ..CheckOptions::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_detects_problems_and_suggests_fixes() {
        let out = run_demo().unwrap();
        assert!(out.contains("incomplete: true"), "demo output:\n{out}");
        assert!(out.contains("VERDICT: questionable"));
        assert!(out.contains("suggested fixes:"));
    }

    #[test]
    fn policy_subcommand_renders_sets() {
        let out = run_policy(assets::POLICY);
        assert!(out.contains("collect:"));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let blob = run_pack(assets::DEX, 0x7C).unwrap();
        let text = run_unpack(&blob).unwrap();
        let a = ppchecker_apk::packer::deserialize(assets::DEX).unwrap();
        let b = ppchecker_apk::packer::deserialize(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detectors_flag_rejects_unknown_ids_with_a_listing() {
        let err = parse_detectors("incomplete,bogus").unwrap_err();
        assert!(err.0.contains("unknown detector \"bogus\""), "{err}");
        for id in DetectorId::ALL {
            assert!(err.0.contains(id.as_str()), "listing missing {id}: {err}");
        }
        assert!(parse_detectors(" , ").is_err());
        let ids = parse_detectors("purpose, purpose ,incomplete").unwrap();
        assert_eq!(ids, vec![DetectorId::Purpose, DetectorId::Incomplete]);
    }

    #[test]
    fn check_accepts_an_explicit_detector_selection() {
        let out = run_check(&CheckOptions {
            policy_html: assets::POLICY.to_string(),
            description: assets::DESCRIPTION.to_string(),
            manifest_text: assets::MANIFEST.to_string(),
            dex_text: assets::DEX.to_string(),
            detectors: Some(vec![DetectorId::Incorrect]),
            ..CheckOptions::default()
        })
        .unwrap();
        // The incomplete detector was deselected, so its findings vanish
        // even though the demo app's policy is incomplete by default.
        assert!(out.contains("incomplete: false"), "selection output:\n{out}");
    }

    #[test]
    fn check_rejects_bad_manifest() {
        let err = run_check(&CheckOptions {
            manifest_text: "bogus".to_string(),
            dex_text: assets::DEX.to_string(),
            ..CheckOptions::default()
        })
        .unwrap_err();
        assert!(err.0.contains("manifest"));
    }
}
