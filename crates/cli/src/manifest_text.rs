//! The CLI's textual `AndroidManifest` format — thin wrappers over
//! [`ppchecker_apk::Manifest::from_text`] / [`to_text`](ppchecker_apk::Manifest::to_text).

use ppchecker_apk::Manifest;
pub use ppchecker_apk::ParseManifestError;

/// Parses the textual manifest format.
///
/// # Errors
///
/// Returns [`ParseManifestError`] on unknown directives or a missing
/// `package` line.
pub fn parse_manifest(text: &str) -> Result<Manifest, ParseManifestError> {
    Manifest::from_text(text)
}

/// Renders a manifest back into the text format.
pub fn render_manifest(m: &Manifest) -> String {
    m.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::Permission;

    const SAMPLE: &str = "\
# demo manifest
package com.example.weather
permission ACCESS_FINE_LOCATION
permission INTERNET
activity com.example.weather.Main main
service com.example.weather.Sync
";

    #[test]
    fn parses_sample() {
        let m = parse_manifest(SAMPLE).unwrap();
        assert_eq!(m.package, "com.example.weather");
        assert!(m.has_permission(&Permission::AccessFineLocation));
        assert_eq!(m.components.len(), 2);
    }

    #[test]
    fn round_trips() {
        let m = parse_manifest(SAMPLE).unwrap();
        assert_eq!(parse_manifest(&render_manifest(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_unknown_directive() {
        assert_eq!(parse_manifest("package a\nbogus x\n").unwrap_err().line, 2);
    }

    #[test]
    fn rejects_missing_package() {
        assert!(parse_manifest("permission CAMERA\n").is_err());
    }
}
