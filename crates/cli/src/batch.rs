//! The `ppchecker batch` subcommand: run the batch engine over a corpus
//! and emit JSON-lines results.
//!
//! Three input sources:
//!
//! * `--corpus <dir>` — a directory in the `corpus::export` layout
//!   (as written by `export_dataset`):
//!
//!   ```text
//!   corpus/
//!     app-0000/ policy.html description.txt manifest.txt app.dex|app.pkdx
//!     app-0001/ ...
//!     libs/ admob.html unityads.html ...
//!   ```
//!
//! * `--stream <n>` — the first `n` apps of the generated scale corpus
//!   under `--seed`, produced by `--shards` background generator threads
//!   and analyzed through [`Engine::run_streamed`]: generation overlaps
//!   analysis under backpressure, records are written to the output sink
//!   as they complete, and peak memory is constant in `n`.
//!
//! * `--manifest <file>` — a dataset manifest naming a reproducible
//!   subset (seed + ID list); the named apps stream the same way.
//!
//! Output is one JSON object per app in submission order, followed by one
//! `{"aggregate": ...}` line. Everything on that stream is deterministic —
//! `--jobs 1` and `--jobs 16` produce byte-identical bytes — while the
//! timing-dependent metrics summary is returned separately for stderr.

use crate::json::{escape_into, report_to_json_into};
use crate::{manifest_text, CliError};
use ppchecker_apk::{packer, Apk};
use ppchecker_core::{
    AppInput, BoilerplateIndex, DataSafetyLabel, DetectorId, DetectorRegistry, PPChecker,
};
use ppchecker_corpus::{stream_scaled_sharded, DatasetManifest};
use ppchecker_engine::{available_jobs, AggregateSummary, AppRecord, Engine};
use ppchecker_store::Store;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where the batch's apps come from.
#[derive(Debug, Clone)]
pub enum BatchSource {
    /// An exported corpus directory (`corpus::export` layout).
    CorpusDir(PathBuf),
    /// The first `n` apps of the generated scale corpus.
    Stream {
        /// Number of apps to stream.
        n: usize,
        /// Generation seed.
        seed: u64,
        /// Generator shard threads.
        shards: usize,
    },
    /// A dataset manifest file naming a reproducible subset.
    Manifest(PathBuf),
}

/// Parsed `batch` options.
#[derive(Debug)]
pub struct BatchOptions {
    /// Input source.
    pub source: BatchSource,
    /// Worker threads; defaults to the available cores.
    pub jobs: usize,
    /// When set, write a Chrome `trace_event` JSON of the run to this
    /// file (loadable in `about:tracing` / Perfetto).
    pub trace: Option<PathBuf>,
    /// When set, open (or create) a persistent artifact store at this
    /// directory: parsed policies, lib taint summaries, and whole app
    /// reports replay across invocations, so a re-run over an unchanged
    /// corpus skips nearly all per-app work (the stderr metrics report
    /// the skip counts). Composes with every source, including streamed
    /// generation.
    pub store: Option<PathBuf>,
    /// Detector selection (`--detectors`); `None` runs the paper's
    /// default registry. The selection folds into the checker's
    /// configuration fingerprint, so store records keyed under one
    /// detector set never replay under another.
    pub detectors: Option<Vec<DetectorId>>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            source: BatchSource::CorpusDir(PathBuf::new()),
            jobs: available_jobs(),
            trace: None,
            store: None,
            detectors: None,
        }
    }
}

impl BatchOptions {
    /// Convenience constructor for the corpus-directory source.
    pub fn for_corpus_dir(dir: impl Into<PathBuf>) -> Self {
        BatchOptions { source: BatchSource::CorpusDir(dir.into()), ..BatchOptions::default() }
    }
}

/// Builds the batch checker: the default paper registry, or — under a
/// `--detectors` selection — a registry restricted to exactly those
/// detectors, with a boilerplate index attached when that detector is
/// selected (corpus-wide near-duplicate detection needs the shared
/// index).
fn build_checker(detectors: Option<&[DetectorId]>) -> PPChecker {
    match detectors {
        None => PPChecker::new(),
        Some(ids) => {
            let mut checker = PPChecker::new().with_registry(DetectorRegistry::with_ids(ids));
            if ids.contains(&DetectorId::Boilerplate) {
                checker = checker
                    .with_boilerplate_index(Arc::new(BoilerplateIndex::new(BOILERPLATE_THRESHOLD)));
            }
            checker
        }
    }
}

/// Default near-duplicate similarity threshold for `--detectors
/// boilerplate` runs (estimated Jaccard over 3-token shingles).
pub const BOILERPLATE_THRESHOLD: f64 = 0.8;

/// The built-in 81 third-party lib policies as `(id, html)` pairs — the
/// lib corpus used when apps are generated rather than loaded from disk.
pub fn builtin_lib_policies() -> LibPolicies {
    ppchecker_corpus::libs::lib_policies()
        .into_iter()
        .map(|lp| (lp.lib.id.to_string(), lp.html))
        .collect()
}

/// Loads one exported app directory into an [`AppInput`].
///
/// A corrupt dex is *not* an error here: the packed blob is loaded as-is
/// and the engine turns the downstream failure into a per-app error
/// record, so one bad app never aborts the batch.
///
/// # Errors
///
/// Returns [`CliError`] when a required file is missing or the manifest
/// fails to parse (without a manifest there is no package identity).
pub fn load_app_dir(dir: &Path) -> Result<AppInput, CliError> {
    let read = |name: &str| -> Result<String, CliError> {
        fs::read_to_string(dir.join(name))
            .map_err(|e| CliError(format!("{}/{name}: {e}", dir.display())))
    };
    let manifest = manifest_text::parse_manifest(&read("manifest.txt")?)
        .map_err(|e| CliError(format!("{}/manifest.txt: {e}", dir.display())))?;
    let package = manifest.package.clone();

    let dex_path = dir.join("app.dex");
    let apk = if dex_path.exists() {
        let dex = packer::deserialize(&read("app.dex")?)
            .map_err(|e| CliError(format!("{}/app.dex: {e}", dir.display())))?;
        Apk::new(manifest, dex)
    } else {
        let blob = fs::read(dir.join("app.pkdx"))
            .map_err(|e| CliError(format!("{}/app.pkdx: {e}", dir.display())))?;
        Apk::from_packed_blob(manifest, blob)
    };

    // Optional Data-Safety declarations: one label per line.
    let labels_path = dir.join("labels.txt");
    let labels = if labels_path.exists() {
        let mut labels = Vec::new();
        for line in read("labels.txt")?.lines().map(str::trim).filter(|l| !l.is_empty()) {
            labels.push(DataSafetyLabel::parse(line).ok_or_else(|| {
                CliError(format!("{}/labels.txt: unknown label {line:?}", dir.display()))
            })?);
        }
        labels
    } else {
        Vec::new()
    };

    Ok(AppInput {
        package,
        policy_html: read("policy.html")?,
        description: read("description.txt")?,
        apk,
        labels,
    })
}

/// `(lib id, policy html)` pairs loaded from a corpus `libs/` directory.
pub type LibPolicies = Vec<(String, String)>;

/// Loads every `app-*` subdirectory (sorted by name, so directory order is
/// stable) and the `libs/*.html` policies of a corpus directory.
///
/// # Errors
///
/// Returns [`CliError`] on unreadable directories or malformed apps.
pub fn load_corpus(dir: &Path) -> Result<(Vec<AppInput>, LibPolicies), CliError> {
    let entries = fs::read_dir(dir).map_err(|e| CliError(format!("{}: {e}", dir.display())))?;
    let mut app_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("app-"))
        })
        .collect();
    app_dirs.sort();
    if app_dirs.is_empty() {
        return Err(CliError(format!("no app-* directories under {}", dir.display())));
    }
    let apps = app_dirs.iter().map(|d| load_app_dir(d)).collect::<Result<Vec<_>, _>>()?;

    let mut libs = Vec::new();
    let libs_dir = dir.join("libs");
    if libs_dir.is_dir() {
        let mut lib_files: Vec<PathBuf> = fs::read_dir(&libs_dir)
            .map_err(|e| CliError(format!("{}: {e}", libs_dir.display())))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        lib_files.sort();
        for path in lib_files {
            let id = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default().to_string();
            let html = fs::read_to_string(&path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            libs.push((id, html));
        }
    }
    Ok((apps, libs))
}

fn aggregate_to_json(agg: &AggregateSummary) -> String {
    format!(
        "{{\"aggregate\":{{\"apps\":{},\"errors\":{},\"with_libs\":{},\"incomplete\":{},\
         \"incorrect\":{},\"inconsistent\":{},\"problem_apps\":{},\"missed_records\":{},\
         \"incorrect_findings\":{},\"inconsistencies\":{}}}}}",
        agg.apps,
        agg.errors,
        agg.with_libs,
        agg.incomplete,
        agg.incorrect,
        agg.inconsistent,
        agg.problem_apps,
        agg.missed_records,
        agg.incorrect_findings,
        agg.inconsistencies,
    )
}

/// Serializes one app record as a JSON line (with trailing newline) into
/// `buf`, straight into the buffer: no per-record report String, no
/// per-field escape String.
fn record_json_into(buf: &mut String, record: &AppRecord) {
    match record.report() {
        Some(report) => {
            let _ = write!(buf, "{{\"index\":{},\"ok\":true,\"report\":", record.index);
            report_to_json_into(buf, report);
            buf.push_str("}\n");
        }
        None => {
            let _ = write!(buf, "{{\"index\":{},\"ok\":false,\"package\":\"", record.index);
            escape_into(buf, &record.package);
            buf.push_str("\",\"error\":\"");
            escape_into(buf, &record.error().map(ToString::to_string).unwrap_or_default());
            buf.push_str("\"}\n");
        }
    }
}

/// Runs the engine over a loaded corpus and renders the two output
/// streams: the deterministic JSON-lines records (+ aggregate line), and
/// the timing-dependent metrics summary.
pub fn render_batch(
    apps: Vec<AppInput>,
    libs: Vec<(String, String)>,
    jobs: usize,
    store: Option<Arc<Store>>,
    detectors: Option<&[DetectorId]>,
) -> (String, String) {
    let mut engine = Engine::with_lib_policies(build_checker(detectors), libs).with_jobs(jobs);
    if let Some(store) = store {
        engine = engine.with_store(store);
    }
    let batch = engine.run(apps);

    let mut records = String::new();
    for record in &batch.records {
        record_json_into(&mut records, record);
    }
    let _ = writeln!(records, "{}", aggregate_to_json(&batch.aggregate()));
    (records, format!("{}\n", batch.metrics))
}

/// Runs a lazily-produced app stream through [`Engine::run_streamed`],
/// writing each record's JSON line to `out` as it completes. Peak memory
/// is bounded by the engine's in-flight window, not the stream length.
fn stream_batch_to<I>(
    apps: I,
    jobs: usize,
    store: Option<Arc<Store>>,
    detectors: Option<&[DetectorId]>,
    out: &mut dyn io::Write,
) -> Result<String, CliError>
where
    I: IntoIterator<Item = AppInput>,
    I::IntoIter: Send,
{
    let mut engine =
        Engine::with_lib_policies(build_checker(detectors), builtin_lib_policies()).with_jobs(jobs);
    if let Some(store) = store {
        engine = engine.with_store(store);
    }

    let mut line = String::new();
    let mut write_err: Option<io::Error> = None;
    let summary = engine.run_streamed(apps, |record| {
        if write_err.is_some() {
            return;
        }
        line.clear();
        record_json_into(&mut line, &record);
        if let Err(e) = out.write_all(line.as_bytes()) {
            write_err = Some(e);
        }
    });
    if let Some(e) = write_err {
        return Err(CliError(format!("writing batch output: {e}")));
    }
    writeln!(out, "{}", aggregate_to_json(&summary.aggregate))
        .map_err(|e| CliError(format!("writing batch output: {e}")))?;
    Ok(format!("{}\n", summary.metrics))
}

/// The `batch` entry point: resolve the source, run, and write the
/// deterministic JSON-lines stream (records + aggregate line) to `out`,
/// returning the timing-dependent metrics summary for stderr.
///
/// The corpus-directory source materializes its apps up front (they live
/// on disk already); the stream and manifest sources generate lazily and
/// write incrementally, so a 100k-app run holds only the in-flight window
/// in memory. Enables obs span metrics for the duration of the process
/// (that is where the stderr quantile table comes from), and captures a
/// Chrome trace when asked to.
///
/// # Errors
///
/// Returns [`CliError`] when the source is unreadable, the output sink
/// fails, or the trace file cannot be written.
pub fn run_batch_to(opts: &BatchOptions, out: &mut dyn io::Write) -> Result<String, CliError> {
    let store = opts
        .store
        .as_deref()
        .map(|dir| {
            Store::open(dir)
                .map(Arc::new)
                .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))
        })
        .transpose()?;
    ppchecker_obs::set_enabled(true);
    if opts.trace.is_some() {
        ppchecker_obs::set_tracing(true);
    }
    let jobs = opts.jobs.max(1);

    let metrics = match &opts.source {
        BatchSource::CorpusDir(dir) => {
            let (apps, libs) = load_corpus(dir)?;
            let (records, metrics) =
                render_batch(apps, libs, jobs, store.clone(), opts.detectors.as_deref());
            out.write_all(records.as_bytes())
                .map_err(|e| CliError(format!("writing batch output: {e}")))?;
            metrics
        }
        BatchSource::Stream { n, seed, shards } => {
            let apps = stream_scaled_sharded(*seed, *n, *shards).map(|g| g.input);
            stream_batch_to(apps, jobs, store.clone(), opts.detectors.as_deref(), out)?
        }
        BatchSource::Manifest(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            let manifest = DatasetManifest::parse(&text)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            stream_batch_to(
                manifest.apps().map(|g| g.input),
                jobs,
                store.clone(),
                opts.detectors.as_deref(),
                out,
            )?
        }
    };

    if let Some(store) = &store {
        store.flush_index();
    }
    if let Some(path) = &opts.trace {
        ppchecker_obs::set_tracing(false);
        let events = ppchecker_obs::trace::drain();
        fs::write(path, ppchecker_obs::trace::to_chrome_json(&events))
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    }
    Ok(metrics)
}

/// [`run_batch_to`] with the record stream buffered into a `String` —
/// the materializing convenience wrapper for tests and small batches.
///
/// # Errors
///
/// Returns [`CliError`] under the same conditions as [`run_batch_to`].
pub fn run_batch(opts: &BatchOptions) -> Result<(String, String), CliError> {
    let mut records = Vec::new();
    let metrics = run_batch_to(opts, &mut records)?;
    let records =
        String::from_utf8(records).map_err(|e| CliError(format!("batch output not UTF-8: {e}")))?;
    Ok((records, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{ComponentKind, Dex, Manifest, Permission};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppchecker-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_app(dir: &Path, package: &str, policy: &str, corrupt: bool) {
        fs::create_dir_all(dir).unwrap();
        let mut manifest = Manifest::new(package);
        manifest.add_permission(Permission::AccessFineLocation);
        manifest.add_component(ComponentKind::Activity, &format!("{package}.Main"), true);
        fs::write(dir.join("manifest.txt"), manifest.to_text()).unwrap();
        fs::write(dir.join("policy.html"), format!("<p>{policy}</p>")).unwrap();
        fs::write(dir.join("description.txt"), "A handy app.").unwrap();
        if corrupt {
            fs::write(dir.join("app.pkdx"), [0xBA, 0xD0, 0xBA, 0xD0]).unwrap();
        } else {
            let dex = Dex::builder()
                .class(&format!("{package}.Main"), |c| {
                    c.extends("android.app.Activity");
                    c.method("onCreate", 1, |m| {
                        m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    });
                })
                .build();
            fs::write(dir.join("app.dex"), packer::serialize(&dex)).unwrap();
        }
    }

    fn write_corpus(root: &Path, n: usize, corrupt_at: Option<usize>) {
        for i in 0..n {
            write_app(
                &root.join(format!("app-{i:04}")),
                &format!("com.batch.app{i}"),
                "we may collect your location.",
                corrupt_at == Some(i),
            );
        }
        let libs = root.join("libs");
        fs::create_dir_all(&libs).unwrap();
        fs::write(libs.join("admob.html"), "<p>we may collect your device id.</p>").unwrap();
    }

    #[test]
    fn batch_output_is_jobs_invariant() {
        let dir = temp_dir("determinism");
        write_corpus(&dir, 6, None);
        let serial =
            run_batch(&BatchOptions { jobs: 1, ..BatchOptions::for_corpus_dir(&dir) }).unwrap();
        let parallel =
            run_batch(&BatchOptions { jobs: 4, ..BatchOptions::for_corpus_dir(&dir) }).unwrap();
        assert_eq!(serial.0, parallel.0, "record stream must be byte-identical");
        assert!(serial.0.lines().count() == 7, "6 records + aggregate line");
        assert!(serial.0.contains("\"aggregate\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_app_becomes_error_record() {
        let dir = temp_dir("corrupt");
        write_corpus(&dir, 4, Some(2));
        let (records, metrics) =
            run_batch(&BatchOptions { jobs: 2, ..BatchOptions::for_corpus_dir(&dir) }).unwrap();
        assert!(records.contains("\"ok\":false"));
        assert!(records.contains("com.batch.app2"));
        assert_eq!(records.matches("\"ok\":true").count(), 3);
        assert!(records.contains("\"errors\":1"));
        assert!(metrics.contains("1 errors"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_store_run_skips_and_matches_byte_for_byte() {
        let dir = temp_dir("incremental");
        write_corpus(&dir, 8, None);
        let store_dir = dir.join(".ppstore");
        let opts = BatchOptions {
            jobs: 2,
            store: Some(store_dir.clone()),
            ..BatchOptions::for_corpus_dir(&dir)
        };
        let (cold_records, cold_metrics) = run_batch(&opts).unwrap();
        assert!(cold_metrics.contains("store: 0 apps skipped"), "metrics:\n{cold_metrics}");

        let (warm_records, warm_metrics) = run_batch(&opts).unwrap();
        assert_eq!(cold_records, warm_records, "aggregate reports must be byte-identical");
        assert!(warm_metrics.contains("store: 8 apps skipped"), "metrics:\n{warm_metrics}");
        assert!(store_dir.join("ppstore.index").exists(), "index flushed after the run");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn detector_selection_folds_into_the_store_key() {
        let dir = temp_dir("detector-keying");
        write_corpus(&dir, 4, None);
        let store_dir = dir.join(".ppstore");
        let default_opts = BatchOptions {
            jobs: 2,
            store: Some(store_dir.clone()),
            ..BatchOptions::for_corpus_dir(&dir)
        };
        let (_, cold_metrics) = run_batch(&default_opts).unwrap();
        assert!(cold_metrics.contains("store: 0 apps skipped"), "metrics:\n{cold_metrics}");

        // A different detector set must never replay records keyed under
        // the default registry: the selection folds into the checker's
        // configuration fingerprint, so every app re-analyzes.
        let selected_opts = BatchOptions {
            jobs: 2,
            store: Some(store_dir.clone()),
            detectors: Some(vec![DetectorId::Incomplete]),
            ..BatchOptions::for_corpus_dir(&dir)
        };
        let (_, selected_metrics) = run_batch(&selected_opts).unwrap();
        assert!(
            selected_metrics.contains("store: 0 apps skipped"),
            "detector selection must re-key the store:\n{selected_metrics}"
        );

        // Re-running the same selection replays its own records.
        let (_, warm_metrics) = run_batch(&selected_opts).unwrap();
        assert!(warm_metrics.contains("store: 4 apps skipped"), "metrics:\n{warm_metrics}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_dir_is_an_error() {
        let err = run_batch(&BatchOptions {
            jobs: 1,
            ..BatchOptions::for_corpus_dir("/nonexistent/corpus")
        })
        .unwrap_err();
        assert!(err.0.contains("/nonexistent/corpus"));
    }

    #[test]
    fn streamed_batch_is_jobs_and_shard_invariant() {
        let base = BatchOptions {
            source: BatchSource::Stream { n: 40, seed: 42, shards: 1 },
            jobs: 1,
            ..BatchOptions::default()
        };
        let serial = run_batch(&base).unwrap();
        let sharded = run_batch(&BatchOptions {
            source: BatchSource::Stream { n: 40, seed: 42, shards: 4 },
            jobs: 3,
            ..BatchOptions::default()
        })
        .unwrap();
        assert_eq!(serial.0, sharded.0, "record stream must be byte-identical");
        assert_eq!(serial.0.lines().count(), 41, "40 records + aggregate line");
        assert!(serial.0.contains("\"aggregate\""));
        assert!(serial.0.contains("\"apps\":40"));
    }

    #[test]
    fn streamed_batch_composes_with_the_store() {
        let dir = temp_dir("stream-store");
        fs::create_dir_all(&dir).unwrap();
        let opts = BatchOptions {
            source: BatchSource::Stream { n: 12, seed: 42, shards: 2 },
            jobs: 2,
            store: Some(dir.join(".ppstore")),
            ..BatchOptions::default()
        };
        let (cold, cold_metrics) = run_batch(&opts).unwrap();
        assert!(cold_metrics.contains("store: 0 apps skipped"), "metrics:\n{cold_metrics}");
        let (warm, warm_metrics) = run_batch(&opts).unwrap();
        assert_eq!(cold, warm, "replayed stream must be byte-identical");
        assert!(warm_metrics.contains("store: 12 apps skipped"), "metrics:\n{warm_metrics}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_batch_runs_the_named_subset() {
        use ppchecker_corpus::ScenarioPack;
        let dir = temp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        let manifest = ScenarioPack::PathologicalPolicy.manifest(42, 1400);
        let count = manifest.ids.len();
        assert!(count > 0, "pack must select something in 1400 apps");
        let path = dir.join("pathological.ppm");
        fs::write(&path, manifest.serialize()).unwrap();

        let (records, _) = run_batch(&BatchOptions {
            source: BatchSource::Manifest(path),
            jobs: 2,
            ..BatchOptions::default()
        })
        .unwrap();
        assert_eq!(records.lines().count(), count + 1, "one line per id + aggregate");
        assert!(records.contains(&format!("\"apps\":{count}")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_manifest_is_an_error() {
        let dir = temp_dir("bad-manifest");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ppm");
        fs::write(&path, "not a manifest\n").unwrap();
        let err = run_batch(&BatchOptions {
            source: BatchSource::Manifest(path),
            jobs: 1,
            ..BatchOptions::default()
        })
        .unwrap_err();
        assert!(err.0.contains("bad.ppm"), "error names the file: {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
