//! The `ppchecker batch` subcommand: run the batch engine over a corpus
//! directory in the `corpus::export` layout and emit JSON-lines results.
//!
//! Layout consumed (as written by `export_dataset`):
//!
//! ```text
//! corpus/
//!   app-0000/ policy.html description.txt manifest.txt app.dex|app.pkdx
//!   app-0001/ ...
//!   libs/ admob.html unityads.html ...
//! ```
//!
//! Output is one JSON object per app in directory order, followed by one
//! `{"aggregate": ...}` line. Everything on that stream is deterministic —
//! `--jobs 1` and `--jobs 16` produce byte-identical bytes — while the
//! timing-dependent metrics summary is returned separately for stderr.

use crate::json::{escape_into, report_to_json_into};
use crate::{manifest_text, CliError};
use ppchecker_apk::{packer, Apk};
use ppchecker_core::{AppInput, PPChecker};
use ppchecker_engine::{available_jobs, AggregateSummary, Engine};
use ppchecker_store::Store;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parsed `batch` options.
#[derive(Debug)]
pub struct BatchOptions {
    /// Corpus directory (`corpus::export` layout).
    pub corpus_dir: PathBuf,
    /// Worker threads; defaults to the available cores.
    pub jobs: usize,
    /// When set, write a Chrome `trace_event` JSON of the run to this
    /// file (loadable in `about:tracing` / Perfetto).
    pub trace: Option<PathBuf>,
    /// When set, open (or create) a persistent artifact store at this
    /// directory: parsed policies, lib taint summaries, and whole app
    /// reports replay across invocations, so a re-run over an unchanged
    /// corpus skips nearly all per-app work (the stderr metrics report
    /// the skip counts).
    pub store: Option<PathBuf>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            corpus_dir: PathBuf::new(),
            jobs: available_jobs(),
            trace: None,
            store: None,
        }
    }
}

/// Loads one exported app directory into an [`AppInput`].
///
/// A corrupt dex is *not* an error here: the packed blob is loaded as-is
/// and the engine turns the downstream failure into a per-app error
/// record, so one bad app never aborts the batch.
///
/// # Errors
///
/// Returns [`CliError`] when a required file is missing or the manifest
/// fails to parse (without a manifest there is no package identity).
pub fn load_app_dir(dir: &Path) -> Result<AppInput, CliError> {
    let read = |name: &str| -> Result<String, CliError> {
        fs::read_to_string(dir.join(name))
            .map_err(|e| CliError(format!("{}/{name}: {e}", dir.display())))
    };
    let manifest = manifest_text::parse_manifest(&read("manifest.txt")?)
        .map_err(|e| CliError(format!("{}/manifest.txt: {e}", dir.display())))?;
    let package = manifest.package.clone();

    let dex_path = dir.join("app.dex");
    let apk = if dex_path.exists() {
        let dex = packer::deserialize(&read("app.dex")?)
            .map_err(|e| CliError(format!("{}/app.dex: {e}", dir.display())))?;
        Apk::new(manifest, dex)
    } else {
        let blob = fs::read(dir.join("app.pkdx"))
            .map_err(|e| CliError(format!("{}/app.pkdx: {e}", dir.display())))?;
        Apk::from_packed_blob(manifest, blob)
    };

    Ok(AppInput {
        package,
        policy_html: read("policy.html")?,
        description: read("description.txt")?,
        apk,
    })
}

/// `(lib id, policy html)` pairs loaded from a corpus `libs/` directory.
pub type LibPolicies = Vec<(String, String)>;

/// Loads every `app-*` subdirectory (sorted by name, so directory order is
/// stable) and the `libs/*.html` policies of a corpus directory.
///
/// # Errors
///
/// Returns [`CliError`] on unreadable directories or malformed apps.
pub fn load_corpus(dir: &Path) -> Result<(Vec<AppInput>, LibPolicies), CliError> {
    let entries = fs::read_dir(dir).map_err(|e| CliError(format!("{}: {e}", dir.display())))?;
    let mut app_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("app-"))
        })
        .collect();
    app_dirs.sort();
    if app_dirs.is_empty() {
        return Err(CliError(format!("no app-* directories under {}", dir.display())));
    }
    let apps = app_dirs.iter().map(|d| load_app_dir(d)).collect::<Result<Vec<_>, _>>()?;

    let mut libs = Vec::new();
    let libs_dir = dir.join("libs");
    if libs_dir.is_dir() {
        let mut lib_files: Vec<PathBuf> = fs::read_dir(&libs_dir)
            .map_err(|e| CliError(format!("{}: {e}", libs_dir.display())))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        lib_files.sort();
        for path in lib_files {
            let id = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default().to_string();
            let html = fs::read_to_string(&path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            libs.push((id, html));
        }
    }
    Ok((apps, libs))
}

fn aggregate_to_json(agg: &AggregateSummary) -> String {
    format!(
        "{{\"aggregate\":{{\"apps\":{},\"errors\":{},\"with_libs\":{},\"incomplete\":{},\
         \"incorrect\":{},\"inconsistent\":{},\"problem_apps\":{},\"missed_records\":{},\
         \"incorrect_findings\":{},\"inconsistencies\":{}}}}}",
        agg.apps,
        agg.errors,
        agg.with_libs,
        agg.incomplete,
        agg.incorrect,
        agg.inconsistent,
        agg.problem_apps,
        agg.missed_records,
        agg.incorrect_findings,
        agg.inconsistencies,
    )
}

/// Runs the engine over a loaded corpus and renders the two output
/// streams: the deterministic JSON-lines records (+ aggregate line), and
/// the timing-dependent metrics summary.
pub fn render_batch(
    apps: Vec<AppInput>,
    libs: Vec<(String, String)>,
    jobs: usize,
    store: Option<Arc<Store>>,
) -> (String, String) {
    let mut engine = Engine::with_lib_policies(PPChecker::new(), libs).with_jobs(jobs);
    if let Some(store) = store {
        engine = engine.with_store(store);
    }
    let batch = engine.run(apps);

    // Serialize straight into the output buffer: no per-record report
    // String, no per-field escape String.
    let mut records = String::new();
    for record in &batch.records {
        match record.report() {
            Some(report) => {
                let _ = write!(records, "{{\"index\":{},\"ok\":true,\"report\":", record.index);
                report_to_json_into(&mut records, report);
                records.push_str("}\n");
            }
            None => {
                let _ = write!(records, "{{\"index\":{},\"ok\":false,\"package\":\"", record.index);
                escape_into(&mut records, &record.package);
                records.push_str("\",\"error\":\"");
                escape_into(
                    &mut records,
                    &record.error().map(ToString::to_string).unwrap_or_default(),
                );
                records.push_str("\"}\n");
            }
        }
    }
    let _ = writeln!(records, "{}", aggregate_to_json(&batch.aggregate()));
    (records, format!("{}\n", batch.metrics))
}

/// The `batch` entry point: load, run, render. Enables obs span metrics
/// for the duration of the process (that is where the stderr quantile
/// table comes from), and captures a Chrome trace when asked to.
///
/// # Errors
///
/// Returns [`CliError`] when the corpus directory is unreadable or the
/// trace file cannot be written.
pub fn run_batch(opts: &BatchOptions) -> Result<(String, String), CliError> {
    let (apps, libs) = load_corpus(&opts.corpus_dir)?;
    let store = opts
        .store
        .as_deref()
        .map(|dir| {
            Store::open(dir)
                .map(Arc::new)
                .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))
        })
        .transpose()?;
    ppchecker_obs::set_enabled(true);
    if opts.trace.is_some() {
        ppchecker_obs::set_tracing(true);
    }
    let out = render_batch(apps, libs, opts.jobs.max(1), store.clone());
    if let Some(store) = &store {
        store.flush_index();
    }
    if let Some(path) = &opts.trace {
        ppchecker_obs::set_tracing(false);
        let events = ppchecker_obs::trace::drain();
        fs::write(path, ppchecker_obs::trace::to_chrome_json(&events))
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{ComponentKind, Dex, Manifest, Permission};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppchecker-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_app(dir: &Path, package: &str, policy: &str, corrupt: bool) {
        fs::create_dir_all(dir).unwrap();
        let mut manifest = Manifest::new(package);
        manifest.add_permission(Permission::AccessFineLocation);
        manifest.add_component(ComponentKind::Activity, &format!("{package}.Main"), true);
        fs::write(dir.join("manifest.txt"), manifest.to_text()).unwrap();
        fs::write(dir.join("policy.html"), format!("<p>{policy}</p>")).unwrap();
        fs::write(dir.join("description.txt"), "A handy app.").unwrap();
        if corrupt {
            fs::write(dir.join("app.pkdx"), [0xBA, 0xD0, 0xBA, 0xD0]).unwrap();
        } else {
            let dex = Dex::builder()
                .class(&format!("{package}.Main"), |c| {
                    c.extends("android.app.Activity");
                    c.method("onCreate", 1, |m| {
                        m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    });
                })
                .build();
            fs::write(dir.join("app.dex"), packer::serialize(&dex)).unwrap();
        }
    }

    fn write_corpus(root: &Path, n: usize, corrupt_at: Option<usize>) {
        for i in 0..n {
            write_app(
                &root.join(format!("app-{i:04}")),
                &format!("com.batch.app{i}"),
                "we may collect your location.",
                corrupt_at == Some(i),
            );
        }
        let libs = root.join("libs");
        fs::create_dir_all(&libs).unwrap();
        fs::write(libs.join("admob.html"), "<p>we may collect your device id.</p>").unwrap();
    }

    #[test]
    fn batch_output_is_jobs_invariant() {
        let dir = temp_dir("determinism");
        write_corpus(&dir, 6, None);
        let serial = run_batch(&BatchOptions {
            corpus_dir: dir.clone(),
            jobs: 1,
            ..BatchOptions::default()
        })
        .unwrap();
        let parallel = run_batch(&BatchOptions {
            corpus_dir: dir.clone(),
            jobs: 4,
            ..BatchOptions::default()
        })
        .unwrap();
        assert_eq!(serial.0, parallel.0, "record stream must be byte-identical");
        assert!(serial.0.lines().count() == 7, "6 records + aggregate line");
        assert!(serial.0.contains("\"aggregate\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_app_becomes_error_record() {
        let dir = temp_dir("corrupt");
        write_corpus(&dir, 4, Some(2));
        let (records, metrics) = run_batch(&BatchOptions {
            corpus_dir: dir.clone(),
            jobs: 2,
            ..BatchOptions::default()
        })
        .unwrap();
        assert!(records.contains("\"ok\":false"));
        assert!(records.contains("com.batch.app2"));
        assert_eq!(records.matches("\"ok\":true").count(), 3);
        assert!(records.contains("\"errors\":1"));
        assert!(metrics.contains("1 errors"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_store_run_skips_and_matches_byte_for_byte() {
        let dir = temp_dir("incremental");
        write_corpus(&dir, 8, None);
        let store_dir = dir.join(".ppstore");
        let opts = BatchOptions {
            corpus_dir: dir.clone(),
            jobs: 2,
            store: Some(store_dir.clone()),
            ..BatchOptions::default()
        };
        let (cold_records, cold_metrics) = run_batch(&opts).unwrap();
        assert!(cold_metrics.contains("store: 0 apps skipped"), "metrics:\n{cold_metrics}");

        let (warm_records, warm_metrics) = run_batch(&opts).unwrap();
        assert_eq!(cold_records, warm_records, "aggregate reports must be byte-identical");
        assert!(warm_metrics.contains("store: 8 apps skipped"), "metrics:\n{warm_metrics}");
        assert!(store_dir.join("ppstore.index").exists(), "index flushed after the run");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_dir_is_an_error() {
        let err = run_batch(&BatchOptions {
            corpus_dir: PathBuf::from("/nonexistent/corpus"),
            jobs: 1,
            ..BatchOptions::default()
        })
        .unwrap_err();
        assert!(err.0.contains("/nonexistent/corpus"));
    }
}
