//! Minimal JSON rendering of a [`Report`] for machine consumption
//! (`ppchecker check --format json`). Hand-rolled to keep the dependency
//! set at zero; strings are escaped per RFC 8259.

use ppchecker_core::{Channel, Report};

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: impl Iterator<Item = String>) -> String {
    let inner: Vec<String> = items.map(|s| format!("\"{}\"", escape(&s))).collect();
    format!("[{}]", inner.join(","))
}

/// Renders a report as a JSON object.
pub fn report_to_json(report: &Report) -> String {
    let missed: Vec<String> = report
        .missed
        .iter()
        .map(|m| {
            format!(
                "{{\"info\":\"{}\",\"channel\":\"{}\",\"retained\":{},\"permission\":{}}}",
                escape(&m.info.to_string()),
                match m.channel {
                    Channel::Description => "description",
                    Channel::Code => "code",
                },
                m.retained,
                m.permission
                    .as_ref()
                    .map(|p| format!("\"{}\"", escape(p.short_name())))
                    .unwrap_or_else(|| "null".to_string()),
            )
        })
        .collect();
    let incorrect: Vec<String> = report
        .incorrect
        .iter()
        .map(|f| {
            format!(
                "{{\"info\":\"{}\",\"category\":\"{}\",\"sentence\":\"{}\"}}",
                escape(&f.info.to_string()),
                f.category,
                escape(&f.sentence),
            )
        })
        .collect();
    let inconsistencies: Vec<String> = report
        .inconsistencies
        .iter()
        .map(|i| {
            format!(
                "{{\"lib\":\"{}\",\"category\":\"{}\",\"app_sentence\":\"{}\",\"lib_sentence\":\"{}\"}}",
                escape(&i.lib_id),
                i.category,
                escape(&i.app_sentence),
                escape(&i.lib_sentence),
            )
        })
        .collect();

    format!(
        "{{\"package\":\"{}\",\"incomplete\":{},\"incorrect\":{},\"inconsistent\":{},\
         \"has_disclaimer\":{},\"libs\":{},\"missed\":[{}],\"incorrect_findings\":[{}],\
         \"inconsistencies\":[{}]}}",
        escape(&report.package),
        report.is_incomplete(),
        report.is_incorrect(),
        report.is_inconsistent(),
        report.has_disclaimer,
        str_array(report.libs.iter().cloned()),
        missed.join(","),
        incorrect.join(","),
        inconsistencies.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::PrivateInfo;
    use ppchecker_core::MissedInfo;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn empty_report_renders() {
        let json = report_to_json(&Report::default());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"incomplete\":false"));
        assert!(json.contains("\"missed\":[]"));
    }

    #[test]
    fn findings_render_with_fields() {
        let report = Report {
            package: "com.x".to_string(),
            missed: vec![MissedInfo {
                info: PrivateInfo::Location,
                channel: Channel::Code,
                permission: Some(ppchecker_apk::Permission::AccessFineLocation),
                retained: true,
            }],
            libs: vec!["admob".to_string()],
            ..Report::default()
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"info\":\"location\""));
        assert!(json.contains("\"retained\":true"));
        assert!(json.contains("\"permission\":\"ACCESS_FINE_LOCATION\""));
        assert!(json.contains("\"libs\":[\"admob\"]"));
    }
}
