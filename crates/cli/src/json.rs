//! JSON rendering of a [`ppchecker_core::Report`] for machine
//! consumption (`ppchecker check --format json` and batch JSONL).
//!
//! The implementation lives in [`ppchecker_serve::json`] — the daemon's
//! wire schema and the CLI's JSON output are the same format by
//! construction — and is re-exported here so existing `ppchecker_cli`
//! callers keep their import paths.

pub use ppchecker_serve::json::{escape, escape_into, report_to_json, report_to_json_into};

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_core::Report;

    #[test]
    fn reexports_render_reports() {
        let json = report_to_json(&Report::default());
        assert!(json.contains("\"incomplete\":false"));
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
