//! The `ppchecker` binary. See [`ppchecker_cli`] for the command surface.

use ppchecker_cli::{
    parse_detectors, parse_serve_args, run_batch_to, run_check, run_demo, run_pack, run_policy,
    run_serve, run_trace_check, run_unpack, BatchOptions, BatchSource, CheckOptions, CliError,
};
use ppchecker_engine::available_jobs;
use std::fs;
use std::io::{self, BufWriter, Write as _};
use std::process::ExitCode;

const USAGE: &str = "\
ppchecker — is this privacy policy trustworthy?

USAGE:
  ppchecker check --policy <policy.html> --description <desc.txt> \\
                  --manifest <manifest.txt> --dex <app.dex> \\
                  [--lib-policy ID=policy.html]... [--suggest] \\
                  [--synonyms] [--constraints] [--json] [--detectors IDS]
  ppchecker batch (--corpus <dir> | --stream N | --manifest <file>) \\
                  [--seed N] [--shards N] [--jobs N] [--out results.jsonl] \\
                  [--trace trace.json] [--store <dir>] [--detectors IDS]
  ppchecker trace-check <trace.json>
  ppchecker policy <policy.html>
  ppchecker pack <dex.txt> <out.pkdx> [--key N]
  ppchecker unpack <in.pkdx> <out.txt>
  ppchecker demo
  ppchecker serve [--addr HOST:PORT] [--jsonl-addr HOST:PORT] [--workers N] \\
                  [--queue-depth N] [--max-body-bytes N] [--corpus <dir>] \\
                  [--store <dir>] [--detectors IDS]

  --detectors takes a comma-separated detector selection, e.g.
  incomplete,incorrect,inconsistent,data-safety,purpose,boilerplate.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("batch") => batch(&args[1..]),
        Some("trace-check") => {
            let path = args.get(1).ok_or_else(|| CliError("missing trace file".into()))?;
            run_trace_check(&fs::read_to_string(path)?)
        }
        Some("policy") => {
            let path = args.get(1).ok_or_else(|| CliError("missing policy file".into()))?;
            Ok(run_policy(&fs::read_to_string(path)?))
        }
        Some("pack") => {
            let input = args.get(1).ok_or_else(|| CliError("missing input".into()))?;
            let output = args.get(2).ok_or_else(|| CliError("missing output".into()))?;
            let key = flag_value(args, "--key")
                .map(|v| v.parse::<u8>().map_err(|_| CliError("bad --key".into())))
                .transpose()?
                .unwrap_or(0xA5);
            let blob = run_pack(&fs::read_to_string(input)?, key)?;
            fs::write(output, blob)?;
            Ok(format!("packed into {output}\n"))
        }
        Some("unpack") => {
            let input = args.get(1).ok_or_else(|| CliError("missing input".into()))?;
            let output = args.get(2).ok_or_else(|| CliError("missing output".into()))?;
            let text = run_unpack(&fs::read(input)?)?;
            fs::write(output, text)?;
            Ok(format!("unpacked into {output}\n"))
        }
        Some("demo") => run_demo(),
        Some("serve") => run_serve(parse_serve_args(&args[1..])?),
        _ => Err(CliError("missing or unknown subcommand".into())),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn batch(args: &[String]) -> Result<String, CliError> {
    let positive = |flag: &str| -> Result<Option<usize>, CliError> {
        flag_value(args, flag)
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError(format!("{flag} needs a positive integer")))
            })
            .transpose()
    };

    let corpus = flag_value(args, "--corpus");
    let stream = positive("--stream")?;
    let manifest = flag_value(args, "--manifest");
    let source = match (corpus, stream, manifest) {
        (Some(dir), None, None) => BatchSource::CorpusDir(dir.into()),
        (None, Some(n), None) => BatchSource::Stream {
            n,
            seed: flag_value(args, "--seed")
                .map(|v| v.parse::<u64>().map_err(|_| CliError("bad --seed".into())))
                .transpose()?
                .unwrap_or(42),
            shards: positive("--shards")?.unwrap_or_else(available_jobs),
        },
        (None, None, Some(path)) => BatchSource::Manifest(path.into()),
        _ => {
            return Err(CliError(
                "need exactly one of --corpus <dir>, --stream N, --manifest <file>".into(),
            ))
        }
    };

    let mut opts = BatchOptions { source, ..BatchOptions::default() };
    if let Some(jobs) = positive("--jobs")? {
        opts.jobs = jobs;
    }
    if let Some(path) = flag_value(args, "--trace") {
        opts.trace = Some(path.into());
    }
    if let Some(dir) = flag_value(args, "--store") {
        opts.store = Some(dir.into());
    }
    if let Some(ids) = flag_value(args, "--detectors") {
        opts.detectors = Some(parse_detectors(ids)?);
    }

    // The record stream is deterministic (stdout or --out stays
    // byte-stable across runs and job counts); the timing summary goes
    // to stderr. Records are written as they complete, so even a
    // million-app stream never buffers more than the in-flight window.
    let metrics = match flag_value(args, "--out") {
        Some(path) => {
            let file =
                fs::File::create(path).map_err(|e| CliError(format!("--out {path}: {e}")))?;
            let mut out = BufWriter::new(file);
            let metrics = run_batch_to(&opts, &mut out)?;
            out.flush().map_err(|e| CliError(format!("--out {path}: {e}")))?;
            eprint!("{metrics}");
            return Ok(format!("wrote results to {path}\n"));
        }
        None => {
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            let metrics = run_batch_to(&opts, &mut out)?;
            out.flush().map_err(|e| CliError(format!("stdout: {e}")))?;
            metrics
        }
    };
    eprint!("{metrics}");
    Ok(String::new())
}

fn check(args: &[String]) -> Result<String, CliError> {
    let need = |flag: &str| -> Result<String, CliError> {
        let path = flag_value(args, flag)
            .ok_or_else(|| CliError(format!("missing required {flag} <file>")))?;
        Ok(fs::read_to_string(path)?)
    };
    let mut opts = CheckOptions {
        policy_html: need("--policy")?,
        description: need("--description")?,
        manifest_text: need("--manifest")?,
        dex_text: need("--dex")?,
        suggest: args.iter().any(|a| a == "--suggest"),
        synonyms: args.iter().any(|a| a == "--synonyms"),
        constraints: args.iter().any(|a| a == "--constraints"),
        json: args.iter().any(|a| a == "--json"),
        ..CheckOptions::default()
    };
    if let Some(ids) = flag_value(args, "--detectors") {
        opts.detectors = Some(parse_detectors(ids)?);
    }
    for (i, a) in args.iter().enumerate() {
        if a == "--lib-policy" {
            let spec =
                args.get(i + 1).ok_or_else(|| CliError("--lib-policy needs ID=file".into()))?;
            let (id, path) = spec
                .split_once('=')
                .ok_or_else(|| CliError("--lib-policy needs ID=file".into()))?;
            opts.lib_policies.push((id.to_string(), fs::read_to_string(path)?));
        }
    }
    run_check(&opts)
}
