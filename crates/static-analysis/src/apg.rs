//! Android property graph (APG) construction.
//!
//! The APG integrates the AST (class → method → instruction containment),
//! the interprocedural CFG, the method call graph, and dependency edges
//! into one property graph ([`crate::graph::Graph`]), as the paper does
//! with its ValHunter-based module. Implicit callback edges (EdgeMiner
//! substitute) and intent edges (IccTA substitute) are added during
//! construction.

use crate::callbacks;
use crate::graph::{EdgeKind, Graph, NodeId, NodeKind};
use crate::libs::{self, KnownLib};
use ppchecker_apk::{
    stable_hash_classes, Apk, Class, ComponentKind, Dex, FnvMap, Insn, Method, MethodRef,
    ParseDexError,
};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Lifecycle entry methods per component kind.
pub fn lifecycle_methods(kind: ComponentKind) -> &'static [&'static str] {
    match kind {
        ComponentKind::Activity => {
            &["onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy", "onRestart"]
        }
        ComponentKind::Service => &["onCreate", "onStartCommand", "onBind", "onDestroy"],
        ComponentKind::Receiver => &["onReceive"],
        ComponentKind::Provider => &["onCreate", "query", "insert", "update", "delete"],
    }
}

/// The constructed property graph plus lookup indexes.
#[derive(Debug)]
pub struct Apg {
    /// The underlying graph store.
    pub graph: Graph,
    /// The recovered dex the graph was built from.
    pub dex: Dex,
    /// `(class, method)` → method node.
    pub method_ids: HashMap<(String, String), NodeId>,
    /// Method node → `(class, method)`.
    pub method_names: HashMap<NodeId, (String, String)>,
    /// Component nodes (from the manifest).
    pub component_ids: Vec<NodeId>,
    /// Dense `u32` method index + CSR call adjacency (see [`MethodIndex`]).
    dense: MethodIndex,
    /// Detected known libs with their content-hash cache keys, computed
    /// on first use (see [`Apg::known_lib_keys`]).
    lib_keys: OnceLock<Vec<(&'static KnownLib, u64)>>,
}

/// Dense-ID view of the method layer, compiled once at APG construction.
///
/// Every method body gets a `u32` index in dex declaration order (stable
/// across builds, unlike map iteration orders). The combined
/// call/implicit-callback/intent adjacency is stored as CSR arrays over
/// those indexes, so reachability and the taint fixpoint walk flat
/// slices instead of hashing `(NodeId, EdgeKind)` keys per step.
#[derive(Debug, Default)]
pub struct MethodIndex {
    /// ix → graph method node.
    node_of: Vec<NodeId>,
    /// ix → dense dex position.
    ref_of: Vec<MethodRef>,
    /// Graph method node → ix.
    ix_of_node: FnvMap<NodeId, u32>,
    /// class → method → ix: zero-allocation name lookup (a nested map is
    /// queryable with borrowed `&str` keys, unlike `(String, String)`),
    /// FNV-hashed — it is probed once per invoke in the taint kernel.
    by_name: FnvMap<String, FnvMap<String, u32>>,
    /// CSR row offsets (`method_count + 1` entries) of the combined
    /// Call + ImplicitCallback + Icc adjacency, deduplicated per row.
    call_row: Vec<u32>,
    /// CSR column array of callee indexes.
    call_col: Vec<u32>,
    /// True when the dex declares the same `(class, method)` twice; the
    /// dense view keeps the first body (mirroring `Dex::class` /
    /// `Class::method` lookup), and callers that need exact duplicate
    /// semantics fall back to name-resolved processing.
    has_duplicates: bool,
}

impl Apg {
    /// Builds the APG for an APK, unpacking the dex first if needed.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDexError`] if a packed dex cannot be recovered.
    pub fn build(apk: &Apk) -> Result<Apg, ParseDexError> {
        let dex = apk.dex()?;
        let mut graph = Graph::new();
        let mut method_ids = HashMap::new();
        let mut method_names = HashMap::new();

        // AST: classes, methods, instructions; intra-method CFG.
        for class in &dex.classes {
            let cid = graph.add_node(NodeKind::Class, class.name.clone());
            graph.set_attr(cid, "superclass", class.superclass.clone());
            for m in &class.methods {
                let mid = graph.add_node(NodeKind::Method, m.name.clone());
                graph.set_attr(mid, "class", class.name.clone());
                graph.add_edge(cid, EdgeKind::Contains, mid);
                method_ids.insert((class.name.clone(), m.name.clone()), mid);
                method_names.insert(mid, (class.name.clone(), m.name.clone()));
                let mut prev: Option<NodeId> = None;
                let mut insn_nodes = Vec::with_capacity(m.instructions.len());
                for (idx, insn) in m.instructions.iter().enumerate() {
                    let iid = graph.add_node(NodeKind::Instruction, insn.to_string());
                    graph.set_attr(iid, "index", idx.to_string());
                    graph.add_edge(mid, EdgeKind::Contains, iid);
                    if let Some(p) = prev {
                        graph.add_edge(p, EdgeKind::CfgNext, iid);
                    }
                    insn_nodes.push(iid);
                    prev = Some(iid);
                }
                // Branch edges.
                for (idx, insn) in m.instructions.iter().enumerate() {
                    let target = match insn {
                        Insn::Goto { target } => Some(*target),
                        Insn::IfNonZero { target, .. } => Some(*target),
                        _ => None,
                    };
                    if let Some(t) = target {
                        if t < insn_nodes.len() {
                            graph.add_edge(insn_nodes[idx], EdgeKind::CfgNext, insn_nodes[t]);
                        }
                    }
                }
            }
        }

        let mut apg = Apg {
            graph,
            dex,
            method_ids,
            method_names,
            component_ids: Vec::new(),
            dense: MethodIndex::default(),
            lib_keys: OnceLock::new(),
        };

        apg.add_call_edges();
        apg.add_implicit_callback_edges();
        apg.add_icc_edges();
        apg.add_components(apk);
        apg.build_dense_index();
        Ok(apg)
    }

    /// Compiles the dense method index and the combined call CSR. Runs
    /// after all edges exist; everything here is derived state.
    fn build_dense_index(&mut self) {
        let mut dense = MethodIndex::default();
        for r in self.dex.method_refs() {
            let (class, m) = self.dex.method_at(r);
            let methods = dense.by_name.entry(class.name.clone()).or_default();
            if methods.contains_key(&m.name) {
                dense.has_duplicates = true;
                continue;
            }
            // Method nodes were created in the same declaration order the
            // refs walk, so the name map resolves the first declaration's
            // node — matching `Dex::class`/`Class::method` first-match
            // semantics.
            let ix = dense.node_of.len() as u32;
            let node = self.method_ids[&(class.name.clone(), m.name.clone())];
            methods.insert(m.name.clone(), ix);
            dense.node_of.push(node);
            dense.ref_of.push(r);
        }
        // With duplicate declarations, `method_ids` (last-wins) may hand a
        // later node to the name map; the dense view is then advisory
        // only, which `has_duplicates` already signals.
        dense.ix_of_node =
            dense.node_of.iter().enumerate().map(|(ix, &n)| (n, ix as u32)).collect();

        // Combined Call + ImplicitCallback + Icc adjacency, deduplicated
        // (CHA can record one call edge per matching override and repeat
        // targets per site; reachability and taint only need the set).
        let n = dense.node_of.len();
        dense.call_row = Vec::with_capacity(n + 1);
        dense.call_row.push(0);
        let mut scratch: Vec<u32> = Vec::new();
        for &node in &dense.node_of {
            scratch.clear();
            for kind in [EdgeKind::Call, EdgeKind::ImplicitCallback, EdgeKind::Icc] {
                for target in self.graph.successors(node, kind) {
                    if let Some(&ix) = dense.ix_of_node.get(target) {
                        scratch.push(ix);
                    }
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            dense.call_col.extend_from_slice(&scratch);
            dense.call_row.push(dense.call_col.len() as u32);
        }
        self.dense = dense;
    }

    /// Number of dense-indexed methods.
    pub fn method_count(&self) -> usize {
        self.dense.node_of.len()
    }

    /// The dense index of a method node.
    pub fn method_ix(&self, id: NodeId) -> Option<u32> {
        self.dense.ix_of_node.get(&id).copied()
    }

    /// The graph node of a dense method index.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn method_node(&self, ix: u32) -> NodeId {
        self.dense.node_of[ix as usize]
    }

    /// The class and body of a dense method index — O(1), no name lookup.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn method_def(&self, ix: u32) -> (&Class, &Method) {
        self.dex.method_at(self.dense.ref_of[ix as usize])
    }

    /// Dense callee indexes of `ix` over the combined call, implicit
    /// callback, and intent adjacency (sorted, deduplicated).
    pub fn callees(&self, ix: u32) -> &[u32] {
        let row = &self.dense.call_row;
        &self.dense.call_col[row[ix as usize] as usize..row[ix as usize + 1] as usize]
    }

    /// Zero-allocation `(class, method)` → dense index lookup.
    pub fn lookup_ix(&self, class: &str, method: &str) -> Option<u32> {
        self.dense.by_name.get(class)?.get(method).copied()
    }

    /// Zero-allocation `(class, method)` → method node lookup (the
    /// borrowed-key counterpart of indexing [`Apg::method_ids`]).
    pub fn method_id(&self, class: &str, method: &str) -> Option<NodeId> {
        if self.dense.has_duplicates {
            // Keep exact last-wins map semantics for degenerate dexes.
            return self.method_ids.get(&(class.to_string(), method.to_string())).copied();
        }
        self.lookup_ix(class, method).map(|ix| self.method_node(ix))
    }

    /// True when the dex declares the same `(class, method)` twice, making
    /// the dense view advisory (first declaration wins).
    pub fn has_duplicate_methods(&self) -> bool {
        self.dense.has_duplicates
    }

    /// Known third-party libs embedded in the app, each with the
    /// content-hash key its taint summary is cached under. Detection and
    /// hashing run once per APG — the dex is immutable after build — so
    /// a batch engine re-analyzing the app hits this as a slice read.
    pub fn known_lib_keys(&self) -> &[(&'static KnownLib, u64)] {
        self.lib_keys.get_or_init(|| {
            libs::detect_libs(&self.dex)
                .into_iter()
                .map(|lib| {
                    let mut classes: Vec<&Class> = self
                        .dex
                        .classes
                        .iter()
                        .filter(|c| c.name.starts_with(lib.prefix))
                        .collect();
                    classes.sort_by(|a, b| a.name.cmp(&b.name));
                    (lib, stable_hash_classes(classes.iter().copied()))
                })
                .collect()
        })
    }

    /// Method call graph: for each invoke, link the caller method to every
    /// in-dex class that defines the callee (exact class or a subclass
    /// overriding it — a simple class-hierarchy analysis).
    fn add_call_edges(&mut self) {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for class in &self.dex.classes {
            for m in &class.methods {
                let Some(&caller) = self.method_ids.get(&(class.name.clone(), m.name.clone()))
                else {
                    continue;
                };
                for insn in &m.instructions {
                    let Insn::Invoke { class: cc, method: mm, .. } = insn else {
                        continue;
                    };
                    for target in self.resolve_targets(cc, mm) {
                        edges.push((caller, target));
                    }
                }
            }
        }
        for (a, b) in edges {
            self.graph.add_edge(a, EdgeKind::Call, b);
        }
    }

    /// Resolves an invocation to method nodes: the named class itself, or
    /// any class whose superclass chain reaches it.
    fn resolve_targets(&self, class: &str, method: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(&id) = self.method_ids.get(&(class.to_string(), method.to_string())) {
            out.push(id);
        }
        for c in &self.dex.classes {
            if c.name == class {
                continue;
            }
            if self.superclass_chain_contains(&c.name, class) && c.method(method).is_some() {
                if let Some(&id) = self.method_ids.get(&(c.name.clone(), method.to_string())) {
                    out.push(id);
                }
            }
        }
        out
    }

    fn superclass_chain_contains(&self, class: &str, ancestor: &str) -> bool {
        let mut cur = class.to_string();
        for _ in 0..32 {
            let Some(c) = self.dex.class(&cur) else { return false };
            if c.superclass == ancestor {
                return true;
            }
            cur = c.superclass.clone();
        }
        false
    }

    /// EdgeMiner substitute: for each registration call, find the listener
    /// object (a `new-instance` reaching one of the argument registers in
    /// the same method) and add an edge to its callback method.
    fn add_implicit_callback_edges(&mut self) {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for class in &self.dex.classes {
            for m in &class.methods {
                let Some(&caller) = self.method_ids.get(&(class.name.clone(), m.name.clone()))
                else {
                    continue;
                };
                for (idx, insn) in m.instructions.iter().enumerate() {
                    let Insn::Invoke { class: cc, method: mm, args, .. } = insn else {
                        continue;
                    };
                    let Some(cb_name) = callbacks::callback_for(cc, mm) else {
                        continue;
                    };
                    // Backward scan: which class was newly instantiated into
                    // one of the argument registers?
                    for &arg in args {
                        if let Some(listener) = last_new_instance(&m.instructions[..idx], arg) {
                            if let Some(&target) =
                                self.method_ids.get(&(listener.clone(), cb_name.to_string()))
                            {
                                edges.push((caller, target));
                            }
                        }
                    }
                    // The registering class itself may implement the
                    // listener interface ("this" receivers).
                    if let Some(&target) =
                        self.method_ids.get(&(class.name.clone(), cb_name.to_string()))
                    {
                        edges.push((caller, target));
                    }
                }
            }
        }
        for (a, b) in edges {
            self.graph.add_edge(a, EdgeKind::ImplicitCallback, b);
        }
    }

    /// IccTA substitute: intent construction + `startActivity`/`startService`
    /// /`sendBroadcast` becomes an edge to the target component's lifecycle
    /// entry methods.
    fn add_icc_edges(&mut self) {
        const LAUNCHERS: &[(&str, &[&str])] = &[
            ("startActivity", &["onCreate"]),
            ("startService", &["onCreate", "onStartCommand"]),
            ("sendBroadcast", &["onReceive"]),
        ];
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for class in &self.dex.classes {
            for m in &class.methods {
                let Some(&caller) = self.method_ids.get(&(class.name.clone(), m.name.clone()))
                else {
                    continue;
                };
                // Map register → intent target class (via setClass-style calls).
                let mut intent_target: HashMap<u32, String> = HashMap::new();
                let mut strings: HashMap<u32, String> = HashMap::new();
                for insn in &m.instructions {
                    match insn {
                        Insn::ConstString { dst, value } => {
                            strings.insert(*dst, value.clone());
                        }
                        Insn::Invoke { class: cc, method: mm, args, .. }
                            if cc == "android.content.Intent"
                                && matches!(
                                    mm.as_str(),
                                    "setClass" | "setClassName" | "setComponent"
                                ) =>
                        {
                            if let (Some(&intent_reg), Some(target)) =
                                (args.first(), args.iter().skip(1).find_map(|r| strings.get(r)))
                            {
                                intent_target.insert(intent_reg, target.clone());
                            }
                        }
                        Insn::Invoke { method: mm, args, .. } => {
                            let Some((_, entries)) = LAUNCHERS.iter().find(|(name, _)| name == mm)
                            else {
                                continue;
                            };
                            for arg in args.iter().skip(1) {
                                if let Some(target_class) = intent_target.get(arg) {
                                    for entry in *entries {
                                        if let Some(&t) = self
                                            .method_ids
                                            .get(&(target_class.clone(), entry.to_string()))
                                        {
                                            edges.push((caller, t));
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        for (a, b) in edges {
            self.graph.add_edge(a, EdgeKind::Icc, b);
        }
    }

    /// Component nodes and lifecycle edges from the manifest.
    fn add_components(&mut self, apk: &Apk) {
        for comp in &apk.manifest.components {
            let nid = self.graph.add_node(NodeKind::Component, comp.class_name.clone());
            self.graph.set_attr(nid, "kind", format!("{:?}", comp.kind));
            if comp.main {
                self.graph.set_attr(nid, "main", "true");
            }
            for entry in lifecycle_methods(comp.kind) {
                if let Some(&mid) =
                    self.method_ids.get(&(comp.class_name.clone(), entry.to_string()))
                {
                    self.graph.add_edge(nid, EdgeKind::Lifecycle, mid);
                }
            }
            self.component_ids.push(nid);
        }
    }

    /// The `(class, method)` names for a method node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a method node of this APG.
    pub fn method_name(&self, id: NodeId) -> &(String, String) {
        &self.method_names[&id]
    }
}

/// Finds the class most recently `new-instance`d into `reg` (also follows
/// simple `move` chains), scanning backwards.
fn last_new_instance(insns: &[Insn], reg: u32) -> Option<String> {
    let mut wanted = reg;
    for insn in insns.iter().rev() {
        match insn {
            Insn::NewInstance { dst, class } if *dst == wanted => return Some(class.clone()),
            Insn::Move { dst, src } if *dst == wanted => wanted = *src,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    fn sample_apk() -> Apk {
        let mut manifest = Manifest::new("com.example.app");
        manifest.add_component(ComponentKind::Activity, "com.example.app.Main", true);
        let dex = Dex::builder()
            .class("com.example.app.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.new_instance(2, "com.example.app.Listener");
                    m.invoke_virtual("android.view.View", "setOnClickListener", &[1, 2], None);
                    m.invoke_virtual("com.example.app.Helper", "load", &[0], None);
                });
            })
            .class("com.example.app.Listener", |c| {
                c.implements("android.view.View$OnClickListener");
                c.method("onClick", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(3));
                });
            })
            .class("com.example.app.Helper", |c| {
                c.method("load", 1, |_| {});
            })
            .build();
        Apk::new(manifest, dex)
    }

    #[test]
    fn builds_ast_nodes() {
        let apg = Apg::build(&sample_apk()).unwrap();
        assert!(apg
            .method_ids
            .contains_key(&("com.example.app.Main".to_string(), "onCreate".to_string())));
        assert!(apg.graph.node_count() > 5);
    }

    #[test]
    fn call_edge_to_helper() {
        let apg = Apg::build(&sample_apk()).unwrap();
        let caller = apg.method_ids[&("com.example.app.Main".into(), "onCreate".into())];
        let callee = apg.method_ids[&("com.example.app.Helper".into(), "load".into())];
        assert!(apg.graph.successors(caller, EdgeKind::Call).contains(&callee));
    }

    #[test]
    fn implicit_callback_edge_to_listener() {
        let apg = Apg::build(&sample_apk()).unwrap();
        let caller = apg.method_ids[&("com.example.app.Main".into(), "onCreate".into())];
        let cb = apg.method_ids[&("com.example.app.Listener".into(), "onClick".into())];
        assert!(apg.graph.successors(caller, EdgeKind::ImplicitCallback).contains(&cb));
    }

    #[test]
    fn lifecycle_edge_from_component() {
        let apg = Apg::build(&sample_apk()).unwrap();
        let comp = apg.component_ids[0];
        let entry = apg.method_ids[&("com.example.app.Main".into(), "onCreate".into())];
        assert!(apg.graph.successors(comp, EdgeKind::Lifecycle).contains(&entry));
    }

    #[test]
    fn dense_index_round_trips() {
        let apg = Apg::build(&sample_apk()).unwrap();
        assert_eq!(apg.method_count(), 3);
        assert!(!apg.has_duplicate_methods());
        for ix in 0..apg.method_count() as u32 {
            let node = apg.method_node(ix);
            assert_eq!(apg.method_ix(node), Some(ix));
            let (class, m) = apg.method_def(ix);
            assert_eq!(apg.lookup_ix(&class.name, &m.name), Some(ix));
            assert_eq!(apg.method_id(&class.name, &m.name), Some(node));
            assert_eq!(apg.method_name(node), &(class.name.clone(), m.name.clone()));
        }
        assert_eq!(apg.lookup_ix("com.example.app.Main", "missing"), None);
    }

    #[test]
    fn dense_callees_mirror_graph_edges() {
        use std::collections::HashSet;
        let apg = Apg::build(&sample_apk()).unwrap();
        for ix in 0..apg.method_count() as u32 {
            let node = apg.method_node(ix);
            let via_csr: HashSet<NodeId> =
                apg.callees(ix).iter().map(|&c| apg.method_node(c)).collect();
            let mut via_map: HashSet<NodeId> = HashSet::new();
            for kind in [EdgeKind::Call, EdgeKind::ImplicitCallback, EdgeKind::Icc] {
                via_map.extend(apg.graph.successors(node, kind).iter().copied());
            }
            assert_eq!(via_csr, via_map);
        }
    }

    #[test]
    fn icc_edge_to_started_service() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        manifest.add_component(ComponentKind::Service, "com.x.Sync", false);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.new_instance(1, "android.content.Intent");
                    m.const_string(2, "com.x.Sync");
                    m.invoke_virtual("android.content.Intent", "setClass", &[1, 0, 2], None);
                    m.invoke_virtual("android.app.Activity", "startService", &[0, 1], None);
                });
            })
            .class("com.x.Sync", |c| {
                c.extends("android.app.Service");
                c.method("onStartCommand", 3, |_| {});
            })
            .build();
        let apg = Apg::build(&Apk::new(manifest, dex)).unwrap();
        let caller = apg.method_ids[&("com.x.Main".into(), "onCreate".into())];
        let target = apg.method_ids[&("com.x.Sync".into(), "onStartCommand".into())];
        assert!(apg.graph.successors(caller, EdgeKind::Icc).contains(&target));
    }

    #[test]
    fn virtual_dispatch_resolves_subclass_override() {
        let dex = Dex::builder()
            .class("com.x.Base", |c| {
                c.method("work", 1, |_| {});
            })
            .class("com.x.Derived", |c| {
                c.extends("com.x.Base");
                c.method("work", 1, |_| {});
            })
            .class("com.x.Caller", |c| {
                c.method("go", 1, |m| {
                    m.invoke_virtual("com.x.Base", "work", &[0], None);
                });
            })
            .build();
        let apg = Apg::build(&Apk::new(Manifest::new("com.x"), dex)).unwrap();
        let caller = apg.method_ids[&("com.x.Caller".into(), "go".into())];
        let base = apg.method_ids[&("com.x.Base".into(), "work".into())];
        let derived = apg.method_ids[&("com.x.Derived".into(), "work".into())];
        let succs = apg.graph.successors(caller, EdgeKind::Call);
        assert!(succs.contains(&base) && succs.contains(&derived));
    }
}

/// Size summary of a constructed APG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApgStats {
    /// Class nodes.
    pub classes: usize,
    /// Method nodes.
    pub methods: usize,
    /// Instruction nodes.
    pub instructions: usize,
    /// Component nodes.
    pub components: usize,
    /// Total edges of all kinds.
    pub edges: usize,
}

impl Apg {
    /// Computes node/edge counts by kind.
    pub fn stats(&self) -> ApgStats {
        use crate::graph::NodeKind;
        ApgStats {
            classes: self.graph.nodes_of_kind(NodeKind::Class).count(),
            methods: self.graph.nodes_of_kind(NodeKind::Method).count(),
            instructions: self.graph.nodes_of_kind(NodeKind::Instruction).count(),
            components: self.graph.nodes_of_kind(NodeKind::Component).count(),
            edges: self.graph.edge_count(),
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    #[test]
    fn stats_count_every_kind() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.const_string(1, "hello");
                });
            })
            .build();
        let apg = Apg::build(&Apk::new(manifest, dex)).unwrap();
        let s = apg.stats();
        assert_eq!(s.classes, 1);
        assert_eq!(s.methods, 1);
        assert_eq!(s.instructions, 2); // const-string + implicit return
        assert_eq!(s.components, 1);
        assert!(s.edges >= 4); // contains ×3 + cfg + lifecycle
    }
}
