//! Third-party library detection by class-name prefix.
//!
//! "To identify the third-party libs used in app, we maintain a list of
//! class name prefixes of third-party libs. Then, the static analysis
//! module goes through all class names to find the third-party libs
//! integrated in the app." The list covers the three lib families the
//! paper evaluates: 52 ad libs, 9 social libs, and 20 development tools.

use ppchecker_apk::Dex;

/// Family of a third-party library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LibKind {
    /// Advertisement library.
    Ad,
    /// Social-network library.
    Social,
    /// Development tool (analytics, crash reporting, engines, ...).
    DevTool,
}

/// A known third-party library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownLib {
    /// Stable identifier (used to look up the lib's privacy policy).
    pub id: &'static str,
    /// Class-name prefix that marks the lib inside an APK.
    pub prefix: &'static str,
    /// Family.
    pub kind: LibKind,
}

const fn lib(id: &'static str, prefix: &'static str, kind: LibKind) -> KnownLib {
    KnownLib { id, prefix, kind }
}

/// The known-library table: 52 ad + 9 social + 20 dev tools = 81 libraries,
/// matching the corpus in §V-A.
pub const KNOWN_LIBS: &[KnownLib] = &[
    // ---- 52 ad libraries ----
    lib("admob", "com.google.android.gms.ads", LibKind::Ad),
    lib("adwhirl", "com.adwhirl", LibKind::Ad),
    lib("airpush", "com.airpush.android", LibKind::Ad),
    lib("adcolony", "com.adcolony.sdk", LibKind::Ad),
    lib("applovin", "com.applovin", LibKind::Ad),
    lib("appbrain", "com.appbrain", LibKind::Ad),
    lib("appnext", "com.appnext", LibKind::Ad),
    lib("amazon-ads", "com.amazon.device.ads", LibKind::Ad),
    lib("baidu-ads", "com.baidu.mobads", LibKind::Ad),
    lib("chartboost", "com.chartboost.sdk", LibKind::Ad),
    lib("domob", "cn.domob.android", LibKind::Ad),
    lib("flurry-ads", "com.flurry.android.ads", LibKind::Ad),
    lib("facebook-ads", "com.facebook.ads", LibKind::Ad),
    lib("fyber", "com.fyber", LibKind::Ad),
    lib("heyzap", "com.heyzap.sdk", LibKind::Ad),
    lib("inmobi", "com.inmobi", LibKind::Ad),
    lib("inneractive", "com.inneractive.api.ads", LibKind::Ad),
    lib("ironsource", "com.ironsource.sdk", LibKind::Ad),
    lib("jumptap", "com.jumptap.adtag", LibKind::Ad),
    lib("kiip", "me.kiip.sdk", LibKind::Ad),
    lib("leadbolt", "com.pad.android", LibKind::Ad),
    lib("madvertise", "de.madvertise.android", LibKind::Ad),
    lib("medialets", "com.medialets", LibKind::Ad),
    lib("millennial", "com.millennialmedia", LibKind::Ad),
    lib("mdotm", "com.mdotm.android", LibKind::Ad),
    lib("mobclix", "com.mobclix.android", LibKind::Ad),
    lib("mobfox", "com.mobfox.sdk", LibKind::Ad),
    lib("mopub", "com.mopub.mobileads", LibKind::Ad),
    lib("nexage", "com.nexage.android", LibKind::Ad),
    lib("pubmatic", "com.pubmatic.sdk", LibKind::Ad),
    lib("revmob", "com.revmob", LibKind::Ad),
    lib("smaato", "com.smaato.soma", LibKind::Ad),
    lib("smartadserver", "com.smartadserver.android", LibKind::Ad),
    lib("startapp", "com.startapp.android", LibKind::Ad),
    lib("swelen", "com.swelen.ads", LibKind::Ad),
    lib("tapjoy", "com.tapjoy", LibKind::Ad),
    lib("tremor", "com.tremorvideo.sdk", LibKind::Ad),
    lib("unityads", "com.unity3d.ads", LibKind::Ad),
    lib("vungle", "com.vungle.publisher", LibKind::Ad),
    lib("waps", "com.waps", LibKind::Ad),
    lib("wooboo", "com.wooboo.adlib_android", LibKind::Ad),
    lib("youmi", "net.youmi.android", LibKind::Ad),
    lib("zestadz", "com.zestadz.android", LibKind::Ad),
    lib("adfonic", "com.adfonic.android", LibKind::Ad),
    lib("adknowledge", "com.adknowledge.superrewards", LibKind::Ad),
    lib("admarvel", "com.admarvel.android", LibKind::Ad),
    lib("admixer", "com.admixer", LibKind::Ad),
    lib("adperium", "com.adperium.sdk", LibKind::Ad),
    lib("appflood", "com.appflood", LibKind::Ad),
    lib("casee", "com.casee.adsdk", LibKind::Ad),
    lib("greystripe", "com.greystripe.sdk", LibKind::Ad),
    lib("pontiflex", "com.pontiflex.mobile", LibKind::Ad),
    // ---- 9 social libraries ----
    lib("facebook", "com.facebook.android", LibKind::Social),
    lib("twitter", "com.twitter.sdk", LibKind::Social),
    lib("weibo", "com.weibo.sdk.android", LibKind::Social),
    lib("wechat", "com.tencent.mm.sdk", LibKind::Social),
    lib("linkedin", "com.linkedin.platform", LibKind::Social),
    lib("vkontakte", "com.vk.sdk", LibKind::Social),
    lib("googleplus", "com.google.android.gms.plus", LibKind::Social),
    lib("pinterest", "com.pinterest.android.pdk", LibKind::Social),
    lib("instagram", "com.instagram.android", LibKind::Social),
    // ---- 20 development tools ----
    lib("unity3d", "com.unity3d.player", LibKind::DevTool),
    lib("flurry", "com.flurry.android", LibKind::DevTool),
    lib("google-analytics", "com.google.android.gms.analytics", LibKind::DevTool),
    lib("crashlytics", "com.crashlytics.android", LibKind::DevTool),
    lib("mixpanel", "com.mixpanel.android", LibKind::DevTool),
    lib("localytics", "com.localytics.android", LibKind::DevTool),
    lib("umeng", "com.umeng.analytics", LibKind::DevTool),
    lib("newrelic", "com.newrelic.agent.android", LibKind::DevTool),
    lib("appsflyer", "com.appsflyer", LibKind::DevTool),
    lib("adjust", "com.adjust.sdk", LibKind::DevTool),
    lib("amplitude", "com.amplitude.api", LibKind::DevTool),
    lib("bugsense", "com.bugsense.trace", LibKind::DevTool),
    lib("acra", "org.acra", LibKind::DevTool),
    lib("parse", "com.parse", LibKind::DevTool),
    lib("urbanairship", "com.urbanairship", LibKind::DevTool),
    lib("pushwoosh", "com.pushwoosh", LibKind::DevTool),
    lib("cocos2dx", "org.cocos2dx.lib", LibKind::DevTool),
    lib("corona", "com.ansca.corona", LibKind::DevTool),
    lib("phonegap", "org.apache.cordova", LibKind::DevTool),
    lib("testfairy", "com.testfairy", LibKind::DevTool),
];

/// Finds a known library by id.
pub fn by_id(id: &str) -> Option<&'static KnownLib> {
    KNOWN_LIBS.iter().find(|l| l.id == id)
}

/// Detects the third-party libraries embedded in a dex by scanning class
/// name prefixes. Returns library ids, deduplicated, in table order.
pub fn detect_libs(dex: &Dex) -> Vec<&'static KnownLib> {
    // Scanned per app analysis: keep it allocation-free apart from the
    // result vector, and let `starts_with` reject on the first byte.
    KNOWN_LIBS.iter().filter(|l| dex.classes.iter().any(|c| c.name.starts_with(l.prefix))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::Dex;

    #[test]
    fn family_counts_match_the_paper() {
        let ads = KNOWN_LIBS.iter().filter(|l| l.kind == LibKind::Ad).count();
        let social = KNOWN_LIBS.iter().filter(|l| l.kind == LibKind::Social).count();
        let dev = KNOWN_LIBS.iter().filter(|l| l.kind == LibKind::DevTool).count();
        assert_eq!(ads, 52);
        assert_eq!(social, 9);
        assert_eq!(dev, 20);
    }

    #[test]
    fn ids_and_prefixes_unique() {
        let mut ids: Vec<&str> = KNOWN_LIBS.iter().map(|l| l.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), KNOWN_LIBS.len());
        let mut ps: Vec<&str> = KNOWN_LIBS.iter().map(|l| l.prefix).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), KNOWN_LIBS.len());
    }

    #[test]
    fn detect_by_prefix() {
        let dex = Dex::builder()
            .class("com.example.app.Main", |c| {
                c.method("onCreate", 1, |_| {});
            })
            .class("com.google.android.gms.ads.AdView", |c| {
                c.method("loadAd", 1, |_| {});
            })
            .class("com.unity3d.player.UnityPlayer", |c| {
                c.method("init", 0, |_| {});
            })
            .build();
        let libs = detect_libs(&dex);
        let ids: Vec<&str> = libs.iter().map(|l| l.id).collect();
        assert_eq!(ids, vec!["admob", "unity3d"]);
    }

    #[test]
    fn app_without_libs_detects_nothing() {
        let dex = Dex::builder()
            .class("com.example.solo.Main", |c| {
                c.method("onCreate", 1, |_| {});
            })
            .build();
        assert!(detect_libs(&dex).is_empty());
    }
}
