//! Sink APIs for the taint analysis.
//!
//! Per the paper: "The sinks refer to APIs that store information into a
//! log (e.g., `Log.d()`) or a file (e.g., `FileOutputStream.write()`), or
//! send it out through network (e.g., `AndroidHttpClient.execute()`),
//! SMS (`sendTextMessage()`), or Bluetooth
//! (`BluetoothOutputStream.write()`)."

use ppchecker_apk::FnvMap;
use std::fmt;
use std::sync::OnceLock;

/// Where tainted data escapes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SinkKind {
    /// Written to the Android log.
    Log,
    /// Written to a file.
    File,
    /// Sent over the network.
    Network,
    /// Sent by SMS.
    Sms,
    /// Sent over Bluetooth.
    Bluetooth,
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SinkKind::Log => "log",
            SinkKind::File => "file",
            SinkKind::Network => "network",
            SinkKind::Sms => "sms",
            SinkKind::Bluetooth => "bluetooth",
        };
        f.write_str(s)
    }
}

/// A sink API entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkApi {
    /// Declaring class.
    pub class: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Sink category.
    pub kind: SinkKind,
}

/// The sink table.
pub const SINKS: &[SinkApi] = &[
    sink("android.util.Log", "d", SinkKind::Log),
    sink("android.util.Log", "e", SinkKind::Log),
    sink("android.util.Log", "i", SinkKind::Log),
    sink("android.util.Log", "v", SinkKind::Log),
    sink("android.util.Log", "w", SinkKind::Log),
    sink("android.util.Log", "wtf", SinkKind::Log),
    sink("java.io.FileOutputStream", "write", SinkKind::File),
    sink("java.io.FileWriter", "write", SinkKind::File),
    sink("java.io.BufferedWriter", "write", SinkKind::File),
    sink("java.io.ObjectOutputStream", "writeObject", SinkKind::File),
    sink("android.content.SharedPreferences$Editor", "putString", SinkKind::File),
    sink("android.net.http.AndroidHttpClient", "execute", SinkKind::Network),
    sink("org.apache.http.impl.client.DefaultHttpClient", "execute", SinkKind::Network),
    sink("java.net.HttpURLConnection", "getOutputStream", SinkKind::Network),
    sink("java.net.URLConnection", "getOutputStream", SinkKind::Network),
    sink("java.io.OutputStream", "write", SinkKind::Network),
    sink("java.io.DataOutputStream", "writeBytes", SinkKind::Network),
    sink("java.net.Socket", "getOutputStream", SinkKind::Network),
    sink("android.webkit.WebView", "loadUrl", SinkKind::Network),
    sink("android.telephony.SmsManager", "sendTextMessage", SinkKind::Sms),
    sink("android.telephony.SmsManager", "sendMultipartTextMessage", SinkKind::Sms),
    sink("android.telephony.SmsManager", "sendDataMessage", SinkKind::Sms),
    sink("android.bluetooth.BluetoothSocket", "getOutputStream", SinkKind::Bluetooth),
    sink("android.bluetooth.BluetoothOutputStream", "write", SinkKind::Bluetooth),
];

const fn sink(class: &'static str, method: &'static str, kind: SinkKind) -> SinkApi {
    SinkApi { class, method, kind }
}

/// Sink entries grouped by declaring class, built once, so a failed
/// class probe is a single hash lookup rather than a table scan.
fn by_class() -> &'static FnvMap<&'static str, Vec<&'static SinkApi>> {
    static MAP: OnceLock<FnvMap<&'static str, Vec<&'static SinkApi>>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut map: FnvMap<&'static str, Vec<&'static SinkApi>> = FnvMap::default();
        for sink in SINKS {
            map.entry(sink.class).or_default().push(sink);
        }
        map
    })
}

/// Looks up `(class, method)` in the sink table.
pub fn lookup(class: &str, method: &str) -> Option<&'static SinkApi> {
    // Every sink lives under `android.`, `java.` or `org.apache.`; one
    // byte rejects app-package classes before the map is even hashed.
    if !matches!(class.as_bytes().first(), Some(b'a') | Some(b'j') | Some(b'o')) {
        return None;
    }
    by_class().get(class)?.iter().find(|s| s.method == method).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_a_sink() {
        assert_eq!(lookup("android.util.Log", "d").unwrap().kind, SinkKind::Log);
        assert_eq!(lookup("android.util.Log", "i").unwrap().kind, SinkKind::Log);
    }

    #[test]
    fn all_five_categories_present() {
        for kind in
            [SinkKind::Log, SinkKind::File, SinkKind::Network, SinkKind::Sms, SinkKind::Bluetooth]
        {
            assert!(SINKS.iter().any(|s| s.kind == kind), "missing {kind}");
        }
    }

    #[test]
    fn non_sink_is_none() {
        assert!(lookup("android.util.Log", "isLoggable").is_none());
    }
}
