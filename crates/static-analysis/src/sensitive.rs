//! The sensitive-API table: 68 Android APIs mapped to private information.
//!
//! The paper selects 68 sensitive APIs "covering the information about
//! device ID, IP address, cookie, location, account, contact, calendar,
//! telephone number, camera, audio, and app list" from the PScout and
//! SuSi-style data sets, and maps each to the information it yields by
//! reading the official documentation.

use ppchecker_apk::{FnvMap, PrivateInfo};
use std::sync::OnceLock;

/// One sensitive API: declaring class, method name, and the information it
/// exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitiveApi {
    /// Fully qualified declaring class.
    pub class: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Private information obtained by calling it.
    pub info: PrivateInfo,
}

/// The full 68-entry sensitive API table.
pub const SENSITIVE_APIS: &[SensitiveApi] = &[
    // ---- location (14) ----
    api("android.location.LocationManager", "getLastKnownLocation", PrivateInfo::Location),
    api("android.location.LocationManager", "requestLocationUpdates", PrivateInfo::Location),
    api("android.location.LocationManager", "requestSingleUpdate", PrivateInfo::Location),
    api("android.location.LocationManager", "getBestProvider", PrivateInfo::Location),
    api("android.location.LocationManager", "addNmeaListener", PrivateInfo::Location),
    api("android.location.Location", "getLatitude", PrivateInfo::Location),
    api("android.location.Location", "getLongitude", PrivateInfo::Location),
    api("android.location.Location", "getAltitude", PrivateInfo::Location),
    api("android.location.Location", "getAccuracy", PrivateInfo::Location),
    api("android.location.Geocoder", "getFromLocation", PrivateInfo::Location),
    api("android.location.Geocoder", "getFromLocationName", PrivateInfo::Location),
    api("android.telephony.TelephonyManager", "getCellLocation", PrivateInfo::Location),
    api("android.telephony.gsm.GsmCellLocation", "getCid", PrivateInfo::Location),
    api("android.media.ExifInterface", "getLatLong", PrivateInfo::Location),
    // ---- device id (7) ----
    api("android.telephony.TelephonyManager", "getDeviceId", PrivateInfo::DeviceId),
    api("android.telephony.TelephonyManager", "getImei", PrivateInfo::DeviceId),
    api("android.telephony.TelephonyManager", "getMeid", PrivateInfo::DeviceId),
    api("android.telephony.TelephonyManager", "getSubscriberId", PrivateInfo::DeviceId),
    api("android.telephony.TelephonyManager", "getSimSerialNumber", PrivateInfo::DeviceId),
    api("android.provider.Settings$Secure", "getString", PrivateInfo::DeviceId),
    api("android.os.Build", "getSerial", PrivateInfo::DeviceId),
    // ---- phone number (2) ----
    api("android.telephony.TelephonyManager", "getLine1Number", PrivateInfo::PhoneNumber),
    api("android.telephony.TelephonyManager", "getVoiceMailNumber", PrivateInfo::PhoneNumber),
    // ---- ip address / network (5) ----
    api("java.net.InetAddress", "getHostAddress", PrivateInfo::IpAddress),
    api("android.net.wifi.WifiInfo", "getIpAddress", PrivateInfo::IpAddress),
    api("android.net.wifi.WifiInfo", "getMacAddress", PrivateInfo::IpAddress),
    api("android.net.wifi.WifiInfo", "getSSID", PrivateInfo::IpAddress),
    api("android.net.wifi.WifiManager", "getConnectionInfo", PrivateInfo::IpAddress),
    // ---- cookie (2) ----
    api("android.webkit.CookieManager", "getCookie", PrivateInfo::Cookie),
    api("java.net.HttpCookie", "getValue", PrivateInfo::Cookie),
    // ---- account (5) ----
    api("android.accounts.AccountManager", "getAccounts", PrivateInfo::Account),
    api("android.accounts.AccountManager", "getAccountsByType", PrivateInfo::Account),
    api("android.accounts.AccountManager", "getAuthToken", PrivateInfo::Account),
    api("android.accounts.AccountManager", "getPassword", PrivateInfo::Account),
    api("android.accounts.AccountManager", "getUserData", PrivateInfo::Account),
    // ---- contact (2) ----
    api("android.provider.ContactsContract$Contacts", "getLookupUri", PrivateInfo::Contact),
    api("android.provider.ContactsContract$PhoneLookup", "lookupContact", PrivateInfo::Contact),
    // ---- calendar (1) ----
    api("android.provider.CalendarContract$Instances", "query", PrivateInfo::Calendar),
    // ---- camera (4) ----
    api("android.hardware.Camera", "open", PrivateInfo::Camera),
    api("android.hardware.Camera", "takePicture", PrivateInfo::Camera),
    api("android.hardware.camera2.CameraManager", "openCamera", PrivateInfo::Camera),
    api("android.media.MediaRecorder", "setVideoSource", PrivateInfo::Camera),
    // ---- audio (3) ----
    api("android.media.MediaRecorder", "setAudioSource", PrivateInfo::Audio),
    api("android.media.AudioRecord", "startRecording", PrivateInfo::Audio),
    api("android.media.AudioRecord", "read", PrivateInfo::Audio),
    // ---- app list (4) ----
    api("android.content.pm.PackageManager", "getInstalledPackages", PrivateInfo::AppList),
    api("android.content.pm.PackageManager", "getInstalledApplications", PrivateInfo::AppList),
    api("android.app.ActivityManager", "getRunningTasks", PrivateInfo::AppList),
    api("android.app.ActivityManager", "getRunningAppProcesses", PrivateInfo::AppList),
    // ---- sms (3) ----
    api("android.telephony.SmsMessage", "getMessageBody", PrivateInfo::Sms),
    api("android.telephony.SmsMessage", "getOriginatingAddress", PrivateInfo::Sms),
    api("android.telephony.SmsMessage", "getDisplayMessageBody", PrivateInfo::Sms),
    // ---- call log (1) ----
    api("android.provider.CallLog$Calls", "getLastOutgoingCall", PrivateInfo::CallLog),
    // ---- browsing history (3) ----
    api("android.provider.Browser", "getAllBookmarks", PrivateInfo::BrowsingHistory),
    api("android.provider.Browser", "getAllVisitedUrls", PrivateInfo::BrowsingHistory),
    api("android.webkit.WebView", "getUrl", PrivateInfo::BrowsingHistory),
    // ---- sensors (2) ----
    api("android.hardware.SensorManager", "registerListener", PrivateInfo::Sensor),
    api("android.hardware.SensorManager", "getSensorList", PrivateInfo::Sensor),
    // ---- bluetooth (2) ----
    api("android.bluetooth.BluetoothAdapter", "getAddress", PrivateInfo::Bluetooth),
    api("android.bluetooth.BluetoothAdapter", "getBondedDevices", PrivateInfo::Bluetooth),
    // ---- carrier / sim (4) ----
    api("android.telephony.TelephonyManager", "getNetworkOperator", PrivateInfo::Carrier),
    api("android.telephony.TelephonyManager", "getNetworkOperatorName", PrivateInfo::Carrier),
    api("android.telephony.TelephonyManager", "getSimOperator", PrivateInfo::Carrier),
    api("android.telephony.TelephonyManager", "getSimCountryIso", PrivateInfo::Carrier),
    // ---- wifi scan (2) ----
    api("android.net.wifi.WifiManager", "getScanResults", PrivateInfo::Location),
    api("android.net.wifi.WifiManager", "getConfiguredNetworks", PrivateInfo::IpAddress),
    // ---- clipboard (1) ----
    api("android.content.ClipboardManager", "getText", PrivateInfo::Clipboard),
    // ---- audio again? no: camera gallery (1) ----
    api("android.provider.MediaStore$Images$Media", "query", PrivateInfo::Camera),
];

const fn api(class: &'static str, method: &'static str, info: PrivateInfo) -> SensitiveApi {
    SensitiveApi { class, method, info }
}

/// Table entries grouped by declaring class, built once. A failed class
/// probe — the overwhelmingly common case on real bytecode — costs one
/// hash lookup instead of a scan over all 68 entries.
fn by_class() -> &'static FnvMap<&'static str, Vec<&'static SensitiveApi>> {
    static MAP: OnceLock<FnvMap<&'static str, Vec<&'static SensitiveApi>>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut map: FnvMap<&'static str, Vec<&'static SensitiveApi>> = FnvMap::default();
        for api in SENSITIVE_APIS {
            map.entry(api.class).or_default().push(api);
        }
        map
    })
}

/// Looks up `(class, method)` in the sensitive-API table.
pub fn lookup(class: &str, method: &str) -> Option<&'static SensitiveApi> {
    // Every table entry lives under `android.` or `java.`; one byte
    // rejects app-package classes before the map is even hashed.
    if !matches!(class.as_bytes().first(), Some(b'a') | Some(b'j')) {
        return None;
    }
    by_class().get(class)?.iter().find(|a| a.method == method).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_68_apis() {
        assert_eq!(SENSITIVE_APIS.len(), 68, "the paper's table has 68 APIs");
    }

    #[test]
    fn entries_are_unique() {
        let mut keys: Vec<(&str, &str)> =
            SENSITIVE_APIS.iter().map(|a| (a.class, a.method)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), SENSITIVE_APIS.len());
    }

    #[test]
    fn lookup_known_api() {
        let a = lookup("android.telephony.TelephonyManager", "getDeviceId").unwrap();
        assert_eq!(a.info, PrivateInfo::DeviceId);
        assert!(lookup("android.telephony.TelephonyManager", "toString").is_none());
    }

    #[test]
    fn covers_all_paper_categories() {
        use PrivateInfo::*;
        for cat in [
            DeviceId,
            IpAddress,
            Cookie,
            Location,
            Account,
            Contact,
            Calendar,
            PhoneNumber,
            Camera,
            Audio,
            AppList,
        ] {
            assert!(SENSITIVE_APIS.iter().any(|a| a.info == cat), "missing category {cat:?}");
        }
    }
}
