//! Implicit callback resolution (the EdgeMiner substitute).
//!
//! Android framework registration APIs cause later invocations of callback
//! methods ("from `setOnClickListener()` to `onClick()`"). EdgeMiner mined
//! these registration→callback pairs from the framework; this module ships
//! the pairs the simulated apps exercise, and the APG builder uses them to
//! add [`crate::graph::EdgeKind::ImplicitCallback`] edges from registration
//! sites to the callback methods of the registered listener class.

/// A registration API and the callback method it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackRegistration {
    /// Class declaring the registration API.
    pub register_class: &'static str,
    /// Registration method name.
    pub register_method: &'static str,
    /// Name of the callback method invoked later by the framework.
    pub callback_method: &'static str,
}

/// Registration → callback table.
pub const REGISTRATIONS: &[CallbackRegistration] = &[
    reg("android.view.View", "setOnClickListener", "onClick"),
    reg("android.view.View", "setOnLongClickListener", "onLongClick"),
    reg("android.view.View", "setOnTouchListener", "onTouch"),
    reg("android.widget.AdapterView", "setOnItemClickListener", "onItemClick"),
    reg("android.widget.CompoundButton", "setOnCheckedChangeListener", "onCheckedChanged"),
    reg("android.widget.SeekBar", "setOnSeekBarChangeListener", "onProgressChanged"),
    reg("android.widget.TextView", "addTextChangedListener", "onTextChanged"),
    reg("android.location.LocationManager", "requestLocationUpdates", "onLocationChanged"),
    reg("android.location.LocationManager", "requestSingleUpdate", "onLocationChanged"),
    reg("android.hardware.SensorManager", "registerListener", "onSensorChanged"),
    reg("android.os.Handler", "post", "run"),
    reg("android.os.Handler", "postDelayed", "run"),
    reg("java.lang.Thread", "start", "run"),
    reg("java.util.Timer", "schedule", "run"),
    reg("android.os.AsyncTask", "execute", "doInBackground"),
    reg(
        "android.content.SharedPreferences",
        "registerOnSharedPreferenceChangeListener",
        "onSharedPreferenceChanged",
    ),
    reg("android.widget.DatePicker", "init", "onDateChanged"),
    reg("android.media.MediaPlayer", "setOnCompletionListener", "onCompletion"),
    reg("android.webkit.WebView", "setWebViewClient", "onPageFinished"),
    reg("android.app.AlertDialog$Builder", "setPositiveButton", "onClick"),
];

const fn reg(
    register_class: &'static str,
    register_method: &'static str,
    callback_method: &'static str,
) -> CallbackRegistration {
    CallbackRegistration { register_class, register_method, callback_method }
}

/// Looks up the callback implied by a registration call.
pub fn callback_for(register_class: &str, register_method: &str) -> Option<&'static str> {
    REGISTRATIONS
        .iter()
        .find(|r| r.register_class == register_class && r.register_method == register_method)
        .map(|r| r.callback_method)
}

/// UI / lifecycle callback method names treated as entry points even
/// without an observed registration (views wired in XML layouts).
pub const UI_CALLBACKS: &[&str] = &[
    "onClick",
    "onLongClick",
    "onTouch",
    "onItemClick",
    "onItemSelected",
    "onCheckedChanged",
    "onMenuItemSelected",
    "onOptionsItemSelected",
    "onKey",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn click_listener_maps_to_on_click() {
        assert_eq!(callback_for("android.view.View", "setOnClickListener"), Some("onClick"));
    }

    #[test]
    fn location_updates_map_to_on_location_changed() {
        assert_eq!(
            callback_for("android.location.LocationManager", "requestLocationUpdates"),
            Some("onLocationChanged")
        );
    }

    #[test]
    fn unknown_registration_yields_none() {
        assert_eq!(callback_for("com.example.Foo", "setListener"), None);
    }

    #[test]
    fn table_has_no_duplicates() {
        let mut keys: Vec<(&str, &str)> =
            REGISTRATIONS.iter().map(|r| (r.register_class, r.register_method)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), REGISTRATIONS.len());
    }
}
