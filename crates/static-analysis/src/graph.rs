//! An in-memory property-graph store.
//!
//! The paper stores the Android property graph (APG) in a graph database
//! and answers analyses as graph queries. This module provides the
//! equivalent: typed nodes with string attributes, typed edges, and
//! adjacency indexes for forward/backward traversal.

use std::collections::HashMap;

/// Identifier of a node in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Node types of the Android property graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A class definition (AST level).
    Class,
    /// A method definition.
    Method,
    /// One instruction (statement).
    Instruction,
    /// A manifest component.
    Component,
}

/// Edge types of the Android property graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Structural containment (class → method → instruction): the AST part.
    Contains,
    /// Intra-procedural control flow (instruction → instruction): ICFG.
    CfgNext,
    /// Call edge (call-site instruction → callee method): MCG.
    Call,
    /// Implicit callback edge (registration site → callback method),
    /// recovered EdgeMiner-style.
    ImplicitCallback,
    /// Inter-component (intent) edge, recovered IccTA-style.
    Icc,
    /// Data dependency (instruction → instruction): the SDG part.
    DataDep,
    /// Component → its lifecycle entry method.
    Lifecycle,
}

/// A stored node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node type.
    pub kind: NodeKind,
    /// Primary label (class name, method name, rendered instruction, ...).
    pub label: String,
    /// Extra attributes.
    pub attrs: HashMap<String, String>,
}

/// A property graph with typed adjacency indexes.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    out: HashMap<(NodeId, EdgeKind), Vec<NodeId>>,
    inc: HashMap<(NodeId, EdgeKind), Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { kind, label: label.into(), attrs: HashMap::new() });
        id
    }

    /// Sets an attribute on a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn set_attr(&mut self, id: NodeId, key: &str, value: impl Into<String>) {
        self.nodes[id.0].attrs.insert(key.to_string(), value.into());
    }

    /// Reads an attribute.
    pub fn attr(&self, id: NodeId, key: &str) -> Option<&str> {
        self.nodes[id.0].attrs.get(key).map(|s| s.as_str())
    }

    /// Adds a typed edge.
    pub fn add_edge(&mut self, from: NodeId, kind: EdgeKind, to: NodeId) {
        self.out.entry((from, kind)).or_default().push(to);
        self.inc.entry((to, kind)).or_default().push(from);
        self.edge_count += 1;
    }

    /// The node payload.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Outgoing neighbors via `kind`.
    pub fn successors(&self, id: NodeId, kind: EdgeKind) -> &[NodeId] {
        self.out.get(&(id, kind)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Incoming neighbors via `kind`.
    pub fn predecessors(&self, id: NodeId, kind: EdgeKind) -> &[NodeId] {
        self.inc.get(&(id, kind)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(move |(_, n)| n.kind == kind).map(|(i, _)| NodeId(i))
    }

    /// Finds the first node of `kind` whose label equals `label`.
    pub fn find(&self, kind: NodeKind, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.kind == kind && n.label == label)
            .map(|(i, _)| NodeId(i))
    }

    /// Compiles the adjacency of `kinds` into one CSR array pair over all
    /// node ids: a prefix-sum row table plus a flat `u32` column array.
    ///
    /// Traversals that probe the same edge kinds repeatedly (reachability,
    /// fixpoints) walk contiguous slices instead of hashing one
    /// `(NodeId, EdgeKind)` key per step. Rows concatenate the kinds in
    /// the order given, so the result is deterministic for a given graph.
    pub fn csr(&self, kinds: &[EdgeKind]) -> CsrAdjacency {
        let n = self.nodes.len();
        let mut row = vec![0u32; n + 1];
        for id in 0..n {
            for &kind in kinds {
                row[id + 1] += self.successors(NodeId(id), kind).len() as u32;
            }
        }
        for i in 0..n {
            row[i + 1] += row[i];
        }
        let mut col = vec![0u32; row[n] as usize];
        let mut cursor: Vec<u32> = row[..n].to_vec();
        for id in 0..n {
            for &kind in kinds {
                for &NodeId(t) in self.successors(NodeId(id), kind) {
                    col[cursor[id] as usize] = t as u32;
                    cursor[id] += 1;
                }
            }
        }
        CsrAdjacency { row, col }
    }

    /// Breadth-first closure from `starts` following `kinds` edges forward.
    pub fn reachable_from(&self, starts: &[NodeId], kinds: &[EdgeKind]) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<NodeId> = Vec::new();
        for &s in starts {
            if !seen[s.0] {
                seen[s.0] = true;
                queue.push(s);
            }
        }
        let mut i = 0;
        while i < queue.len() {
            let cur = queue[i];
            i += 1;
            for &kind in kinds {
                for &next in self.successors(cur, kind) {
                    if !seen[next.0] {
                        seen[next.0] = true;
                        queue.push(next);
                    }
                }
            }
        }
        queue
    }
}

/// CSR-compiled adjacency for a fixed set of edge kinds (see
/// [`Graph::csr`]). Node `i`'s successors are the contiguous slice
/// `col[row[i]..row[i + 1]]`.
#[derive(Debug, Clone, Default)]
pub struct CsrAdjacency {
    row: Vec<u32>,
    col: Vec<u32>,
}

impl CsrAdjacency {
    /// Successor node ids of `id`, as raw `u32` indexes.
    pub fn successors(&self, id: NodeId) -> &[u32] {
        &self.col[self.row[id.0] as usize..self.row[id.0 + 1] as usize]
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.row.len().saturating_sub(1)
    }

    /// Total edges stored.
    pub fn edge_count(&self) -> usize {
        self.col.len()
    }

    /// Breadth-first closure from `starts`, in visit order.
    pub fn reachable_from(&self, starts: &[NodeId]) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        let mut queue: Vec<NodeId> = Vec::new();
        for &s in starts {
            if !seen[s.0] {
                seen[s.0] = true;
                queue.push(s);
            }
        }
        let mut i = 0;
        while i < queue.len() {
            let cur = queue[i];
            i += 1;
            for &next in self.successors(cur) {
                if !seen[next as usize] {
                    seen[next as usize] = true;
                    queue.push(NodeId(next as usize));
                }
            }
        }
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Class, "com.x.A");
        let m = g.add_node(NodeKind::Method, "onCreate");
        g.add_edge(a, EdgeKind::Contains, m);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(a, EdgeKind::Contains), &[m]);
        assert_eq!(g.predecessors(m, EdgeKind::Contains), &[a]);
        assert!(g.successors(a, EdgeKind::Call).is_empty());
    }

    #[test]
    fn attributes() {
        let mut g = Graph::new();
        let n = g.add_node(NodeKind::Instruction, "invoke");
        g.set_attr(n, "class", "android.util.Log");
        assert_eq!(g.attr(n, "class"), Some("android.util.Log"));
        assert_eq!(g.attr(n, "missing"), None);
    }

    #[test]
    fn reachability_closure() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Method, "a");
        let b = g.add_node(NodeKind::Method, "b");
        let c = g.add_node(NodeKind::Method, "c");
        let d = g.add_node(NodeKind::Method, "d");
        g.add_edge(a, EdgeKind::Call, b);
        g.add_edge(b, EdgeKind::Call, c);
        g.add_edge(d, EdgeKind::Call, c);
        let r = g.reachable_from(&[a], &[EdgeKind::Call]);
        assert!(r.contains(&a) && r.contains(&b) && r.contains(&c));
        assert!(!r.contains(&d));
    }

    #[test]
    fn csr_matches_hashmap_adjacency() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Method, "a");
        let b = g.add_node(NodeKind::Method, "b");
        let c = g.add_node(NodeKind::Method, "c");
        let d = g.add_node(NodeKind::Method, "d");
        g.add_edge(a, EdgeKind::Call, b);
        g.add_edge(a, EdgeKind::Icc, c);
        g.add_edge(b, EdgeKind::Call, c);
        g.add_edge(d, EdgeKind::ImplicitCallback, a);
        let csr = g.csr(&[EdgeKind::Call, EdgeKind::ImplicitCallback, EdgeKind::Icc]);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        // Rows concatenate kinds in the order given.
        assert_eq!(csr.successors(a), &[b.0 as u32, c.0 as u32]);
        assert_eq!(csr.successors(b), &[c.0 as u32]);
        assert_eq!(csr.successors(c), &[] as &[u32]);
        assert_eq!(csr.successors(d), &[a.0 as u32]);
        // CSR BFS agrees with the per-query HashMap BFS.
        let via_map =
            g.reachable_from(&[a], &[EdgeKind::Call, EdgeKind::ImplicitCallback, EdgeKind::Icc]);
        assert_eq!(csr.reachable_from(&[a]), via_map);
    }

    #[test]
    fn find_by_label() {
        let mut g = Graph::new();
        g.add_node(NodeKind::Class, "com.x.A");
        let b = g.add_node(NodeKind::Class, "com.x.B");
        assert_eq!(g.find(NodeKind::Class, "com.x.B"), Some(b));
        assert_eq!(g.find(NodeKind::Method, "com.x.B"), None);
    }

    #[test]
    fn multiple_edge_kinds_are_indexed_separately() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Instruction, "i1");
        let b = g.add_node(NodeKind::Instruction, "i2");
        g.add_edge(a, EdgeKind::CfgNext, b);
        g.add_edge(a, EdgeKind::DataDep, b);
        assert_eq!(g.successors(a, EdgeKind::CfgNext), &[b]);
        assert_eq!(g.successors(a, EdgeKind::DataDep), &[b]);
        assert_eq!(g.edge_count(), 2);
    }
}

/// Renders the graph in Graphviz dot format for inspection.
///
/// Node labels carry the kind; edges are colored per [`EdgeKind`].
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from("digraph apg {\n  rankdir=LR;\n  node [fontsize=9];\n");
    for id in 0..graph.node_count() {
        let node = graph.node(NodeId(id));
        let shape = match node.kind {
            NodeKind::Class => "box",
            NodeKind::Method => "ellipse",
            NodeKind::Instruction => "plaintext",
            NodeKind::Component => "hexagon",
        };
        let label = node.label.replace('"', "'");
        out.push_str(&format!("  n{id} [shape={shape} label=\"{label}\"];\n"));
    }
    const KINDS: &[(EdgeKind, &str)] = &[
        (EdgeKind::Contains, "gray"),
        (EdgeKind::CfgNext, "black"),
        (EdgeKind::Call, "blue"),
        (EdgeKind::ImplicitCallback, "purple"),
        (EdgeKind::Icc, "orange"),
        (EdgeKind::DataDep, "green"),
        (EdgeKind::Lifecycle, "red"),
    ];
    for id in 0..graph.node_count() {
        for &(kind, color) in KINDS {
            for to in graph.successors(NodeId(id), kind) {
                out.push_str(&format!("  n{id} -> n{} [color={color}];\n", to.0));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Class, "com.x.A");
        let m = g.add_node(NodeKind::Method, "onCreate");
        g.add_edge(a, EdgeKind::Contains, m);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph apg"));
        assert!(dot.contains("com.x.A"));
        assert!(dot.contains("n0 -> n1 [color=gray]"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g = Graph::new();
        g.add_node(NodeKind::Instruction, "const-string v1, \"x\"");
        assert!(!to_dot(&g).contains("\"x\""));
    }
}
