//! Content-provider URI tables: 12 URI strings and 615 URI fields, mapped
//! to permissions and private information (the PScout substitute).
//!
//! The paper regards `ContentResolver.query()` with a sensitive URI as a
//! sensitive API call. URI *strings* are matched directly; URI *fields*
//! (`<android.provider.X: android.net.Uri CONTENT_URI>` constants) map to
//! permissions via PScout, and the permission maps to information.

use ppchecker_apk::{Permission, PrivateInfo};
use std::sync::OnceLock;

/// A sensitive URI string with its information category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UriString {
    /// The `content://` URI prefix.
    pub uri: &'static str,
    /// Information obtained by querying it.
    pub info: PrivateInfo,
}

/// The 12 sensitive URI strings.
pub const URI_STRINGS: &[UriString] = &[
    UriString { uri: "content://contacts", info: PrivateInfo::Contact },
    UriString { uri: "content://com.android.contacts", info: PrivateInfo::Contact },
    UriString { uri: "content://icc/adn", info: PrivateInfo::Contact },
    UriString { uri: "content://com.android.calendar", info: PrivateInfo::Calendar },
    UriString { uri: "content://calendar", info: PrivateInfo::Calendar },
    UriString { uri: "content://sms", info: PrivateInfo::Sms },
    UriString { uri: "content://mms-sms", info: PrivateInfo::Sms },
    UriString { uri: "content://call_log", info: PrivateInfo::CallLog },
    UriString { uri: "content://browser/bookmarks", info: PrivateInfo::BrowsingHistory },
    UriString { uri: "content://com.android.browser/history", info: PrivateInfo::BrowsingHistory },
    UriString { uri: "content://media/external/images", info: PrivateInfo::Camera },
    UriString { uri: "content://settings/secure", info: PrivateInfo::DeviceId },
];

/// A URI field constant (as read out of bytecode), mapped PScout-style to a
/// permission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriField {
    /// The field descriptor, e.g.
    /// `<android.provider.Telephony$Sms: android.net.Uri CONTENT_URI>`.
    pub field: String,
    /// The permission PScout associates with the field.
    pub permission: Permission,
    /// Information derived from the permission.
    pub info: PrivateInfo,
}

/// Generation plan: `(provider class, field count, permission, info)` per
/// provider family; the counts sum to 615 like the paper's data set.
const FIELD_PLAN: &[(&str, usize, Permission, PrivateInfo)] = &[
    ("android.provider.ContactsContract", 120, Permission::ReadContacts, PrivateInfo::Contact),
    ("android.provider.CalendarContract", 85, Permission::ReadCalendar, PrivateInfo::Calendar),
    ("android.provider.Telephony$Sms", 110, Permission::ReceiveSms, PrivateInfo::Sms),
    ("android.provider.CallLog", 60, Permission::ReadCallLog, PrivateInfo::CallLog),
    (
        "android.provider.Browser",
        55,
        Permission::ReadHistoryBookmarks,
        PrivateInfo::BrowsingHistory,
    ),
    ("android.provider.MediaStore$Images", 45, Permission::Camera, PrivateInfo::Camera),
    ("android.provider.MediaStore$Audio", 30, Permission::RecordAudio, PrivateInfo::Audio),
    ("android.provider.Settings", 40, Permission::ReadPhoneState, PrivateInfo::DeviceId),
    ("android.provider.Telephony", 70, Permission::ReadPhoneState, PrivateInfo::PhoneNumber),
];

/// Returns the 615-entry URI-field table.
pub fn uri_fields() -> &'static [UriField] {
    static FIELDS: OnceLock<Vec<UriField>> = OnceLock::new();
    FIELDS.get_or_init(|| {
        let mut out = Vec::with_capacity(615);
        for (provider, count, permission, info) in FIELD_PLAN {
            for i in 0..*count {
                let suffix = match i {
                    0 => "CONTENT_URI".to_string(),
                    n => format!("CONTENT_URI_{n}"),
                };
                out.push(UriField {
                    field: format!("<{provider}: android.net.Uri {suffix}>"),
                    permission: permission.clone(),
                    info: *info,
                });
            }
        }
        out
    })
}

/// Matches a URI string (possibly with a longer path) against the table.
///
/// # Examples
///
/// ```
/// use ppchecker_static::uris::match_uri_string;
/// use ppchecker_apk::PrivateInfo;
/// let hit = match_uri_string("content://com.android.calendar/events").unwrap();
/// assert_eq!(hit.info, PrivateInfo::Calendar);
/// assert!(match_uri_string("content://com.example.custom").is_none());
/// ```
pub fn match_uri_string(uri: &str) -> Option<&'static UriString> {
    URI_STRINGS.iter().find(|u| uri.starts_with(u.uri))
}

/// Looks up a URI field descriptor.
///
/// Exact descriptors hit directly; otherwise the declaring class is
/// matched by provider-family prefix, so
/// `<android.provider.ContactsContract$CommonDataKinds$Phone: android.net.Uri CONTENT_URI>`
/// resolves through the `ContactsContract` family, as PScout's map does.
pub fn match_uri_field(field: &str) -> Option<&'static UriField> {
    if let Some(hit) = uri_fields().iter().find(|f| f.field == field) {
        return Some(hit);
    }
    let class = field.strip_prefix('<')?.split(':').next()?;
    if !field.contains("CONTENT_URI") {
        return None;
    }
    FIELD_PLAN.iter().position(|(provider, ..)| class.starts_with(provider)).map(|i| {
        // The family's canonical CONTENT_URI entry stands in.
        let offset: usize = FIELD_PLAN[..i].iter().map(|(_, c, ..)| *c).sum();
        &uri_fields()[offset]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_uri_strings() {
        assert_eq!(URI_STRINGS.len(), 12);
    }

    #[test]
    fn exactly_615_uri_fields() {
        assert_eq!(uri_fields().len(), 615, "the paper's data set has 615");
    }

    #[test]
    fn field_descriptors_unique() {
        let mut fs: Vec<&str> = uri_fields().iter().map(|f| f.field.as_str()).collect();
        fs.sort_unstable();
        fs.dedup();
        assert_eq!(fs.len(), 615);
    }

    #[test]
    fn uri_prefix_matching() {
        assert_eq!(
            match_uri_string("content://contacts/people/1").unwrap().info,
            PrivateInfo::Contact
        );
        assert!(match_uri_string("http://example.com").is_none());
    }

    #[test]
    fn field_lookup_maps_to_permission_and_info() {
        let f = match_uri_field("<android.provider.Telephony$Sms: android.net.Uri CONTENT_URI>")
            .unwrap();
        assert_eq!(f.permission, Permission::ReceiveSms);
        assert_eq!(f.info, PrivateInfo::Sms);
    }
}
