//! Entry-point discovery and reachability analysis.
//!
//! The paper conducts "reachability analysis from the app's entry points,
//! including life-cycle callbacks (e.g., `Activity.onCreate()`), major
//! components' entry functions (e.g., `query()` in content provider), and
//! UI related callbacks (e.g., `onClick()`)" and ignores sensitive APIs
//! with no feasible path from an entry point (dead code).

use crate::apg::{lifecycle_methods, Apg};
use crate::callbacks::UI_CALLBACKS;
use crate::graph::{EdgeKind, NodeId};
use std::collections::HashSet;

/// Collects the entry-point method nodes of an APG.
///
/// Entry points: lifecycle methods of manifest components, UI callbacks in
/// any application class, and `run`/`doInBackground` bodies (threads wired
/// from XML or the framework).
pub fn entry_points(apg: &Apg) -> Vec<NodeId> {
    let mut entries: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();

    // Lifecycle methods reachable from components.
    for &comp in &apg.component_ids {
        for &m in apg.graph.successors(comp, EdgeKind::Lifecycle) {
            if seen.insert(m) {
                entries.push(m);
            }
        }
    }

    // Lifecycle-named methods in classes extending framework components but
    // not declared in the manifest (defensive: exported fragments etc.) are
    // NOT entries — the paper starts only from declared components — but UI
    // callbacks anywhere in the app are (XML-wired handlers). Sorted by
    // (class, method) so the entry order is independent of HashMap iteration.
    let mut ui: Vec<(&(String, String), NodeId)> = apg
        .method_ids
        .iter()
        .filter(|((_, method), _)| UI_CALLBACKS.contains(&method.as_str()))
        .map(|(key, &mid)| (key, mid))
        .collect();
    ui.sort_unstable_by_key(|&(key, _)| key);
    for (_, mid) in ui {
        if seen.insert(mid) {
            entries.push(mid);
        }
    }
    entries
}

/// Returns the set of methods reachable from the entry points over call,
/// implicit-callback, and intent edges.
pub fn reachable_methods(apg: &Apg) -> HashSet<NodeId> {
    let entries = entry_points(apg);
    if apg.has_duplicate_methods() {
        // The dense method index skips shadowed duplicate declarations, so
        // fall back to the exact HashMap-adjacency walk for odd inputs.
        return apg
            .graph
            .reachable_from(&entries, &[EdgeKind::Call, EdgeKind::ImplicitCallback, EdgeKind::Icc])
            .into_iter()
            .collect();
    }
    // Dense BFS over the precompiled method CSR (Call + ImplicitCallback +
    // Icc rows), avoiding a HashMap probe per (node, kind) expansion.
    let n = apg.method_count();
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<u32> = entries
        .iter()
        .filter_map(|&e| apg.method_ix(e))
        .inspect(|&ix| visited[ix as usize] = true)
        .collect();
    let mut out = HashSet::with_capacity(queue.len() * 2);
    for &e in &entries {
        out.insert(e);
    }
    while let Some(ix) = queue.pop_front() {
        out.insert(apg.method_node(ix));
        for &next in apg.callees(ix) {
            if !visited[next as usize] {
                visited[next as usize] = true;
                queue.push_back(next);
            }
        }
    }
    out
}

/// Convenience used by tests and ablations: is the lifecycle table sane for
/// every component kind?
pub fn lifecycle_table_covers(kind: ppchecker_apk::ComponentKind) -> bool {
    !lifecycle_methods(kind).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apg::Apg;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    fn apk_with_dead_code() -> Apk {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("com.x.Main", "live", &[0], None);
                });
                c.method("live", 1, |_| {});
                c.method("dead", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[0],
                        Some(1),
                    );
                });
            })
            .build();
        Apk::new(manifest, dex)
    }

    #[test]
    fn entry_points_include_lifecycle() {
        let apg = Apg::build(&apk_with_dead_code()).unwrap();
        let entries = entry_points(&apg);
        let on_create = apg.method_ids[&("com.x.Main".into(), "onCreate".into())];
        assert!(entries.contains(&on_create));
    }

    #[test]
    fn dead_method_is_unreachable() {
        let apg = Apg::build(&apk_with_dead_code()).unwrap();
        let reach = reachable_methods(&apg);
        let live = apg.method_ids[&("com.x.Main".into(), "live".into())];
        let dead = apg.method_ids[&("com.x.Main".into(), "dead".into())];
        assert!(reach.contains(&live));
        assert!(!reach.contains(&dead));
    }

    #[test]
    fn ui_callbacks_are_entries() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |_| {});
            })
            .class("com.x.ClickHandler", |c| {
                c.method("onClick", 1, |m| {
                    m.invoke_virtual("com.x.Worker", "go", &[0], None);
                });
            })
            .class("com.x.Worker", |c| {
                c.method("go", 1, |_| {});
            })
            .build();
        let apg = Apg::build(&Apk::new(manifest, dex)).unwrap();
        let reach = reachable_methods(&apg);
        let worker = apg.method_ids[&("com.x.Worker".into(), "go".into())];
        assert!(reach.contains(&worker));
    }

    #[test]
    fn reachability_through_implicit_callback() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.new_instance(2, "com.x.Task");
                    m.invoke_virtual("java.lang.Thread", "start", &[2], None);
                });
            })
            .class("com.x.Task", |c| {
                c.implements("java.lang.Runnable");
                c.method("run", 1, |m| {
                    m.invoke_virtual("com.x.Deep", "fetch", &[0], None);
                });
            })
            .class("com.x.Deep", |c| {
                c.method("fetch", 1, |_| {});
            })
            .build();
        let apg = Apg::build(&Apk::new(manifest, dex)).unwrap();
        let reach = reachable_methods(&apg);
        let deep = apg.method_ids[&("com.x.Deep".into(), "fetch".into())];
        assert!(reach.contains(&deep));
    }

    #[test]
    fn entry_points_are_deterministic() {
        // Many UI-callback classes exercise the former HashMap-iteration
        // ordering bug: two independently built APGs must agree exactly.
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        let mut builder = Dex::builder().class("com.x.Main", |c| {
            c.extends("android.app.Activity");
            c.method("onCreate", 1, |_| {});
        });
        for i in 0..24 {
            builder = builder.class(&format!("com.x.Handler{i}"), |c| {
                c.method("onClick", 1, |_| {});
                c.method("onTouch", 1, |_| {});
            });
        }
        let apk = Apk::new(manifest, builder.build());
        let a = Apg::build(&apk).unwrap();
        let b = Apg::build(&apk).unwrap();
        let ea = entry_points(&a);
        let eb = entry_points(&b);
        assert_eq!(ea.len(), 49);
        let names_a: Vec<_> = ea.iter().map(|&m| a.method_name(m)).collect();
        let names_b: Vec<_> = eb.iter().map(|&m| b.method_name(m)).collect();
        assert_eq!(names_a, names_b);
        // NodeIds are assigned in dex declaration order, so the id vectors
        // themselves must also match between the two builds.
        assert_eq!(ea, eb);
    }

    #[test]
    fn lifecycle_tables_nonempty() {
        for kind in [
            ComponentKind::Activity,
            ComponentKind::Service,
            ComponentKind::Receiver,
            ComponentKind::Provider,
        ] {
            assert!(lifecycle_table_covers(kind));
        }
    }
}
