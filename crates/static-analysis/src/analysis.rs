//! The top-level static analysis module: computes `Collect_code` and
//! `Retain_code` for an app, plus the set of embedded third-party libs.

use crate::apg::Apg;
use crate::consts::{self, UriValue};
use crate::graph::NodeId;
use crate::libs::{self, KnownLib};
use crate::reach;
use crate::sensitive;
use crate::taint::{self, Leak};
use crate::uris;
use ppchecker_apk::{Apk, Insn, ParseDexError, PrivateInfo};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Ablation switches (all on by default, matching the paper's system).
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Discard sensitive calls with no feasible path from an entry point.
    pub reachability: bool,
    /// Treat content-provider queries of sensitive URIs as sensitive APIs.
    pub uri_analysis: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions { reachability: true, uri_analysis: true }
    }
}

/// Evidence of one collection behaviour.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Callsite {
    /// Class containing the call.
    pub class: String,
    /// Method containing the call.
    pub method: String,
    /// The sensitive API or URI that was accessed.
    pub api: String,
}

/// The result of analyzing one app.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// `Collect_code`: information collected by the *app's own* code (class
    /// prefix matches the package), with evidence.
    pub collected: BTreeMap<PrivateInfo, Vec<Callsite>>,
    /// Information collected by embedded third-party lib code.
    pub lib_collected: BTreeMap<PrivateInfo, Vec<Callsite>>,
    /// `Retain_code`: source→sink flows.
    pub retained: Vec<Leak>,
    /// Detected third-party libraries.
    pub libs: Vec<&'static KnownLib>,
    /// Number of methods reachable from entry points.
    pub reachable_method_count: usize,
    /// Sensitive call sites discarded as unreachable (dead code).
    pub unreachable_sensitive_calls: usize,
}

impl StaticReport {
    /// The set of collected info categories (`Collect_code`).
    pub fn collect_code(&self) -> BTreeSet<PrivateInfo> {
        self.collected.keys().copied().collect()
    }

    /// The set of retained info categories (`Retain_code`).
    pub fn retain_code(&self) -> BTreeSet<PrivateInfo> {
        self.retained.iter().map(|l| l.info).collect()
    }
}

/// Runs the full static analysis on an APK.
///
/// # Errors
///
/// Returns [`ParseDexError`] when a packed dex cannot be recovered.
pub fn analyze(apk: &Apk) -> Result<StaticReport, ParseDexError> {
    analyze_with(apk, AnalysisOptions::default())
}

/// Runs the static analysis with explicit [`AnalysisOptions`] (ablations).
///
/// # Errors
///
/// Returns [`ParseDexError`] when a packed dex cannot be recovered.
pub fn analyze_with(apk: &Apk, opts: AnalysisOptions) -> Result<StaticReport, ParseDexError> {
    analyze_with_cache(apk, opts, None)
}

/// [`analyze_with`] plus an optional cross-app library taint-summary
/// cache (see [`crate::summary::TaintSummaryCache`]); batch runners
/// share one cache across every app so identical embedded libs are
/// summarized once.
///
/// # Errors
///
/// Returns [`ParseDexError`] when a packed dex cannot be recovered.
pub fn analyze_with_cache(
    apk: &Apk,
    opts: AnalysisOptions,
    cache: Option<&crate::summary::TaintSummaryCache>,
) -> Result<StaticReport, ParseDexError> {
    let apg = {
        let _span = ppchecker_obs::span!("static.apg_build");
        Apg::build(apk)?
    };
    let package = apk.manifest.package.clone();

    let in_scope: HashSet<NodeId> = if opts.reachability {
        reach::reachable_methods(&apg)
    } else {
        apg.method_ids.values().copied().collect()
    };

    let mut report = StaticReport {
        libs: libs::detect_libs(&apg.dex),
        reachable_method_count: in_scope.len(),
        ..StaticReport::default()
    };

    // Collect_code: scan sensitive API invocations and query() URIs.
    let scan_span = ppchecker_obs::span!("static.scan");
    for class in &apg.dex.classes {
        for m in &class.methods {
            let mid = apg.method_ids[&(class.name.clone(), m.name.clone())];
            let reachable = in_scope.contains(&mid);
            let app_owned = class.name.starts_with(&package);
            let record = |info: PrivateInfo, api: String, report: &mut StaticReport| {
                let site = Callsite { class: class.name.clone(), method: m.name.clone(), api };
                let map = if app_owned { &mut report.collected } else { &mut report.lib_collected };
                let sites = map.entry(info).or_default();
                if !sites.contains(&site) {
                    sites.push(site);
                }
            };

            for insn in &m.instructions {
                let Insn::Invoke { class: cc, method: mm, .. } = insn else {
                    continue;
                };
                if let Some(api) = sensitive::lookup(cc, mm) {
                    if reachable {
                        record(api.info, format!("{cc}.{mm}"), &mut report);
                    } else {
                        report.unreachable_sensitive_calls += 1;
                    }
                }
            }

            if opts.uri_analysis {
                for (_, uri) in consts::query_sites(m) {
                    let (info, api) = match &uri {
                        UriValue::Literal(s) => {
                            (uris::match_uri_string(s).map(|u| u.info), s.clone())
                        }
                        UriValue::Field(f) => (uris::match_uri_field(f).map(|u| u.info), f.clone()),
                    };
                    if let Some(info) = info {
                        if reachable {
                            record(info, api, &mut report);
                        } else {
                            report.unreachable_sensitive_calls += 1;
                        }
                    }
                }
            }
        }
    }

    drop(scan_span);

    // Retain_code via taint analysis.
    let _span = ppchecker_obs::span!("static.taint");
    report.retained = taint::analyze_cached(&apg, &in_scope, cache);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    fn manifest() -> Manifest {
        let mut m = Manifest::new("com.dooing.dooing");
        m.add_component(ComponentKind::Activity, "com.dooing.dooing.Main", true);
        m
    }

    /// The paper's Fig. 2 app: com.dooing.dooing calls getLatitude() /
    /// getLongitude() but its policy never mentions location.
    fn dooing_apk() -> Apk {
        let dex = Dex::builder()
            .class("com.dooing.dooing.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("com.dooing.dooing.ee", "locate", &[0], None);
                });
            })
            .class("com.dooing.dooing.ee", |c| {
                c.method("locate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.invoke_virtual("android.location.Location", "getLongitude", &[0], Some(2));
                });
            })
            .class("com.google.android.gms.ads.AdView", |c| {
                c.method("loadAd", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[0],
                        Some(1),
                    );
                });
            })
            .build();
        Apk::new(manifest(), dex)
    }

    #[test]
    fn app_collection_detected_and_attributed() {
        let r = analyze(&dooing_apk()).unwrap();
        assert!(r.collect_code().contains(&PrivateInfo::Location));
        // The ad lib's getDeviceId is lib-owned, not app-owned...
        assert!(!r.collect_code().contains(&PrivateInfo::DeviceId));
        // ...but it is reported separately. (The lib method itself is not
        // reachable from app entry points, so it only shows up with
        // reachability off.)
        let no_reach = analyze_with(
            &dooing_apk(),
            AnalysisOptions { reachability: false, uri_analysis: true },
        )
        .unwrap();
        assert!(no_reach.lib_collected.contains_key(&PrivateInfo::DeviceId));
    }

    #[test]
    fn lib_detection_reports_admob() {
        let r = analyze(&dooing_apk()).unwrap();
        assert!(r.libs.iter().any(|l| l.id == "admob"));
    }

    #[test]
    fn reachability_ablation_changes_counts() {
        let dex = Dex::builder()
            .class("com.dooing.dooing.Main", |c| {
                c.method("onCreate", 1, |_| {});
                c.method("dead", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        let apk = Apk::new(manifest(), dex);
        let with = analyze(&apk).unwrap();
        assert!(with.collect_code().is_empty());
        assert_eq!(with.unreachable_sensitive_calls, 1);
        let without =
            analyze_with(&apk, AnalysisOptions { reachability: false, uri_analysis: true })
                .unwrap();
        assert!(without.collect_code().contains(&PrivateInfo::Location));
    }

    #[test]
    fn uri_analysis_ablation() {
        let dex = Dex::builder()
            .class("com.dooing.dooing.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.const_string(1, "content://sms");
                    m.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
                });
            })
            .build();
        let apk = Apk::new(manifest(), dex);
        let with = analyze(&apk).unwrap();
        assert!(with.collect_code().contains(&PrivateInfo::Sms));
        let without =
            analyze_with(&apk, AnalysisOptions { reachability: true, uri_analysis: false })
                .unwrap();
        assert!(!without.collect_code().contains(&PrivateInfo::Sms));
    }

    #[test]
    fn retained_info_appears_in_retain_code() {
        let dex = Dex::builder()
            .class("com.dooing.dooing.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.invoke_static("android.util.Log", "i", &[1], None);
                });
            })
            .build();
        let r = analyze(&Apk::new(manifest(), dex)).unwrap();
        assert!(r.retain_code().contains(&PrivateInfo::Location));
    }

    #[test]
    fn packed_apk_is_recovered_then_analyzed() {
        let dex = Dex::builder()
            .class("com.dooing.dooing.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[0],
                        Some(1),
                    );
                });
            })
            .build();
        let apk = Apk::new_packed(manifest(), &dex, 0x5C);
        let r = analyze(&apk).unwrap();
        assert!(r.collect_code().contains(&PrivateInfo::DeviceId));
    }
}
