//! Interprocedural static taint analysis (the FlowDroid substitute).
//!
//! Sources are sensitive API invocations and content-provider queries of
//! sensitive URIs; sinks are the log/file/network/SMS/Bluetooth APIs of
//! [`crate::sinks`]. Taint propagates through register moves, fields,
//! framework calls (argument → result), application-method calls
//! (argument → parameter) and returns, iterated to a global fixpoint over
//! the reachable portion of the call graph.

use crate::apg::Apg;
use crate::consts::{self, UriValue};
use crate::graph::NodeId;
use crate::sensitive;
use crate::sinks::{self, SinkKind};
use crate::uris;
use ppchecker_apk::{Insn, Method, PrivateInfo, Reg};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A detected source→sink flow: the paper's `Retain_code` evidence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Leak {
    /// Information that escapes.
    pub info: PrivateInfo,
    /// Where it escapes to.
    pub sink: SinkKind,
    /// The source API or URI the information came from.
    pub source_api: String,
    /// The sink API (`class.method`).
    pub sink_api: String,
    /// Method containing the sink call (`class.method`).
    pub at_method: String,
}

/// A taint label: what information, and the source-API witness that
/// introduced it (so a leak reports the full source→sink pair, as the
/// paper does: "a path between getLatitude() and Log.i()").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Label {
    pub(crate) info: PrivateInfo,
    pub(crate) source_api: String,
}

type TaintSet = BTreeSet<Label>;

/// Runs the taint analysis over `methods` (normally the reachable set).
///
/// Returns the deduplicated leaks. Dispatches to the dense-ID bitset
/// kernel (`crate::kernel`) whenever the app fits its envelope (no
/// duplicate method declarations, ≤ 256 taint labels), falling back to
/// the reference engine otherwise; both produce the identical leak set.
pub fn analyze(apg: &Apg, methods: &HashSet<NodeId>) -> Vec<Leak> {
    analyze_cached(apg, methods, None)
}

/// [`analyze`] with an optional cross-app library summary cache: known
/// libs embedded in the app get their per-method taint summaries reused
/// across apps with byte-identical lib classes (see [`crate::summary`]).
pub fn analyze_cached(
    apg: &Apg,
    methods: &HashSet<NodeId>,
    cache: Option<&crate::summary::TaintSummaryCache>,
) -> Vec<Leak> {
    crate::kernel::run(apg, methods, cache).unwrap_or_else(|| analyze_reference(apg, methods))
}

/// The reference engine: string-keyed maps, whole-corpus sweeps. Kept as
/// the oracle the kernel is property-tested against (and the fallback
/// for apps outside the kernel envelope).
pub fn analyze_reference(apg: &Apg, methods: &HashSet<NodeId>) -> Vec<Leak> {
    let mut engine = Engine {
        apg,
        field_taint: HashMap::new(),
        param_taint: HashMap::new(),
        return_taint: HashMap::new(),
        icc_taint: HashMap::new(),
        leaks: BTreeSet::new(),
    };
    engine.run(methods);
    engine.leaks.into_iter().collect()
}

struct Engine<'a> {
    apg: &'a Apg,
    /// Class → field → taint. Nested (rather than keyed by a
    /// `(String, String)` pair) so the hot read path probes with two
    /// borrowed `&str`s instead of allocating a fresh tuple per lookup.
    field_taint: HashMap<String, HashMap<String, TaintSet>>,
    param_taint: HashMap<NodeId, TaintSet>,
    return_taint: HashMap<NodeId, TaintSet>,
    /// Inter-component channel taint: intent extras put for a target
    /// class become readable by that class's `get*Extra` calls (the
    /// data-flow half of IccTA).
    icc_taint: HashMap<String, TaintSet>,
    leaks: BTreeSet<Leak>,
}

impl Engine<'_> {
    fn run(&mut self, methods: &HashSet<NodeId>) {
        // Global fixpoint: method summaries (param/return/field taint) grow
        // monotonically, so iterate until stable.
        let ordered: Vec<NodeId> = {
            let mut v: Vec<NodeId> = methods.iter().copied().collect();
            v.sort_unstable();
            v
        };
        for _round in 0..8 {
            let before = self.state_size();
            for &mid in &ordered {
                self.process_method(mid, methods);
            }
            if self.state_size() == before {
                break;
            }
        }
    }

    fn state_size(&self) -> usize {
        self.field_taint
            .values()
            .flat_map(|by_field| by_field.values())
            .map(|s| s.len())
            .sum::<usize>()
            + self.param_taint.values().map(|s| s.len()).sum::<usize>()
            + self.return_taint.values().map(|s| s.len()).sum::<usize>()
            + self.icc_taint.values().map(|s| s.len()).sum::<usize>()
            + self.leaks.len()
    }

    fn process_method(&mut self, mid: NodeId, in_scope: &HashSet<NodeId>) {
        let (class_name, method_name) = self.apg.method_name(mid).clone();
        let Some(class) = self.apg.dex.class(&class_name) else { return };
        let Some(method) = class.method(&method_name) else { return };

        // Pre-resolve query URIs once.
        let query_uris: HashMap<usize, UriValue> =
            consts::query_sites(method).into_iter().collect();
        // Pre-resolve intent registers → target classes (for extras).
        let intent_targets = intent_targets(method);

        // Parameters share one taint set (the IR is name-resolved, not
        // signature-resolved, so per-index precision is not meaningful).
        let incoming = self.param_taint.get(&mid).cloned().unwrap_or_default();
        let mut regs: HashMap<Reg, TaintSet> = HashMap::new();
        for p in 0..method.param_count {
            if !incoming.is_empty() {
                regs.insert(p, incoming.clone());
            }
        }

        // Iterate the body until local state stabilizes (handles loops).
        for _pass in 0..4 {
            let before: usize = regs.values().map(|s| s.len()).sum::<usize>() + self.leaks.len();
            self.interpret(
                method,
                &class_name,
                &method_name,
                mid,
                &query_uris,
                &intent_targets,
                &mut regs,
                in_scope,
            );
            let after: usize = regs.values().map(|s| s.len()).sum::<usize>() + self.leaks.len();
            if after == before {
                break;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn interpret(
        &mut self,
        method: &Method,
        class_name: &str,
        method_name: &str,
        mid: NodeId,
        query_uris: &HashMap<usize, UriValue>,
        intent_targets: &HashMap<Reg, String>,
        regs: &mut HashMap<Reg, TaintSet>,
        in_scope: &HashSet<NodeId>,
    ) {
        for (idx, insn) in method.instructions.iter().enumerate() {
            match insn {
                Insn::ConstString { dst, .. } => {
                    regs.remove(dst);
                }
                Insn::Move { dst, src } => {
                    let t = regs.get(src).cloned().unwrap_or_default();
                    if t.is_empty() {
                        regs.remove(dst);
                    } else {
                        regs.insert(*dst, t);
                    }
                }
                Insn::NewInstance { dst, .. } => {
                    regs.remove(dst);
                }
                Insn::FieldPut { class, field, src } => {
                    if let Some(t) = regs.get(src) {
                        if !t.is_empty() {
                            // Allocate the String keys only on first sight
                            // of the class/field; steady-state puts probe
                            // with borrowed strs.
                            if !self.field_taint.contains_key(class.as_str()) {
                                self.field_taint.insert(class.clone(), HashMap::new());
                            }
                            let by_field =
                                self.field_taint.get_mut(class.as_str()).expect("just inserted");
                            match by_field.get_mut(field.as_str()) {
                                Some(set) => set.extend(t.iter().cloned()),
                                None => {
                                    by_field.insert(field.clone(), t.clone());
                                }
                            }
                        }
                    }
                }
                Insn::FieldGet { class, field, dst } => {
                    match self.field_taint.get(class.as_str()).and_then(|m| m.get(field.as_str())) {
                        Some(t) if !t.is_empty() => {
                            regs.entry(*dst).or_default().extend(t.iter().cloned());
                        }
                        _ => {}
                    }
                }
                Insn::Return { src: Some(s) } => {
                    if let Some(t) = regs.get(s) {
                        if !t.is_empty() {
                            self.return_taint.entry(mid).or_default().extend(t.iter().cloned());
                        }
                    }
                }
                Insn::Invoke { class, method: callee, args, dst, .. } => {
                    self.handle_invoke(
                        idx,
                        class,
                        callee,
                        args,
                        *dst,
                        class_name,
                        method_name,
                        query_uris,
                        intent_targets,
                        regs,
                        in_scope,
                    );
                }
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_invoke(
        &mut self,
        idx: usize,
        class: &str,
        callee: &str,
        args: &[Reg],
        dst: Option<Reg>,
        class_name: &str,
        method_name: &str,
        query_uris: &HashMap<usize, UriValue>,
        intent_targets: &HashMap<Reg, String>,
        regs: &mut HashMap<Reg, TaintSet>,
        in_scope: &HashSet<NodeId>,
    ) {
        let arg_taint: TaintSet =
            args.iter().filter_map(|r| regs.get(r)).flat_map(|s| s.iter().cloned()).collect();

        // Source: sensitive API.
        if let Some(api) = sensitive::lookup(class, callee) {
            if let Some(d) = dst {
                regs.entry(d)
                    .or_default()
                    .insert(Label { info: api.info, source_api: format!("{class}.{callee}") });
            }
        }

        // Source: content-provider query of a sensitive URI.
        if let Some(uri) = query_uris.get(&idx) {
            let (info, witness) = match uri {
                UriValue::Literal(s) => (uris::match_uri_string(s).map(|u| u.info), s.clone()),
                UriValue::Field(f) => (uris::match_uri_field(f).map(|u| u.info), f.clone()),
            };
            if let (Some(info), Some(d)) = (info, dst) {
                regs.entry(d).or_default().insert(Label { info, source_api: witness });
            }
        }

        // ICC data flow (IccTA): tainted extras put into an intent become
        // visible to the target component's get*Extra reads.
        if class == "android.content.Intent" {
            if callee == "putExtra" && !arg_taint.is_empty() {
                if let Some(target) = args.first().and_then(|r| intent_targets.get(r)) {
                    self.icc_taint
                        .entry(target.clone())
                        .or_default()
                        .extend(arg_taint.iter().cloned());
                }
            }
            if matches!(
                callee,
                "getStringExtra" | "getExtras" | "getParcelableExtra" | "getIntExtra"
            ) {
                if let (Some(d), Some(t)) = (dst, self.icc_taint.get(class_name)) {
                    if !t.is_empty() {
                        regs.entry(d).or_default().extend(t.iter().cloned());
                    }
                }
            }
        }

        // Sink: record a leak for every tainted argument. The api/method
        // witness strings are built once per sink call, not per label.
        if let Some(sink) = sinks::lookup(class, callee) {
            if !arg_taint.is_empty() {
                let sink_api = format!("{class}.{callee}");
                let at_method = format!("{class_name}.{method_name}");
                for label in &arg_taint {
                    self.leaks.insert(Leak {
                        info: label.info,
                        sink: sink.kind,
                        source_api: label.source_api.clone(),
                        sink_api: sink_api.clone(),
                        at_method: at_method.clone(),
                    });
                }
            }
        }

        // Application-internal call: propagate into parameters, pull return
        // taint out. Framework call: taint-through (args → result).
        let mut returned = TaintSet::new();
        let mut is_app_call = false;
        if let Some(target) = self.apg.method_id(class, callee) {
            is_app_call = true;
            if in_scope.contains(&target) {
                if !arg_taint.is_empty() {
                    self.param_taint.entry(target).or_default().extend(arg_taint.iter().cloned());
                }
                if let Some(r) = self.return_taint.get(&target) {
                    returned.extend(r.iter().cloned());
                }
            }
        }
        if !is_app_call {
            // Library summary: result carries argument taint
            // (StringBuilder.append, String.format, ...).
            returned.extend(arg_taint.iter().cloned());
        }
        if let Some(d) = dst {
            if !returned.is_empty() {
                regs.entry(d).or_default().extend(returned);
            }
        }
    }
}

/// Maps intent registers to their `setClass`-style target classes inside
/// one method (mirrors the APG's IccTA-substitute resolution).
pub(crate) fn intent_targets(method: &Method) -> HashMap<Reg, String> {
    let mut strings: HashMap<Reg, String> = HashMap::new();
    let mut targets: HashMap<Reg, String> = HashMap::new();
    for insn in &method.instructions {
        match insn {
            Insn::ConstString { dst, value } => {
                strings.insert(*dst, value.clone());
            }
            Insn::Invoke { class, method: m, args, .. }
                if class == "android.content.Intent"
                    && matches!(m.as_str(), "setClass" | "setClassName" | "setComponent") =>
            {
                if let (Some(&intent_reg), Some(target)) =
                    (args.first(), args.iter().skip(1).find_map(|r| strings.get(r)))
                {
                    targets.insert(intent_reg, target.clone());
                }
            }
            _ => {}
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    fn analyze_apk(apk: &Apk) -> Vec<Leak> {
        let apg = Apg::build(apk).unwrap();
        let methods = reach::reachable_methods(&apg);
        analyze(&apg, &methods)
    }

    fn manifest() -> Manifest {
        let mut m = Manifest::new("com.x");
        m.add_component(ComponentKind::Activity, "com.x.Main", true);
        m
    }

    #[test]
    fn direct_source_to_log_sink() {
        // The paper's Fig. 9: getInstalledPackages() → Log.e().
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.content.pm.PackageManager",
                        "getInstalledPackages",
                        &[0],
                        Some(1),
                    );
                    m.invoke_static("android.util.Log", "e", &[1], None);
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].info, PrivateInfo::AppList);
        assert_eq!(leaks[0].sink, SinkKind::Log);
        // The witness pair reads like the paper's finding.
        assert_eq!(leaks[0].source_api, "android.content.pm.PackageManager.getInstalledPackages");
        assert_eq!(leaks[0].sink_api, "android.util.Log.e");
    }

    #[test]
    fn taint_through_string_builder() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.invoke_virtual("java.lang.StringBuilder", "append", &[2, 1], Some(3));
                    m.invoke_virtual("java.lang.StringBuilder", "toString", &[3], Some(4));
                    m.invoke_static("android.util.Log", "i", &[4], None);
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert!(leaks.iter().any(|l| l.info == PrivateInfo::Location && l.sink == SinkKind::Log));
    }

    #[test]
    fn interprocedural_flow_through_helper() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        &[0],
                        Some(1),
                    );
                    m.invoke_virtual("com.x.Main", "save", &[1], None);
                });
                c.method("save", 1, |m| {
                    m.invoke_virtual("java.io.FileOutputStream", "write", &[0], None);
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert!(leaks.iter().any(|l| l.info == PrivateInfo::DeviceId && l.sink == SinkKind::File));
    }

    #[test]
    fn flow_through_field() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLongitude", &[0], Some(1));
                    m.field_put("com.x.Main", "cached", 1);
                    m.invoke_virtual("com.x.Main", "onClick", &[0], None);
                });
                c.method("onClick", 1, |m| {
                    m.field_get("com.x.Main", "cached", 2);
                    m.invoke_static("android.util.Log", "d", &[2], None);
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert!(leaks.iter().any(|l| l.info == PrivateInfo::Location));
    }

    #[test]
    fn query_uri_source_reaches_sink() {
        // The paper's com.easyxapp.secret case: contacts URI → Log.
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.const_string(1, "content://com.android.contacts");
                    m.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
                    m.invoke_static("android.util.Log", "i", &[2], None);
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert!(leaks.iter().any(|l| l.info == PrivateInfo::Contact && l.sink == SinkKind::Log));
    }

    #[test]
    fn no_leak_without_sink() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                });
            })
            .build();
        assert!(analyze_apk(&Apk::new(manifest(), dex)).is_empty());
    }

    #[test]
    fn unreachable_leak_is_ignored() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |_| {});
                c.method("deadCode", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
            })
            .build();
        assert!(analyze_apk(&Apk::new(manifest(), dex)).is_empty());
    }

    #[test]
    fn const_string_clears_taint() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.const_string(1, "overwritten");
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
            })
            .build();
        assert!(analyze_apk(&Apk::new(manifest(), dex)).is_empty());
    }

    #[test]
    fn sms_sink_kind() {
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual(
                        "android.telephony.TelephonyManager",
                        "getLine1Number",
                        &[0],
                        Some(1),
                    );
                    m.invoke_virtual(
                        "android.telephony.SmsManager",
                        "sendTextMessage",
                        &[2, 1],
                        None,
                    );
                });
            })
            .build();
        let leaks = analyze_apk(&Apk::new(manifest(), dex));
        assert!(leaks
            .iter()
            .any(|l| l.info == PrivateInfo::PhoneNumber && l.sink == SinkKind::Sms));
    }
}

#[cfg(test)]
mod icc_tests {
    use super::*;
    use crate::reach;
    use ppchecker_apk::{Apk, ComponentKind, Dex, Manifest};

    /// IccTA-style data flow: location → intent extra → started service →
    /// getStringExtra → Log.
    #[test]
    fn taint_flows_through_intent_extras() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        manifest.add_component(ComponentKind::Service, "com.x.Uploader", false);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.new_instance(2, "android.content.Intent");
                    m.const_string(3, "com.x.Uploader");
                    m.invoke_virtual("android.content.Intent", "setClass", &[2, 0, 3], None);
                    m.const_string(4, "lat");
                    m.invoke_virtual("android.content.Intent", "putExtra", &[2, 4, 1], None);
                    m.invoke_virtual("android.app.Activity", "startService", &[0, 2], None);
                });
            })
            .class("com.x.Uploader", |c| {
                c.extends("android.app.Service");
                c.method("onStartCommand", 3, |m| {
                    m.const_string(4, "lat");
                    m.invoke_virtual("android.content.Intent", "getStringExtra", &[1, 4], Some(5));
                    m.invoke_static("android.util.Log", "i", &[5], None);
                });
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let apg = Apg::build(&apk).unwrap();
        let methods = reach::reachable_methods(&apg);
        let leaks = analyze(&apg, &methods);
        assert!(
            leaks
                .iter()
                .any(|l| l.info == PrivateInfo::Location && l.at_method.contains("Uploader")),
            "leaks: {leaks:?}"
        );
    }

    /// Extras put for one component do not leak into another.
    #[test]
    fn icc_taint_is_per_target() {
        let mut manifest = Manifest::new("com.x");
        manifest.add_component(ComponentKind::Activity, "com.x.Main", true);
        manifest.add_component(ComponentKind::Service, "com.x.Other", false);
        let dex = Dex::builder()
            .class("com.x.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.new_instance(2, "android.content.Intent");
                    m.const_string(3, "com.x.Target");
                    m.invoke_virtual("android.content.Intent", "setClass", &[2, 0, 3], None);
                    m.invoke_virtual("android.content.Intent", "putExtra", &[2, 4, 1], None);
                    m.invoke_virtual("com.x.Other", "onStartCommand", &[0], None);
                });
            })
            .class("com.x.Other", |c| {
                c.extends("android.app.Service");
                c.method("onStartCommand", 3, |m| {
                    m.invoke_virtual("android.content.Intent", "getStringExtra", &[1, 4], Some(5));
                    m.invoke_static("android.util.Log", "i", &[5], None);
                });
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let apg = Apg::build(&apk).unwrap();
        let methods = reach::reachable_methods(&apg);
        let leaks = analyze(&apg, &methods);
        assert!(leaks.is_empty(), "extras for com.x.Target must not reach com.x.Other");
    }
}
