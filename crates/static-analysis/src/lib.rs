//! # ppchecker-static
//!
//! The static analysis module of the PPChecker reproduction: builds an
//! Android property graph from a (simulated) APK, discovers entry points,
//! runs reachability, resolves content-provider URIs, performs
//! interprocedural taint analysis, and reports the information an app
//! collects (`Collect_code`) and retains (`Retain_code`), plus the
//! third-party libraries it embeds.
//!
//! Substitutes, each implemented from scratch:
//! - ValHunter-style APG over a property-graph store ([`graph`], [`apg`])
//! - FlowDroid-style taint analysis ([`taint`], [`sinks`])
//! - EdgeMiner-style implicit callbacks ([`callbacks`])
//! - IccTA-style intent edges (in [`apg`])
//! - PScout-style URI tables ([`uris`]) and the 68-API table ([`sensitive`])
//!
//! # Examples
//!
//! ```
//! use ppchecker_apk::{Apk, Dex, Manifest, ComponentKind, PrivateInfo};
//! use ppchecker_static::analyze;
//!
//! let mut manifest = Manifest::new("com.example.app");
//! manifest.add_component(ComponentKind::Activity, "com.example.app.Main", true);
//! let dex = Dex::builder()
//!     .class("com.example.app.Main", |c| {
//!         c.method("onCreate", 1, |m| {
//!             m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
//!         });
//!     })
//!     .build();
//! let report = analyze(&Apk::new(manifest, dex))?;
//! assert!(report.collect_code().contains(&PrivateInfo::Location));
//! # Ok::<(), ppchecker_apk::ParseDexError>(())
//! ```

pub mod analysis;
pub mod apg;
pub mod callbacks;
pub mod consts;
pub mod graph;
mod kernel;
pub mod libs;
pub mod reach;
pub mod sensitive;
pub mod sinks;
pub mod summary;
pub mod taint;
pub mod uris;

pub use analysis::{
    analyze, analyze_with, analyze_with_cache, AnalysisOptions, Callsite, StaticReport,
};
pub use apg::Apg;
pub use libs::{detect_libs, KnownLib, LibKind, KNOWN_LIBS};
pub use sinks::SinkKind;
pub use summary::TaintSummaryCache;
pub use taint::Leak;
