//! Cross-app library taint-summary cache.
//!
//! Ad/social/developer SDKs repeat byte-for-byte across a corpus (the
//! paper finds 57.9% of apps embedding at least one of 81 known libs), so
//! the taint kernel's work on a lib's methods repeats with them. This
//! module caches, per *library content hash*, the first-iteration taint
//! contribution of each lib method — `F_m(∅)`: what the method adds to
//! return/field/param/ICC taint and to the leak set when its own inputs
//! carry no taint. A later app embedding the identical lib classes seeds
//! its fixpoint from the summary and skips the initial interpretation of
//! every summarized method; the dirty-bit worklist still reprocesses any
//! lib method whose inputs grow beyond ∅, so leak results are unchanged
//! (see DESIGN.md §11 for the soundness argument).
//!
//! Keying is content-addressed: the FNV-1a hash of the lib's class set
//! ([`ppchecker_apk::stable_hash_classes`]) over sorted class names, so a
//! recompiled or trimmed copy of a lib never matches a stale summary.

use crate::sensitive::{self, SensitiveApi};
use crate::sinks::{self, SinkApi};
use ppchecker_apk::{FnvMap, PrivateInfo};
use ppchecker_store::{ArtifactTier, RecordKind, WireError, WireReader, WireWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// One taint label in app-independent form. Table-sourced labels are
/// kept as pointers into the static sensitive-API table — two apps
/// interning the same API produce the same pointer, so replaying a
/// summary translates labels by pointer equality instead of hashing or
/// comparing dotted name strings. URI labels carry the witness string.
#[derive(Debug, Clone)]
pub(crate) enum NamedLabel {
    Api(&'static SensitiveApi),
    Uri { info: PrivateInfo, src: String },
}

/// `F_m(∅)` for one library method; contributions that reference app
/// code (fields, params, channels) stay name-keyed, everything bound to
/// a static table is a pointer.
#[derive(Debug, Clone)]
pub(crate) struct MethodSummary {
    /// Declaring class of the summarized method.
    pub(crate) class: String,
    /// Method name.
    pub(crate) method: String,
    /// Labels the method adds to its own return taint.
    pub(crate) ret: Vec<NamedLabel>,
    /// `(class, field)` → labels written by `FieldPut`.
    pub(crate) fields: Vec<(String, String, Vec<NamedLabel>)>,
    /// `(callee class, callee method)` → labels pushed into parameters
    /// of lib-internal calls.
    pub(crate) params: Vec<(String, String, Vec<NamedLabel>)>,
    /// Intent target class → labels put into the ICC channel.
    pub(crate) channels: Vec<(String, Vec<NamedLabel>)>,
    /// Leaks the method produces on its own (source and sink both local).
    pub(crate) leaks: Vec<SummaryLeak>,
}

/// A leak contribution: static sink-table pointer plus the declaring
/// `(class, method)` names of the call site.
#[derive(Debug, Clone)]
pub(crate) struct SummaryLeak {
    pub(crate) label: NamedLabel,
    pub(crate) api: &'static SinkApi,
    pub(crate) at_class: String,
    pub(crate) at_method: String,
}

/// Per-library bundle of method summaries.
///
/// Only methods whose first-iteration behavior is app-independent are
/// included (lib-internal calls resolved and in scope, everything else
/// framework); the kernel processes omitted methods normally.
#[derive(Debug, Clone, Default)]
pub struct LibSummary {
    pub(crate) methods: Vec<MethodSummary>,
    /// Union of the `(class, method)` pairs the summarized methods
    /// invoke that resolved neither in the lib class set nor (at summary
    /// time) in the embedding app. The summaries treated them as
    /// framework taint-through calls, so the bundle only applies to an
    /// app where they still resolve to no app method — checked once per
    /// app instead of once per method.
    pub(crate) external_calls: Vec<(String, String)>,
}

impl LibSummary {
    /// Number of summarized methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
}

/// Thread-safe, content-addressed store of [`LibSummary`] values, shared
/// across all apps of a batch run (the cross-app half of the taint
/// kernel), optionally backed by a persistent disk tier so summaries
/// survive across runs.
///
/// Mirrors the engine's `ArtifactCache` discipline: compute outside the
/// write lock, first insert wins, `misses` counts distinct lib contents
/// *computed this run* — a summary replayed from the disk tier counts as
/// a hit, since the kernel skipped the work either way.
#[derive(Debug, Default)]
pub struct TaintSummaryCache {
    map: RwLock<FnvMap<u64, Arc<LibSummary>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk: OnceLock<Arc<dyn ArtifactTier>>,
}

impl TaintSummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        TaintSummaryCache::default()
    }

    /// Attaches a persistent tier consulted on memory misses and written
    /// on inserts. First attachment wins; later calls are ignored (the
    /// cache is shared behind `Arc`, so every holder sees the tier).
    pub fn attach_disk_tier(&self, tier: Arc<dyn ArtifactTier>) {
        let _ = self.disk.set(tier);
    }

    /// Looks up the summary for a lib content hash, counting a hit or a
    /// miss. On a memory miss the disk tier (when attached) is probed;
    /// a decodable stored summary is promoted into memory and counts as
    /// a hit, so `misses` stays "summaries computed this run".
    pub(crate) fn get(&self, key: u64) -> Option<Arc<LibSummary>> {
        let hit = self.map.read().expect("summary cache lock").get(&key).cloned();
        if let Some(summary) = hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(summary);
        }
        if let Some(summary) = self.load_from_disk(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(summary);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Disk-tier probe: decode, promote into memory (first insert wins).
    /// Any defect — missing record, corruption, an API name the current
    /// tables no longer carry — reads as `None` and the kernel recomputes.
    fn load_from_disk(&self, key: u64) -> Option<Arc<LibSummary>> {
        let tier = self.disk.get()?;
        let bytes = tier.load(RecordKind::LibSummary, key)?;
        let summary = decode_lib_summary(&bytes).ok()?;
        let fresh = Arc::new(summary);
        let mut map = self.map.write().expect("summary cache lock");
        Some(Arc::clone(map.entry(key).or_insert(fresh)))
    }

    /// Stores a freshly computed summary; the first insert wins so every
    /// consumer shares one allocation. The winning insert is also
    /// persisted to the disk tier when one is attached.
    pub(crate) fn insert(&self, key: u64, summary: LibSummary) -> Arc<LibSummary> {
        let fresh = Arc::new(summary);
        let mut map = self.map.write().expect("summary cache lock");
        let mut won = false;
        let shared = Arc::clone(map.entry(key).or_insert_with(|| {
            won = true;
            fresh
        }));
        drop(map);
        if won {
            if let Some(tier) = self.disk.get() {
                tier.save(RecordKind::LibSummary, key, &encode_lib_summary(&shared));
            }
        }
        shared
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no summary (distinct lib contents seen).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Summaries resident.
    pub fn entries(&self) -> usize {
        self.map.read().expect("summary cache lock").len()
    }
}

// ---- wire codec -------------------------------------------------------
//
// Summaries hold `&'static` pointers into the sensitive-API and sink
// tables; the encoding carries the `(class, method)` names and decoding
// re-resolves them through the table lookups. A name the current tables
// no longer carry makes the whole decode fail — the record was written
// by an incompatible build, so the kernel recomputes.

fn write_label(w: &mut WireWriter, label: &NamedLabel) {
    match label {
        NamedLabel::Api(api) => {
            w.u8(0);
            w.str(api.class);
            w.str(api.method);
        }
        NamedLabel::Uri { info, src } => {
            w.u8(1);
            w.str(info.canonical_phrase());
            w.str(src);
        }
    }
}

fn read_label(r: &mut WireReader<'_>) -> Result<NamedLabel, WireError> {
    match r.u8()? {
        0 => {
            let class = r.str()?;
            let method = r.str()?;
            let api = sensitive::lookup(class, method)
                .ok_or_else(|| WireError(format!("unknown sensitive api {class}.{method}")))?;
            Ok(NamedLabel::Api(api))
        }
        1 => {
            let name = r.str()?;
            let info = *PrivateInfo::ALL
                .iter()
                .find(|i| i.canonical_phrase() == name)
                .ok_or_else(|| WireError(format!("unknown private info '{name}'")))?;
            Ok(NamedLabel::Uri { info, src: r.str()?.to_string() })
        }
        other => Err(WireError(format!("bad label tag {other}"))),
    }
}

fn write_labels(w: &mut WireWriter, labels: &[NamedLabel]) {
    w.seq(labels.len());
    for l in labels {
        write_label(w, l);
    }
}

fn read_labels(r: &mut WireReader<'_>) -> Result<Vec<NamedLabel>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_label(r)?);
    }
    Ok(out)
}

fn write_named_group(w: &mut WireWriter, group: &[(String, String, Vec<NamedLabel>)]) {
    w.seq(group.len());
    for (a, b, labels) in group {
        w.str(a);
        w.str(b);
        write_labels(w, labels);
    }
}

fn read_named_group(
    r: &mut WireReader<'_>,
) -> Result<Vec<(String, String, Vec<NamedLabel>)>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.str()?.to_string(), r.str()?.to_string(), read_labels(r)?));
    }
    Ok(out)
}

/// Encodes a [`LibSummary`] for the artifact store.
pub fn encode_lib_summary(s: &LibSummary) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.seq(s.methods.len());
    for m in &s.methods {
        w.str(&m.class);
        w.str(&m.method);
        write_labels(&mut w, &m.ret);
        write_named_group(&mut w, &m.fields);
        write_named_group(&mut w, &m.params);
        w.seq(m.channels.len());
        for (target, labels) in &m.channels {
            w.str(target);
            write_labels(&mut w, labels);
        }
        w.seq(m.leaks.len());
        for leak in &m.leaks {
            write_label(&mut w, &leak.label);
            w.str(leak.api.class);
            w.str(leak.api.method);
            w.str(&leak.at_class);
            w.str(&leak.at_method);
        }
    }
    w.seq(s.external_calls.len());
    for (class, method) in &s.external_calls {
        w.str(class);
        w.str(method);
    }
    w.into_bytes()
}

/// Decodes a stored [`LibSummary`], re-resolving every table pointer.
///
/// # Errors
///
/// Returns [`WireError`] on any defect (including API names the current
/// tables no longer carry); the cache treats that as a miss.
pub fn decode_lib_summary(bytes: &[u8]) -> Result<LibSummary, WireError> {
    let mut r = WireReader::new(bytes);
    let n_methods = r.seq()?;
    let mut methods = Vec::with_capacity(n_methods);
    for _ in 0..n_methods {
        let class = r.str()?.to_string();
        let method = r.str()?.to_string();
        let ret = read_labels(&mut r)?;
        let fields = read_named_group(&mut r)?;
        let params = read_named_group(&mut r)?;
        let n_chan = r.seq()?;
        let mut channels = Vec::with_capacity(n_chan);
        for _ in 0..n_chan {
            channels.push((r.str()?.to_string(), read_labels(&mut r)?));
        }
        let n_leaks = r.seq()?;
        let mut leaks = Vec::with_capacity(n_leaks);
        for _ in 0..n_leaks {
            let label = read_label(&mut r)?;
            let sink_class = r.str()?;
            let sink_method = r.str()?;
            let api = sinks::lookup(sink_class, sink_method)
                .ok_or_else(|| WireError(format!("unknown sink {sink_class}.{sink_method}")))?;
            leaks.push(SummaryLeak {
                label,
                api,
                at_class: r.str()?.to_string(),
                at_method: r.str()?.to_string(),
            });
        }
        methods.push(MethodSummary { class, method, ret, fields, params, channels, leaks });
    }
    let n_ext = r.seq()?;
    let mut external_calls = Vec::with_capacity(n_ext);
    for _ in 0..n_ext {
        external_calls.push((r.str()?.to_string(), r.str()?.to_string()));
    }
    if !r.is_exhausted() {
        return Err(WireError("trailing bytes after summary".into()));
    }
    Ok(LibSummary { methods, external_calls })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = TaintSummaryCache::new();
        assert!(cache.get(42).is_none());
        cache.insert(42, LibSummary::default());
        assert!(cache.get(42).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let cache = TaintSummaryCache::new();
        let a = cache.insert(7, LibSummary::default());
        let b = cache.insert(7, LibSummary::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
    }

    fn sample_summary() -> LibSummary {
        let loc = sensitive::lookup("android.location.Location", "getLatitude").unwrap();
        let dev = sensitive::lookup("android.telephony.TelephonyManager", "getDeviceId").unwrap();
        let log = sinks::lookup("android.util.Log", "d").unwrap();
        LibSummary {
            methods: vec![MethodSummary {
                class: "com.ads.Sdk".into(),
                method: "init".into(),
                ret: vec![NamedLabel::Api(loc)],
                fields: vec![(
                    "com.ads.Sdk".into(),
                    "cached".into(),
                    vec![NamedLabel::Uri {
                        info: PrivateInfo::Contact,
                        src: "content://contacts".into(),
                    }],
                )],
                params: vec![("com.ads.Net".into(), "send".into(), vec![NamedLabel::Api(dev)])],
                channels: vec![("com.ads.Service".into(), vec![NamedLabel::Api(loc)])],
                leaks: vec![SummaryLeak {
                    label: NamedLabel::Api(dev),
                    api: log,
                    at_class: "com.ads.Sdk".into(),
                    at_method: "init".into(),
                }],
            }],
            external_calls: vec![("com.app.Main".into(), "callback".into())],
        }
    }

    #[test]
    fn lib_summary_round_trips() {
        let original = sample_summary();
        let decoded = decode_lib_summary(&encode_lib_summary(&original)).unwrap();
        assert_eq!(decoded.methods.len(), 1);
        let (d, o) = (&decoded.methods[0], &original.methods[0]);
        assert_eq!(d.class, o.class);
        assert_eq!(d.method, o.method);
        // Table pointers re-resolve to the same entries.
        match (&d.ret[0], &o.ret[0]) {
            (NamedLabel::Api(a), NamedLabel::Api(b)) => assert!(std::ptr::eq(*a, *b)),
            other => panic!("label mismatch: {other:?}"),
        }
        match &d.fields[0].2[0] {
            NamedLabel::Uri { info, src } => {
                assert_eq!(*info, PrivateInfo::Contact);
                assert_eq!(src, "content://contacts");
            }
            other => panic!("expected uri label, got {other:?}"),
        }
        assert!(std::ptr::eq(d.leaks[0].api, o.leaks[0].api));
        assert_eq!(decoded.external_calls, original.external_calls);
    }

    #[test]
    fn unknown_api_name_fails_decode() {
        let mut w = WireWriter::new();
        w.seq(1);
        w.str("com.ads.Sdk");
        w.str("init");
        // ret: one label pointing at an API no table carries
        w.seq(1);
        w.u8(0);
        w.str("android.gone.Api");
        w.str("vanished");
        let bytes = w.into_bytes();
        assert!(decode_lib_summary(&bytes).is_err());
    }

    #[test]
    fn truncated_summary_fails_decode() {
        let bytes = encode_lib_summary(&sample_summary());
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_lib_summary(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn disk_tier_persists_and_promotes() {
        #[derive(Debug, Default)]
        struct MemTier(RwLock<std::collections::HashMap<u64, Vec<u8>>>);
        impl ArtifactTier for MemTier {
            fn load(&self, _kind: RecordKind, key: u64) -> Option<Vec<u8>> {
                self.0.read().unwrap().get(&key).cloned()
            }
            fn save(&self, _kind: RecordKind, key: u64, payload: &[u8]) {
                self.0.write().unwrap().insert(key, payload.to_vec());
            }
        }

        let tier: Arc<MemTier> = Arc::new(MemTier::default());
        let warm = TaintSummaryCache::new();
        warm.attach_disk_tier(Arc::clone(&tier) as Arc<dyn ArtifactTier>);
        assert!(warm.get(99).is_none());
        warm.insert(99, sample_summary());
        assert!(tier.0.read().unwrap().contains_key(&99), "insert must persist");

        // A fresh cache over the same tier warm-starts: the probe is a
        // hit served from disk, and the summary is promoted into memory.
        let fresh = TaintSummaryCache::new();
        fresh.attach_disk_tier(tier as Arc<dyn ArtifactTier>);
        let replayed = fresh.get(99).expect("disk tier serves the summary");
        assert_eq!(replayed.method_count(), 1);
        assert_eq!(fresh.hits(), 1);
        assert_eq!(fresh.misses(), 0);
        assert_eq!(fresh.entries(), 1);
    }

    #[test]
    fn corrupt_disk_record_reads_as_miss() {
        #[derive(Debug)]
        struct GarbageTier;
        impl ArtifactTier for GarbageTier {
            fn load(&self, _kind: RecordKind, _key: u64) -> Option<Vec<u8>> {
                Some(vec![0xFF; 9])
            }
            fn save(&self, _kind: RecordKind, _key: u64, _payload: &[u8]) {}
        }
        let cache = TaintSummaryCache::new();
        cache.attach_disk_tier(Arc::new(GarbageTier));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.misses(), 1);
    }
}
