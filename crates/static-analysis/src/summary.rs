//! Cross-app library taint-summary cache.
//!
//! Ad/social/developer SDKs repeat byte-for-byte across a corpus (the
//! paper finds 57.9% of apps embedding at least one of 81 known libs), so
//! the taint kernel's work on a lib's methods repeats with them. This
//! module caches, per *library content hash*, the first-iteration taint
//! contribution of each lib method — `F_m(∅)`: what the method adds to
//! return/field/param/ICC taint and to the leak set when its own inputs
//! carry no taint. A later app embedding the identical lib classes seeds
//! its fixpoint from the summary and skips the initial interpretation of
//! every summarized method; the dirty-bit worklist still reprocesses any
//! lib method whose inputs grow beyond ∅, so leak results are unchanged
//! (see DESIGN.md §11 for the soundness argument).
//!
//! Keying is content-addressed: the FNV-1a hash of the lib's class set
//! ([`ppchecker_apk::stable_hash_classes`]) over sorted class names, so a
//! recompiled or trimmed copy of a lib never matches a stale summary.

use crate::sensitive::SensitiveApi;
use crate::sinks::SinkApi;
use ppchecker_apk::{FnvMap, PrivateInfo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One taint label in app-independent form. Table-sourced labels are
/// kept as pointers into the static sensitive-API table — two apps
/// interning the same API produce the same pointer, so replaying a
/// summary translates labels by pointer equality instead of hashing or
/// comparing dotted name strings. URI labels carry the witness string.
#[derive(Debug, Clone)]
pub(crate) enum NamedLabel {
    Api(&'static SensitiveApi),
    Uri { info: PrivateInfo, src: String },
}

/// `F_m(∅)` for one library method; contributions that reference app
/// code (fields, params, channels) stay name-keyed, everything bound to
/// a static table is a pointer.
#[derive(Debug, Clone)]
pub(crate) struct MethodSummary {
    /// Declaring class of the summarized method.
    pub(crate) class: String,
    /// Method name.
    pub(crate) method: String,
    /// Labels the method adds to its own return taint.
    pub(crate) ret: Vec<NamedLabel>,
    /// `(class, field)` → labels written by `FieldPut`.
    pub(crate) fields: Vec<(String, String, Vec<NamedLabel>)>,
    /// `(callee class, callee method)` → labels pushed into parameters
    /// of lib-internal calls.
    pub(crate) params: Vec<(String, String, Vec<NamedLabel>)>,
    /// Intent target class → labels put into the ICC channel.
    pub(crate) channels: Vec<(String, Vec<NamedLabel>)>,
    /// Leaks the method produces on its own (source and sink both local).
    pub(crate) leaks: Vec<SummaryLeak>,
}

/// A leak contribution: static sink-table pointer plus the declaring
/// `(class, method)` names of the call site.
#[derive(Debug, Clone)]
pub(crate) struct SummaryLeak {
    pub(crate) label: NamedLabel,
    pub(crate) api: &'static SinkApi,
    pub(crate) at_class: String,
    pub(crate) at_method: String,
}

/// Per-library bundle of method summaries.
///
/// Only methods whose first-iteration behavior is app-independent are
/// included (lib-internal calls resolved and in scope, everything else
/// framework); the kernel processes omitted methods normally.
#[derive(Debug, Clone, Default)]
pub struct LibSummary {
    pub(crate) methods: Vec<MethodSummary>,
    /// Union of the `(class, method)` pairs the summarized methods
    /// invoke that resolved neither in the lib class set nor (at summary
    /// time) in the embedding app. The summaries treated them as
    /// framework taint-through calls, so the bundle only applies to an
    /// app where they still resolve to no app method — checked once per
    /// app instead of once per method.
    pub(crate) external_calls: Vec<(String, String)>,
}

impl LibSummary {
    /// Number of summarized methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
}

/// Thread-safe, content-addressed store of [`LibSummary`] values, shared
/// across all apps of a batch run (the cross-app half of the taint
/// kernel).
///
/// Mirrors the engine's `ArtifactCache` discipline: compute outside the
/// write lock, first insert wins, `misses` counts distinct lib contents.
#[derive(Debug, Default)]
pub struct TaintSummaryCache {
    map: RwLock<FnvMap<u64, Arc<LibSummary>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TaintSummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        TaintSummaryCache::default()
    }

    /// Looks up the summary for a lib content hash, counting a hit or a
    /// miss.
    pub(crate) fn get(&self, key: u64) -> Option<Arc<LibSummary>> {
        let hit = self.map.read().expect("summary cache lock").get(&key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a freshly computed summary; the first insert wins so every
    /// consumer shares one allocation.
    pub(crate) fn insert(&self, key: u64, summary: LibSummary) -> Arc<LibSummary> {
        let fresh = Arc::new(summary);
        let mut map = self.map.write().expect("summary cache lock");
        Arc::clone(map.entry(key).or_insert(fresh))
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no summary (distinct lib contents seen).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Summaries resident.
    pub fn entries(&self) -> usize {
        self.map.read().expect("summary cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = TaintSummaryCache::new();
        assert!(cache.get(42).is_none());
        cache.insert(42, LibSummary::default());
        assert!(cache.get(42).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let cache = TaintSummaryCache::new();
        let a = cache.insert(7, LibSummary::default());
        let b = cache.insert(7, LibSummary::default());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
    }
}
