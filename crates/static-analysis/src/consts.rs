//! Intra-procedural constant/URI propagation.
//!
//! The paper locates `ContentResolver.query()` statements and walks the
//! paths feeding their URI argument to recover the queried URI — either a
//! `Uri.parse("content://...")` of a string constant or a read of a
//! framework `CONTENT_URI` field. This module reproduces that resolution
//! with a backward register scan following `move`, `Uri.parse`, and field
//! reads.

use ppchecker_apk::{Insn, Method, Reg};

/// A resolved URI argument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UriValue {
    /// A literal `content://` string (possibly via `Uri.parse`).
    Literal(String),
    /// A framework URI field, in PScout descriptor form
    /// `<declaring.Class: android.net.Uri FIELD>`.
    Field(String),
}

/// Resolves the value of `reg` at instruction index `at` by scanning
/// backwards through the method body.
///
/// Follows `move` chains, `Uri.parse(const-string)` and
/// `Uri.withAppendedPath`, and turns `iget/sget` of `android.*` URI fields
/// into [`UriValue::Field`] descriptors.
pub fn resolve_uri(method: &Method, at: usize, reg: Reg) -> Option<UriValue> {
    let mut wanted = reg;
    let end = at.min(method.instructions.len());
    for insn in method.instructions[..end].iter().rev() {
        match insn {
            Insn::ConstString { dst, value } if *dst == wanted => {
                return Some(UriValue::Literal(value.clone()));
            }
            Insn::Move { dst, src } if *dst == wanted => {
                wanted = *src;
            }
            Insn::FieldGet { class, field, dst } if *dst == wanted => {
                if class.starts_with("android.provider") || field.contains("CONTENT_URI") {
                    return Some(UriValue::Field(format!("<{class}: android.net.Uri {field}>")));
                }
                return None;
            }
            Insn::Invoke { class, method: m, args, dst: Some(d), .. } if *d == wanted => {
                if class == "android.net.Uri" && (m == "parse" || m == "withAppendedPath") {
                    if let Some(&src) = args.first() {
                        wanted = src;
                        continue;
                    }
                }
                return None;
            }
            Insn::NewInstance { dst, .. } if *dst == wanted => return None,
            _ => {}
        }
    }
    None
}

/// Whether an invoke is a `ContentResolver.query`-style call — the
/// trigger for URI resolution at that site.
pub fn is_query_call(class: &str, method: &str) -> bool {
    (method == "query"
        && (class == "android.content.ContentResolver"
            || class == "android.content.ContentProviderClient"))
        || (class == "android.content.CursorLoader" && method == "loadInBackground")
}

/// All `ContentResolver.query`-style call sites in a method, with their
/// resolved URIs: `(instruction index, uri)`.
pub fn query_sites(method: &Method) -> Vec<(usize, UriValue)> {
    let mut out = Vec::new();
    for (idx, insn) in method.instructions.iter().enumerate() {
        let Insn::Invoke { class, method: m, args, .. } = insn else {
            continue;
        };
        if !is_query_call(class, m) {
            continue;
        }
        // The URI argument follows the receiver.
        for &arg in args.iter().skip(1) {
            if let Some(v) = resolve_uri(method, idx, arg) {
                out.push((idx, v));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppchecker_apk::Dex;

    fn method_with(body: impl FnOnce(&mut ppchecker_apk::MethodBuilder)) -> Method {
        let dex = Dex::builder()
            .class("com.x.A", |c| {
                c.method("m", 1, body);
            })
            .build();
        dex.class("com.x.A").unwrap().method("m").unwrap().clone()
    }

    #[test]
    fn resolves_direct_const_string() {
        let m = method_with(|b| {
            b.const_string(1, "content://contacts");
            b.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
        });
        let sites = query_sites(&m);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, UriValue::Literal("content://contacts".to_string()));
    }

    #[test]
    fn resolves_through_uri_parse_and_move() {
        let m = method_with(|b| {
            b.const_string(1, "content://com.android.calendar");
            b.invoke_static("android.net.Uri", "parse", &[1], Some(2));
            b.mov(3, 2);
            b.invoke_virtual("android.content.ContentResolver", "query", &[0, 3], Some(4));
        });
        let sites = query_sites(&m);
        assert_eq!(sites[0].1, UriValue::Literal("content://com.android.calendar".to_string()));
    }

    #[test]
    fn resolves_content_uri_field() {
        let m = method_with(|b| {
            b.field_get("android.provider.ContactsContract", "CONTENT_URI", 1);
            b.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
        });
        let sites = query_sites(&m);
        assert_eq!(
            sites[0].1,
            UriValue::Field(
                "<android.provider.ContactsContract: android.net.Uri CONTENT_URI>".to_string()
            )
        );
    }

    #[test]
    fn unresolvable_uri_is_skipped() {
        // URI produced by a complicated string operation (the paper's §VI
        // limitation): resolution fails, no site reported.
        let m = method_with(|b| {
            b.invoke_virtual("java.lang.StringBuilder", "toString", &[5], Some(1));
            b.invoke_virtual("android.content.ContentResolver", "query", &[0, 1], Some(2));
        });
        assert!(query_sites(&m).is_empty());
    }

    #[test]
    fn non_query_invokes_ignored() {
        let m = method_with(|b| {
            b.const_string(1, "content://sms");
            b.invoke_virtual("android.content.ContentResolver", "getType", &[0, 1], Some(2));
        });
        assert!(query_sites(&m).is_empty());
    }
}
