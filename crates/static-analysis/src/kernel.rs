//! Dense-ID bitset taint kernel.
//!
//! A drop-in replacement for the reference taint engine in
//! [`crate::taint`] that computes the identical leak set (the corpus
//! equivalence suite asserts byte-identical output) without touching a
//! string or allocating inside the fixpoint:
//!
//! * **Compile once, allocate never** — every in-scope method body is
//!   lowered in a single pass to a flat op stream over `u32` ids: taint
//!   labels, `(class, field)` pairs, ICC channels, sink sites and call
//!   targets are all interned as they are first seen, so the hot loop
//!   never hashes a string or probes a `HashMap`. All compile output
//!   lives in thread-local scratch buffers that are cleared and reused
//!   across apps — the interning tables hold static-table pointers and
//!   dex locators rather than owned strings — so steady-state analysis
//!   performs no heap allocation; witness strings are materialized only
//!   when a leak is reported.
//! * **Bitset taint** — a taint set becomes `[u64; W]` words
//!   (monomorphized for W = 1/2/4 ⇒ up to 64/128/256 distinct labels);
//!   union, test and population count are branchless word ops. Apps with
//!   more labels, or dexes with duplicate `(class, method)` declarations
//!   (where name resolution is ambiguous), fall back to the reference
//!   engine.
//! * **Dirty-bit worklist** — instead of re-sweeping every method each
//!   global round, a FIFO worklist re-processes only methods whose
//!   inputs (parameter, field, return or ICC-channel taint) actually
//!   grew. Dependency lists are CSR slices built by one sort per app.
//!   Both engines drive the same monotone transfer function to its least
//!   fixpoint, so the result is order-independent.
//! * **Library summaries** — with a [`TaintSummaryCache`], the
//!   first-iteration contribution of each known-lib method is keyed by
//!   the lib's content hash and replayed into later apps embedding the
//!   identical classes (see [`crate::summary`]).
//!
//! See DESIGN.md §11 for the equivalence and soundness arguments.

use crate::apg::Apg;
use crate::consts::{self, UriValue};
use crate::graph::NodeId;
use crate::sensitive::{self, SensitiveApi};
use crate::sinks::{self, SinkApi};
use crate::summary::{LibSummary, MethodSummary, NamedLabel, SummaryLeak, TaintSummaryCache};
use crate::taint::{intent_targets, Leak};
use crate::uris;
use ppchecker_apk::{Class, Insn, PrivateInfo, Reg};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};

/// Sentinel for "no id" in packed op fields.
const NONE: u32 = u32::MAX;

/// Labels beyond this fall back to the reference engine.
const MAX_LABELS: usize = 256;

thread_local! {
    /// Compile output, cleared and reused across apps on this thread.
    static COMPILE: RefCell<CompileScratch> = const { RefCell::new(CompileScratch::new()) };
    /// Fixpoint state per bitset width, likewise reused.
    static STATE1: RefCell<StateScratch<1>> = const { RefCell::new(StateScratch::new()) };
    static STATE2: RefCell<StateScratch<2>> = const { RefCell::new(StateScratch::new()) };
    static STATE4: RefCell<StateScratch<4>> = const { RefCell::new(StateScratch::new()) };
}

/// Runs the kernel, or returns `None` when the app is outside its
/// supported envelope (duplicate method declarations, > 256 labels).
pub(crate) fn run(
    apg: &Apg,
    methods: &HashSet<NodeId>,
    cache: Option<&TaintSummaryCache>,
) -> Option<Vec<Leak>> {
    if apg.has_duplicate_methods() {
        return None;
    }
    COMPILE.with(|cell| {
        let mut cs = cell.borrow_mut();
        {
            let _span = ppchecker_obs::span!("taint.compile");
            compile(apg, methods, &mut cs)?;
        }
        let cs = &*cs;
        let prog = Program { apg, cs };
        let _span = ppchecker_obs::span!("taint.fixpoint");
        Some(match cs.labels.len() {
            0..=64 => STATE1.with(|s| exec::<1>(&prog, cache, &mut s.borrow_mut())),
            65..=128 => STATE2.with(|s| exec::<2>(&prog, cache, &mut s.borrow_mut())),
            _ => STATE4.with(|s| exec::<4>(&prog, cache, &mut s.borrow_mut())),
        })
    })
}

// ---------------------------------------------------------------------------
// Bitset
// ---------------------------------------------------------------------------

/// Fixed-width taint bitset: bit *i* = label *i* present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bits<const W: usize>([u64; W]);

impl<const W: usize> Bits<W> {
    const EMPTY: Self = Bits([0u64; W]);

    #[inline]
    fn set(&mut self, bit: u32) {
        self.0[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    /// Unions `other` in; true if any new bit arrived.
    ///
    /// Strip-mined over 4-word lanes with XOR-based change detection: for
    /// W ∈ {1, 2, 4} the const-generic loops fully unroll into
    /// straight-line `or`/`xor` word ops with a single final compare —
    /// no loop-carried bool and no branch per word. A widened W keeps
    /// working through the scalar remainder loop.
    #[inline]
    fn or(&mut self, other: &Self) -> bool {
        let mut changed = 0u64;
        let mut i = 0usize;
        while i + 4 <= W {
            let n0 = self.0[i] | other.0[i];
            let n1 = self.0[i + 1] | other.0[i + 1];
            let n2 = self.0[i + 2] | other.0[i + 2];
            let n3 = self.0[i + 3] | other.0[i + 3];
            changed |= (n0 ^ self.0[i])
                | (n1 ^ self.0[i + 1])
                | (n2 ^ self.0[i + 2])
                | (n3 ^ self.0[i + 3]);
            self.0[i] = n0;
            self.0[i + 1] = n1;
            self.0[i + 2] = n2;
            self.0[i + 3] = n3;
            i += 4;
        }
        while i < W {
            let next = self.0[i] | other.0[i];
            changed |= next ^ self.0[i];
            self.0[i] = next;
            i += 1;
        }
        changed != 0
    }

    #[inline]
    fn is_empty(&self) -> bool {
        // OR-fold in 4-word strips: one test at the end instead of an
        // early-exit branch per word (W ≤ 4 in practice, so scanning all
        // words is cheaper than branching).
        let mut acc = 0u64;
        let mut i = 0usize;
        while i + 4 <= W {
            acc |= self.0[i] | self.0[i + 1] | self.0[i + 2] | self.0[i + 3];
            i += 4;
        }
        while i < W {
            acc |= self.0[i];
            i += 1;
        }
        acc == 0
    }

    #[inline]
    fn count(&self) -> u32 {
        // Popcount-fold in 4-word strips; unrolls like `or`.
        let mut acc = 0u32;
        let mut i = 0usize;
        while i + 4 <= W {
            acc += self.0[i].count_ones()
                + self.0[i + 1].count_ones()
                + self.0[i + 2].count_ones()
                + self.0[i + 3].count_ones();
            i += 4;
        }
        while i < W {
            acc += self.0[i].count_ones();
            i += 1;
        }
        acc
    }

    /// Indexes of set bits, ascending.
    fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }
}

// ---------------------------------------------------------------------------
// Compiled program
// ---------------------------------------------------------------------------

/// One lowered instruction. Register-only ops inline their operands;
/// invokes index the side table in [`CompileScratch::invokes`].
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `ConstString` / `NewInstance`: strong clear of `dst`.
    Clear(Reg),
    /// `Move`: strong copy (can remove taint).
    Copy { dst: Reg, src: Reg },
    /// `FieldPut` into interned field id.
    FieldPut { field: u32, src: Reg },
    /// `FieldGet` from interned field id (weak: never clears).
    FieldGet { field: u32, dst: Reg },
    /// `Return` of a value register.
    Ret { src: Reg },
    /// Invoke; payload indexes [`CompileScratch::invokes`].
    Invoke(u32),
}

/// Pre-resolved effects of one invoke site, applied in the reference
/// engine's order: arg-union, source, URI source, ICC put, ICC get,
/// sink, call/taint-through, dst-union.
#[derive(Debug, Clone, Copy)]
struct InvokeOp {
    /// Range into [`CompileScratch::arg_regs`].
    args_start: u32,
    args_len: u32,
    /// Destination register or [`NONE`].
    dst: u32,
    /// Sensitive-API label introduced into `dst`, or [`NONE`].
    source_label: u32,
    /// Sensitive-URI label introduced into `dst`, or [`NONE`].
    uri_label: u32,
    /// ICC channel written by `putExtra`, or [`NONE`].
    icc_put: u32,
    /// ICC channel read by `get*Extra`, or [`NONE`].
    icc_get: u32,
    /// Interned sink site, or [`NONE`].
    sink_site: u32,
    /// In-scope app call target (method ix), or [`NONE`].
    call: u32,
    /// Framework call: result carries argument taint.
    taint_through: bool,
}

/// Where one compiled body lives in the flat op stream.
#[derive(Debug, Clone, Copy, Default)]
struct MethodMeta {
    ops_start: u32,
    ops_end: u32,
    /// Registers used (≥ `param_count`).
    reg_count: u32,
    param_count: u32,
    /// False ⇔ out of scope (never processed).
    compiled: bool,
    /// True when one interpretation pass provably reaches the body's
    /// local fixpoint: no op reads a register, field, or ICC channel
    /// that a *later* op in the same body writes, and the body never
    /// calls itself. Re-running such a body recomputes identical values
    /// (unions are idempotent and every read sees the same inputs), so
    /// `process` skips the multi-pass loop and its popcount sweeps.
    single_pass: bool,
}

/// A taint label, kept symbolic until a leak is actually reported:
/// table-sourced labels are just a pointer into the static API table,
/// URI labels own the witness string the reference engine would emit.
#[derive(Debug, Clone)]
enum LabelRef {
    Api(&'static SensitiveApi),
    Uri { info: PrivateInfo, src: String },
}

/// A sink call site: static table entry × dense method ix. With
/// duplicate declarations excluded, this bijects onto the reference
/// engine's `(sink_api, at_method)` witness strings, so (label × site)
/// pairs biject onto its deduplicated `Leak` set.
#[derive(Debug, Clone, Copy)]
struct SiteRef {
    api: &'static SinkApi,
    at_ix: u32,
}

/// Dependency rows in compressed sparse row form: one sort per app, no
/// per-row `Vec`s.
#[derive(Debug)]
struct Csr {
    off: Vec<u32>,
    dat: Vec<u32>,
}

impl Csr {
    const fn new() -> Self {
        Csr { off: Vec::new(), dat: Vec::new() }
    }

    /// Rebuilds from `(key, value)` pairs; sorts and dedups in place.
    fn build(&mut self, pairs: &mut Vec<(u32, u32)>, keys: usize) {
        pairs.sort_unstable();
        pairs.dedup();
        self.off.clear();
        self.off.resize(keys + 1, 0);
        self.dat.clear();
        self.dat.reserve(pairs.len());
        for &(k, v) in pairs.iter() {
            self.off[k as usize + 1] += 1;
            self.dat.push(v);
        }
        for i in 0..keys {
            self.off[i + 1] += self.off[i];
        }
    }

    #[inline]
    fn row(&self, k: u32) -> &[u32] {
        &self.dat[self.off[k as usize] as usize..self.off[k as usize + 1] as usize]
    }
}

/// Reusable compile output: the flat op stream, per-method metadata, the
/// per-app interning tables and the dependency CSRs. Everything is
/// `clear()`ed — capacity retained — at the start of each app, so a
/// steady-state compile performs no heap allocation: labels and sites
/// hold `&'static` table pointers, and fields are `(method ix,
/// instruction index)` locators into the dex instead of owned strings.
#[derive(Debug)]
struct CompileScratch {
    in_scope: Vec<bool>,
    /// In-scope method ixs, ascending.
    scope_ixs: Vec<u32>,
    metas: Vec<MethodMeta>,
    ops: Vec<Op>,
    invokes: Vec<InvokeOp>,
    arg_regs: Vec<Reg>,
    labels: Vec<LabelRef>,
    sites: Vec<SiteRef>,
    /// ICC channel names (owned: put targets come from const-string
    /// tracking temporaries; channels are rare).
    channels: Vec<String>,
    /// `(class, field)` pairs as dex locators; resolve via [`field_at`].
    fields: Vec<(u32, u32)>,
    field_pairs: Vec<(u32, u32)>,
    caller_pairs: Vec<(u32, u32)>,
    channel_pairs: Vec<(u32, u32)>,
    /// field id → in-scope methods with a `FieldGet` of it.
    field_readers: Csr,
    /// method ix → in-scope callers.
    callers_of: Csr,
    /// channel id → in-scope methods with a `get*Extra` on it.
    channel_readers: Csr,
    /// Write-tracking scratch for the single-pass check (one entry per
    /// register / field / channel, reused across methods).
    wr_regs: Vec<bool>,
    wr_fields: Vec<bool>,
    wr_chans: Vec<bool>,
    /// Largest `reg_count` (scratch sizing).
    max_regs: u32,
    /// Total dense methods in the app (indexable tables).
    method_total: usize,
}

impl CompileScratch {
    const fn new() -> Self {
        CompileScratch {
            in_scope: Vec::new(),
            scope_ixs: Vec::new(),
            metas: Vec::new(),
            ops: Vec::new(),
            invokes: Vec::new(),
            arg_regs: Vec::new(),
            labels: Vec::new(),
            sites: Vec::new(),
            channels: Vec::new(),
            fields: Vec::new(),
            field_pairs: Vec::new(),
            caller_pairs: Vec::new(),
            channel_pairs: Vec::new(),
            field_readers: Csr::new(),
            callers_of: Csr::new(),
            channel_readers: Csr::new(),
            wr_regs: Vec::new(),
            wr_fields: Vec::new(),
            wr_chans: Vec::new(),
            max_regs: 0,
            method_total: 0,
        }
    }
}

/// Everything the fixpoint needs, borrowed together.
struct Program<'a, 's> {
    apg: &'a Apg,
    cs: &'s CompileScratch,
}

/// The `(class, field)` strings behind a field locator.
fn field_at(apg: &Apg, ix: u32, idx: u32) -> (&str, &str) {
    match &apg.method_def(ix).1.instructions[idx as usize] {
        Insn::FieldPut { class, field, .. } | Insn::FieldGet { class, field, .. } => {
            (class.as_str(), field.as_str())
        }
        _ => unreachable!("field locator points at a field instruction"),
    }
}

/// Single-pass lowering of every in-scope body into `cs`. Returns `None`
/// past the label budget.
fn compile(apg: &Apg, methods: &HashSet<NodeId>, cs: &mut CompileScratch) -> Option<()> {
    let method_total = apg.method_count();
    cs.method_total = method_total;
    cs.max_regs = 0;
    cs.in_scope.clear();
    cs.in_scope.resize(method_total, false);
    cs.scope_ixs.clear();
    cs.scope_ixs.extend(methods.iter().filter_map(|&m| apg.method_ix(m)));
    cs.scope_ixs.sort_unstable();
    for &ix in &cs.scope_ixs {
        cs.in_scope[ix as usize] = true;
    }
    cs.metas.clear();
    cs.metas.resize(method_total, MethodMeta::default());
    cs.ops.clear();
    cs.invokes.clear();
    cs.arg_regs.clear();
    cs.labels.clear();
    cs.sites.clear();
    cs.channels.clear();
    cs.fields.clear();
    cs.field_pairs.clear();
    cs.caller_pairs.clear();
    cs.channel_pairs.clear();

    // Detach the scope list so `cs` stays mutably borrowable per method.
    let scope = std::mem::take(&mut cs.scope_ixs);
    for &ix in &scope {
        compile_method(apg, ix, cs);
    }
    cs.scope_ixs = scope;

    if cs.labels.len() > MAX_LABELS {
        return None;
    }

    let n_fields = cs.fields.len();
    let n_channels = cs.channels.len();
    let CompileScratch {
        field_pairs,
        caller_pairs,
        channel_pairs,
        field_readers,
        callers_of,
        channel_readers,
        ..
    } = cs;
    field_readers.build(field_pairs, n_fields);
    callers_of.build(caller_pairs, method_total);
    channel_readers.build(channel_pairs, n_channels);
    Some(())
}

fn compile_method(apg: &Apg, ix: u32, cs: &mut CompileScratch) {
    let (class, method) = apg.method_def(ix);
    let class_name = class.name.as_str();

    // Cheap pre-scan so the two per-method body analyses (const-string
    // intent-target tracking and query-URI resolution) only run on the
    // rare methods that can actually use their results.
    let mut has_put_extra = false;
    let mut has_query = false;
    for insn in &method.instructions {
        if let Insn::Invoke { class: c, method: m, .. } = insn {
            has_put_extra |= c == "android.content.Intent" && m == "putExtra";
            has_query |= consts::is_query_call(c, m);
        }
    }
    let targets = if has_put_extra { intent_targets(method) } else { HashMap::new() };
    let query_uris = if has_query { consts::query_sites(method) } else { Vec::new() };

    let param_count = method.param_count;
    let mut reg_count = param_count;
    let mut touch = |r: Reg| {
        if r + 1 > reg_count {
            reg_count = r + 1;
        }
    };
    let ops_start = cs.ops.len() as u32;
    for (idx, insn) in method.instructions.iter().enumerate() {
        match insn {
            Insn::ConstString { dst, .. } | Insn::NewInstance { dst, .. } => {
                touch(*dst);
                cs.ops.push(Op::Clear(*dst));
            }
            Insn::Move { dst, src } => {
                touch(*dst);
                touch(*src);
                cs.ops.push(Op::Copy { dst: *dst, src: *src });
            }
            Insn::FieldPut { src, .. } => {
                touch(*src);
                let field = intern_field(apg, cs, ix, idx as u32);
                cs.ops.push(Op::FieldPut { field, src: *src });
            }
            Insn::FieldGet { dst, .. } => {
                touch(*dst);
                let field = intern_field(apg, cs, ix, idx as u32);
                cs.field_pairs.push((field, ix));
                cs.ops.push(Op::FieldGet { field, dst: *dst });
            }
            Insn::Return { src: Some(s) } => {
                touch(*s);
                cs.ops.push(Op::Ret { src: *s });
            }
            Insn::Invoke { class: c, method: m, args, dst, .. } => {
                for &a in args.iter() {
                    touch(a);
                }
                if let Some(d) = dst {
                    touch(*d);
                }
                let args_start = cs.arg_regs.len() as u32;
                cs.arg_regs.extend_from_slice(args);

                let source_label =
                    sensitive::lookup(c, m).map(|api| intern_label_api(cs, api)).unwrap_or(NONE);
                let uri_label = if has_query {
                    query_uris
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .and_then(|(_, uri)| uri_parts(uri))
                        .map(|(info, src)| intern_label_uri(cs, info, src))
                        .unwrap_or(NONE)
                } else {
                    NONE
                };

                let mut icc_put = NONE;
                let mut icc_get = NONE;
                if c == "android.content.Intent" {
                    if m == "putExtra" {
                        if let Some(target) = args.first().and_then(|r| targets.get(r)) {
                            icc_put = intern_channel(cs, target);
                        }
                    }
                    if matches!(
                        m.as_str(),
                        "getStringExtra" | "getExtras" | "getParcelableExtra" | "getIntExtra"
                    ) {
                        let ch = intern_channel(cs, class_name);
                        icc_get = ch;
                        cs.channel_pairs.push((ch, ix));
                    }
                }

                let sink_site =
                    sinks::lookup(c, m).map(|api| intern_site(cs, api, ix)).unwrap_or(NONE);

                let mut call = NONE;
                let mut taint_through = false;
                match apg.lookup_ix(c, m) {
                    Some(t) if cs.in_scope[t as usize] => {
                        call = t;
                        cs.caller_pairs.push((t, ix));
                    }
                    Some(_) => {} // app method out of scope: no flow
                    None => taint_through = true,
                }

                let inv = InvokeOp {
                    args_start,
                    args_len: args.len() as u32,
                    dst: dst.unwrap_or(NONE),
                    source_label,
                    uri_label,
                    icc_put,
                    icc_get,
                    sink_site,
                    call,
                    taint_through,
                };
                let inv_ix = cs.invokes.len() as u32;
                cs.invokes.push(inv);
                cs.ops.push(Op::Invoke(inv_ix));
            }
            _ => {}
        }
    }
    cs.max_regs = cs.max_regs.max(reg_count);
    let single_pass = is_single_pass(cs, ops_start as usize, ix, reg_count);
    cs.metas[ix as usize] = MethodMeta {
        ops_start,
        ops_end: cs.ops.len() as u32,
        reg_count,
        param_count,
        compiled: true,
        single_pass,
    };
}

/// Backward scan over a freshly lowered body: true when no op reads a
/// register, field, or ICC channel that a later op writes, and the body
/// never invokes itself. For such bodies a second interpretation pass
/// sees every input unchanged (unions are idempotent, clears and copies
/// recompute the same values), so one pass is the local fixpoint.
fn is_single_pass(cs: &mut CompileScratch, ops_start: usize, ix: u32, reg_count: u32) -> bool {
    let CompileScratch {
        ops,
        invokes,
        arg_regs,
        fields,
        channels,
        wr_regs,
        wr_fields,
        wr_chans,
        ..
    } = cs;
    wr_regs.clear();
    wr_regs.resize(reg_count as usize, false);
    wr_fields.clear();
    wr_fields.resize(fields.len(), false);
    wr_chans.clear();
    wr_chans.resize(channels.len(), false);
    for op in ops[ops_start..].iter().rev() {
        // Check this op's reads against everything written after it,
        // *then* record its own writes.
        match *op {
            Op::Clear(dst) => wr_regs[dst as usize] = true,
            Op::Copy { dst, src } => {
                if wr_regs[src as usize] {
                    return false;
                }
                wr_regs[dst as usize] = true;
            }
            Op::FieldPut { field, src } => {
                if wr_regs[src as usize] {
                    return false;
                }
                wr_fields[field as usize] = true;
            }
            Op::FieldGet { field, dst } => {
                if wr_fields[field as usize] {
                    return false;
                }
                wr_regs[dst as usize] = true;
            }
            Op::Ret { src } => {
                if wr_regs[src as usize] {
                    return false;
                }
            }
            Op::Invoke(i) => {
                let inv = invokes[i as usize];
                let args =
                    &arg_regs[inv.args_start as usize..(inv.args_start + inv.args_len) as usize];
                if args.iter().any(|&r| wr_regs[r as usize]) {
                    return false;
                }
                if inv.icc_get != NONE && wr_chans[inv.icc_get as usize] {
                    return false;
                }
                if inv.call == ix {
                    return false; // self-recursion: return feeds back in
                }
                if inv.dst != NONE {
                    wr_regs[inv.dst as usize] = true;
                }
                if inv.icc_put != NONE {
                    wr_chans[inv.icc_put as usize] = true;
                }
            }
        }
    }
    true
}

// The interning tables are per-app and tiny (a handful of entries), so a
// linear scan beats hashing — and keeps the scans allocation-free.

fn intern_label_api(cs: &mut CompileScratch, api: &'static SensitiveApi) -> u32 {
    if let Some(id) =
        cs.labels.iter().position(|l| matches!(l, LabelRef::Api(a) if std::ptr::eq(*a, api)))
    {
        return id as u32;
    }
    cs.labels.push(LabelRef::Api(api));
    (cs.labels.len() - 1) as u32
}

fn intern_label_uri(cs: &mut CompileScratch, info: PrivateInfo, src: &str) -> u32 {
    if let Some(id) = cs
        .labels
        .iter()
        .position(|l| matches!(l, LabelRef::Uri { info: i, src: s } if *i == info && s == src))
    {
        return id as u32;
    }
    cs.labels.push(LabelRef::Uri { info, src: src.to_string() });
    (cs.labels.len() - 1) as u32
}

fn intern_channel(cs: &mut CompileScratch, name: &str) -> u32 {
    if let Some(id) = cs.channels.iter().position(|c| c == name) {
        return id as u32;
    }
    cs.channels.push(name.to_string());
    (cs.channels.len() - 1) as u32
}

fn intern_field(apg: &Apg, cs: &mut CompileScratch, ix: u32, idx: u32) -> u32 {
    let (class, field) = field_at(apg, ix, idx);
    if let Some(id) = cs.fields.iter().position(|&(fix, fidx)| {
        let (c, f) = field_at(apg, fix, fidx);
        c == class && f == field
    }) {
        return id as u32;
    }
    cs.fields.push((ix, idx));
    (cs.fields.len() - 1) as u32
}

fn intern_site(cs: &mut CompileScratch, api: &'static SinkApi, at_ix: u32) -> u32 {
    if let Some(id) = cs.sites.iter().position(|s| std::ptr::eq(s.api, api) && s.at_ix == at_ix) {
        return id as u32;
    }
    cs.sites.push(SiteRef { api, at_ix });
    (cs.sites.len() - 1) as u32
}

/// Resolves a query-site URI to `(info, witness)`, mirroring the
/// reference engine's witness strings.
fn uri_parts(uri: &UriValue) -> Option<(PrivateInfo, &str)> {
    match uri {
        UriValue::Literal(s) => uris::match_uri_string(s).map(|u| (u.info, s.as_str())),
        UriValue::Field(f) => uris::match_uri_field(f).map(|u| (u.info, f.as_str())),
    }
}

/// Materializes a label's `(info, source_api)` exactly as the reference
/// engine spells it.
fn label_parts(label: &LabelRef) -> (PrivateInfo, String) {
    match label {
        LabelRef::Api(api) => (api.info, format!("{}.{}", api.class, api.method)),
        LabelRef::Uri { info, src } => (*info, src.clone()),
    }
}

/// An interned label in the summary's app-independent form: table
/// pointers stay pointers, URI witnesses are cloned.
fn named_of(label: &LabelRef) -> NamedLabel {
    match label {
        LabelRef::Api(api) => NamedLabel::Api(api),
        LabelRef::Uri { info, src } => NamedLabel::Uri { info: *info, src: src.clone() },
    }
}

/// Equality between an interned label and a summary label: pointer
/// comparison for table-sourced labels (both sides intern out of the
/// same static table), content comparison for URI witnesses.
fn label_matches(label: &LabelRef, nl: &NamedLabel) -> bool {
    match (label, nl) {
        (LabelRef::Api(a), NamedLabel::Api(b)) => std::ptr::eq(*a, *b),
        (LabelRef::Uri { info, src }, NamedLabel::Uri { info: i, src: s }) => info == i && src == s,
        _ => false,
    }
}

/// Equality between an interned sink site and a summary leak's site:
/// sink-table pointer plus the declaring `(class, method)` names.
fn site_matches(prog: &Program, site: &SiteRef, sl: &SummaryLeak) -> bool {
    if !std::ptr::eq(site.api, sl.api) {
        return false;
    }
    let (class, method) = prog.apg.method_def(site.at_ix);
    class.name == sl.at_class && method.name == sl.at_method
}

// ---------------------------------------------------------------------------
// Fixpoint state
// ---------------------------------------------------------------------------

/// Flat bitset tables + the dirty worklist, cleared and reused across
/// apps (capacity retained).
#[derive(Debug)]
struct StateScratch<const W: usize> {
    regs: Vec<Bits<W>>,
    field_taint: Vec<Bits<W>>,
    param_taint: Vec<Bits<W>>,
    return_taint: Vec<Bits<W>>,
    icc_taint: Vec<Bits<W>>,
    /// site id → labels that reached it; `leak_total` tracks Σ popcount
    /// so the local stopping rule can mirror the reference's
    /// `leaks.len()` term exactly.
    sink_leaks: Vec<Bits<W>>,
    leak_total: usize,
    dirty: Vec<bool>,
    /// Methods seeded from a summary: their initial processing is elided.
    skip: Vec<bool>,
    queue: VecDeque<u32>,
    /// Staging area for summary application (reused across methods).
    pend: Pend<W>,
}

/// One method summary's contributions, translated into dense ids and
/// staged here before any state mutation — so a summary that fails
/// validation halfway leaves no trace, and replaying summaries performs
/// no allocation in the steady state.
#[derive(Debug)]
struct Pend<const W: usize> {
    ret: Bits<W>,
    fields: Vec<(u32, Bits<W>)>,
    params: Vec<(u32, Bits<W>)>,
    channels: Vec<(u32, Bits<W>)>,
    leaks: Vec<(u32, u32)>,
}

impl<const W: usize> Pend<W> {
    const fn new() -> Self {
        Pend {
            ret: Bits::EMPTY,
            fields: Vec::new(),
            params: Vec::new(),
            channels: Vec::new(),
            leaks: Vec::new(),
        }
    }
}

impl<const W: usize> Default for Pend<W> {
    fn default() -> Self {
        Pend::new()
    }
}

impl<const W: usize> StateScratch<W> {
    const fn new() -> Self {
        StateScratch {
            regs: Vec::new(),
            field_taint: Vec::new(),
            param_taint: Vec::new(),
            return_taint: Vec::new(),
            icc_taint: Vec::new(),
            sink_leaks: Vec::new(),
            leak_total: 0,
            dirty: Vec::new(),
            skip: Vec::new(),
            queue: VecDeque::new(),
            pend: Pend::new(),
        }
    }

    fn reset(&mut self, prog: &Program) {
        let cs = prog.cs;
        self.regs.clear();
        self.regs.resize(cs.max_regs as usize, Bits::EMPTY);
        self.field_taint.clear();
        self.field_taint.resize(cs.fields.len(), Bits::EMPTY);
        self.param_taint.clear();
        self.param_taint.resize(cs.method_total, Bits::EMPTY);
        self.return_taint.clear();
        self.return_taint.resize(cs.method_total, Bits::EMPTY);
        self.icc_taint.clear();
        self.icc_taint.resize(cs.channels.len(), Bits::EMPTY);
        self.sink_leaks.clear();
        self.sink_leaks.resize(cs.sites.len(), Bits::EMPTY);
        self.leak_total = 0;
        self.dirty.clear();
        self.dirty.resize(cs.method_total, false);
        self.skip.clear();
        self.skip.resize(cs.method_total, false);
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, ix: u32) {
        if !self.dirty[ix as usize] {
            self.dirty[ix as usize] = true;
            self.queue.push_back(ix);
        }
    }

    fn mark_all(&mut self, ixs: &[u32]) {
        for &ix in ixs {
            self.mark(ix);
        }
    }
}

/// Best-effort read prefetch of the cache line holding `*p` (no-op off
/// x86-64). Prefetching never faults, even on dangling addresses, so the
/// caller only needs a plausible pointer, not a live borrow.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is a hint; it cannot fault and has no
    // observable effect beyond the cache.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

fn exec<const W: usize>(
    prog: &Program,
    cache: Option<&TaintSummaryCache>,
    st: &mut StateScratch<W>,
) -> Vec<Leak> {
    st.reset(prog);
    if let Some(cache) = cache {
        let _span = ppchecker_obs::span!("taint.summary_replay");
        seed_from_summaries(prog, st, cache);
    }
    for &ix in &prog.cs.scope_ixs {
        if !st.skip[ix as usize] {
            st.mark(ix);
        }
    }
    while let Some(ix) = st.queue.pop_front() {
        st.dirty[ix as usize] = false;
        if let Some(&next) = st.queue.front() {
            // Pull the next queued method's op stream toward L1 while the
            // current method interprets; the worklist order is known one
            // step ahead, so the miss is overlapped instead of paid.
            let next_meta = prog.cs.metas[next as usize];
            let ops = prog.cs.ops.as_ptr().wrapping_add(next_meta.ops_start as usize);
            prefetch_read(ops);
            prefetch_read(ops.wrapping_byte_add(64));
        }
        process(prog, st, ix);
    }
    collect_leaks(prog, st)
}

/// One application of the method transfer function: reset registers,
/// seed parameters, interpret up to 4 local passes with the reference
/// engine's exact stopping rule (Σ register popcount + leak count).
fn process<const W: usize>(prog: &Program, st: &mut StateScratch<W>, ix: u32) {
    let meta = prog.cs.metas[ix as usize];
    if !meta.compiled {
        return;
    }
    let reg_count = meta.reg_count as usize;
    for r in &mut st.regs[..reg_count] {
        *r = Bits::EMPTY;
    }
    let incoming = st.param_taint[ix as usize];
    if !incoming.is_empty() {
        for r in &mut st.regs[..meta.param_count as usize] {
            *r = incoming;
        }
    }
    if meta.single_pass {
        // Straight-line body: one pass is the local fixpoint (see
        // [`MethodMeta::single_pass`]); skip the stopping-rule sweeps.
        interpret(prog, st, ix, meta);
        return;
    }
    // The reference engine's stopping rule: iterate (≤ 4 passes) until
    // Σ register popcount + leak count stops growing. Both are monotone
    // during interpretation, so the score after one pass is the score
    // before the next — compute it once per pass.
    let mut before =
        st.regs[..reg_count].iter().map(|b| b.count() as usize).sum::<usize>() + st.leak_total;
    for _pass in 0..4 {
        interpret(prog, st, ix, meta);
        let after =
            st.regs[..reg_count].iter().map(|b| b.count() as usize).sum::<usize>() + st.leak_total;
        if after == before {
            break;
        }
        before = after;
    }
}

fn interpret<const W: usize>(prog: &Program, st: &mut StateScratch<W>, ix: u32, meta: MethodMeta) {
    let cs = prog.cs;
    for op in &cs.ops[meta.ops_start as usize..meta.ops_end as usize] {
        match *op {
            Op::Clear(dst) => st.regs[dst as usize] = Bits::EMPTY,
            Op::Copy { dst, src } => st.regs[dst as usize] = st.regs[src as usize],
            Op::FieldPut { field, src } => {
                let t = st.regs[src as usize];
                if !t.is_empty() && st.field_taint[field as usize].or(&t) {
                    st.mark_all(cs.field_readers.row(field));
                }
            }
            Op::FieldGet { field, dst } => {
                let t = st.field_taint[field as usize];
                if !t.is_empty() {
                    st.regs[dst as usize].or(&t);
                }
            }
            Op::Ret { src } => {
                let t = st.regs[src as usize];
                if !t.is_empty() && st.return_taint[ix as usize].or(&t) {
                    st.mark_all(cs.callers_of.row(ix));
                }
            }
            Op::Invoke(i) => {
                let inv = cs.invokes[i as usize];
                let mut arg = Bits::<W>::EMPTY;
                let args =
                    &cs.arg_regs[inv.args_start as usize..(inv.args_start + inv.args_len) as usize];
                for &r in args {
                    arg.or(&st.regs[r as usize]);
                }
                if inv.source_label != NONE && inv.dst != NONE {
                    st.regs[inv.dst as usize].set(inv.source_label);
                }
                if inv.uri_label != NONE && inv.dst != NONE {
                    st.regs[inv.dst as usize].set(inv.uri_label);
                }
                if inv.icc_put != NONE
                    && !arg.is_empty()
                    && st.icc_taint[inv.icc_put as usize].or(&arg)
                {
                    st.mark_all(cs.channel_readers.row(inv.icc_put));
                }
                if inv.icc_get != NONE && inv.dst != NONE {
                    let t = st.icc_taint[inv.icc_get as usize];
                    if !t.is_empty() {
                        st.regs[inv.dst as usize].or(&t);
                    }
                }
                if inv.sink_site != NONE && !arg.is_empty() {
                    let site = &mut st.sink_leaks[inv.sink_site as usize];
                    let before = site.count();
                    site.or(&arg);
                    st.leak_total += (site.count() - before) as usize;
                }
                let mut returned = Bits::<W>::EMPTY;
                if inv.call != NONE {
                    if !arg.is_empty() && st.param_taint[inv.call as usize].or(&arg) {
                        st.mark(inv.call);
                    }
                    returned = st.return_taint[inv.call as usize];
                } else if inv.taint_through {
                    returned = arg;
                }
                if inv.dst != NONE && !returned.is_empty() {
                    st.regs[inv.dst as usize].or(&returned);
                }
            }
        }
    }
}

fn collect_leaks<const W: usize>(prog: &Program, st: &StateScratch<W>) -> Vec<Leak> {
    let mut out = Vec::with_capacity(st.leak_total);
    for (sid, bits) in st.sink_leaks.iter().enumerate() {
        if bits.is_empty() {
            continue;
        }
        let site = &prog.cs.sites[sid];
        let (at_class, at_method) = prog.apg.method_def(site.at_ix);
        let sink_api = format!("{}.{}", site.api.class, site.api.method);
        let at = format!("{}.{}", at_class.name, at_method.name);
        for bit in bits.ones() {
            let (info, source_api) = label_parts(&prog.cs.labels[bit as usize]);
            out.push(Leak {
                info,
                sink: site.api.kind,
                source_api,
                sink_api: sink_api.clone(),
                at_method: at.clone(),
            });
        }
    }
    // (label × site) pairs are unique by interning, so this sort yields
    // exactly the reference engine's BTreeSet iteration order.
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// Library summaries
// ---------------------------------------------------------------------------

/// For every known lib embedded in the app: on a cache hit, replay the
/// summary into the state (marking summarized methods skippable); on a
/// miss, compute `F_m(∅)` for each in-scope lib method and store it.
fn seed_from_summaries<const W: usize>(
    prog: &Program,
    st: &mut StateScratch<W>,
    cache: &TaintSummaryCache,
) {
    for &(lib, key) in prog.apg.known_lib_keys() {
        match cache.get(key) {
            Some(summary) => {
                // The summaries assumed their external calls hit the
                // framework; if any resolves to an app method here,
                // first-iteration semantics differ — process the whole
                // lib normally (one check per app, not per method).
                if summary.external_calls.iter().any(|(c, m)| prog.apg.lookup_ix(c, m).is_some()) {
                    continue;
                }
                for ms in &summary.methods {
                    apply_method_summary(prog, st, ms);
                }
            }
            None => {
                // Only the first app with this lib content pays for the
                // class walk; hits above never touch the dex.
                let mut classes: Vec<&Class> = prog
                    .apg
                    .dex
                    .classes
                    .iter()
                    .filter(|c| c.name.starts_with(lib.prefix))
                    .collect();
                classes.sort_by(|a, b| a.name.cmp(&b.name));
                let summary = compute_lib_summary::<W>(prog, &classes);
                cache.insert(key, summary);
            }
        }
    }
}

/// Validates and replays one method summary. Every contribution goes
/// through the same grow-and-dirty paths as live interpretation, so
/// downstream methods (including other summarized ones) are re-queued
/// when their inputs grow beyond ∅. Any validation failure leaves the
/// method un-skipped — it is simply processed normally.
fn apply_method_summary<const W: usize>(
    prog: &Program,
    st: &mut StateScratch<W>,
    ms: &MethodSummary,
) {
    let Some(ix) = prog.apg.lookup_ix(&ms.class, &ms.method) else { return };
    if !prog.cs.in_scope[ix as usize] {
        return; // never processed in this app; contributions would be unsound
    }

    // Stage the translated contributions into reusable scratch; a
    // summary that fails validation halfway mutates nothing.
    let cs = prog.cs;
    let mut pend = std::mem::take(&mut st.pend);
    if !stage_summary(prog, ms, &mut pend) {
        st.pend = pend;
        return;
    }

    // Apply through the dirty-marking grow paths.
    if !pend.ret.is_empty() && st.return_taint[ix as usize].or(&pend.ret) {
        st.mark_all(cs.callers_of.row(ix));
    }
    for &(fid, ref bits) in &pend.fields {
        if st.field_taint[fid as usize].or(bits) {
            st.mark_all(cs.field_readers.row(fid));
        }
    }
    for &(t, ref bits) in &pend.params {
        if st.param_taint[t as usize].or(bits) {
            st.mark(t);
        }
    }
    for &(ch, ref bits) in &pend.channels {
        if st.icc_taint[ch as usize].or(bits) {
            st.mark_all(cs.channel_readers.row(ch));
        }
    }
    for &(sid, lid) in &pend.leaks {
        let site = &mut st.sink_leaks[sid as usize];
        let before = site.count();
        site.set(lid);
        st.leak_total += (site.count() - before) as usize;
    }
    st.pend = pend;
    st.skip[ix as usize] = true;
}

/// Translates one method summary into dense ids, clearing and filling
/// `pend`. Returns false — staging incomplete, nothing to apply — if any
/// name fails to resolve against this app's interned tables. All
/// matching is by content; no strings are built.
fn stage_summary<const W: usize>(prog: &Program, ms: &MethodSummary, pend: &mut Pend<W>) -> bool {
    let cs = prog.cs;
    pend.fields.clear();
    pend.params.clear();
    pend.channels.clear();
    pend.leaks.clear();
    let translate = |labels: &[NamedLabel]| -> Option<Bits<W>> {
        let mut bits = Bits::EMPTY;
        for nl in labels {
            let id = cs.labels.iter().position(|l| label_matches(l, nl))?;
            bits.set(id as u32);
        }
        Some(bits)
    };
    let Some(ret) = translate(&ms.ret) else { return false };
    pend.ret = ret;
    for (class, field, labels) in &ms.fields {
        let Some(fid) = cs.fields.iter().position(|&(fix, fidx)| {
            let (c, f) = field_at(prog.apg, fix, fidx);
            c == class.as_str() && f == field.as_str()
        }) else {
            return false;
        };
        let Some(bits) = translate(labels) else { return false };
        pend.fields.push((fid as u32, bits));
    }
    for (class, method, labels) in &ms.params {
        let Some(t) = prog.apg.lookup_ix(class, method) else { return false };
        if !cs.in_scope[t as usize] {
            return false;
        }
        let Some(bits) = translate(labels) else { return false };
        pend.params.push((t, bits));
    }
    for (name, labels) in &ms.channels {
        let Some(ch) = cs.channels.iter().position(|c| c == name) else { return false };
        let Some(bits) = translate(labels) else { return false };
        pend.channels.push((ch as u32, bits));
    }
    for sl in &ms.leaks {
        let Some(sid) = cs.sites.iter().position(|s| site_matches(prog, s, sl)) else {
            return false;
        };
        let Some(lid) = cs.labels.iter().position(|l| label_matches(l, &sl.label)) else {
            return false;
        };
        pend.leaks.push((sid as u32, lid as u32));
    }
    true
}

/// Computes `F_m(∅)` for every summarizable in-scope method of a lib by
/// running the *compiled* program against a private scratch state — the
/// same interpreter that drives the live fixpoint, so summary semantics
/// can never drift from kernel semantics.
fn compute_lib_summary<const W: usize>(prog: &Program, classes: &[&Class]) -> LibSummary {
    let lib_names: HashSet<(&str, &str)> = classes
        .iter()
        .flat_map(|c| c.methods.iter().map(move |m| (c.name.as_str(), m.name.as_str())))
        .collect();
    let mut scratch = StateScratch::<W>::new();
    let mut out = LibSummary::default();
    for class in classes {
        for method in &class.methods {
            let Some(ix) = prog.apg.lookup_ix(&class.name, &method.name) else { continue };
            if !prog.cs.in_scope[ix as usize] {
                continue;
            }
            if let Some(ms) = summarize_method::<W>(
                prog,
                &mut scratch,
                ix,
                class,
                method,
                &lib_names,
                &mut out.external_calls,
            ) {
                out.methods.push(ms);
            }
        }
    }
    out.external_calls.sort_unstable();
    out.external_calls.dedup();
    out
}

fn summarize_method<const W: usize>(
    prog: &Program,
    scratch: &mut StateScratch<W>,
    ix: u32,
    class: &Class,
    method: &ppchecker_apk::Method,
    lib_names: &HashSet<(&str, &str)>,
    lib_external_calls: &mut Vec<(String, String)>,
) -> Option<MethodSummary> {
    // Classify call targets; bail out of summarization when the method's
    // first-iteration behavior depends on app code outside the lib.
    let mut external_calls: Vec<(String, String)> = Vec::new();
    for insn in &method.instructions {
        let Insn::Invoke { class: c, method: m, .. } = insn else { continue };
        if lib_names.contains(&(c.as_str(), m.as_str())) {
            // Lib-internal: must resolve to an in-scope method so the
            // recorded param push matches live semantics.
            match prog.apg.lookup_ix(c, m) {
                Some(t) if prog.cs.in_scope[t as usize] => {}
                _ => return None,
            }
        } else if prog.apg.lookup_ix(c, m).is_some() {
            return None; // calls app code outside the lib: app-dependent
        } else {
            external_calls.push((c.clone(), m.clone()));
        }
    }
    lib_external_calls.append(&mut external_calls);

    // One transfer-function application against empty global state.
    scratch.reset(prog);
    process(prog, scratch, ix);

    let cs = prog.cs;
    let labels_of = |bits: &Bits<W>| -> Vec<NamedLabel> {
        bits.ones().map(|b| named_of(&cs.labels[b as usize])).collect()
    };
    let mut ms = MethodSummary {
        class: class.name.clone(),
        method: method.name.clone(),
        ret: labels_of(&scratch.return_taint[ix as usize]),
        fields: Vec::new(),
        params: Vec::new(),
        channels: Vec::new(),
        leaks: Vec::new(),
    };
    for (fid, bits) in scratch.field_taint.iter().enumerate() {
        if !bits.is_empty() {
            let (fix, fidx) = cs.fields[fid];
            let (c, f) = field_at(prog.apg, fix, fidx);
            ms.fields.push((c.to_string(), f.to_string(), labels_of(bits)));
        }
    }
    for (t, bits) in scratch.param_taint.iter().enumerate() {
        if !bits.is_empty() {
            let (c, m) = prog.apg.method_name(prog.apg.method_node(t as u32));
            ms.params.push((c.clone(), m.clone(), labels_of(bits)));
        }
    }
    for (ch, bits) in scratch.icc_taint.iter().enumerate() {
        if !bits.is_empty() {
            ms.channels.push((cs.channels[ch].clone(), labels_of(bits)));
        }
    }
    for (sid, bits) in scratch.sink_leaks.iter().enumerate() {
        if bits.is_empty() {
            continue;
        }
        let site = &cs.sites[sid];
        let (at_class, at_method) = prog.apg.method_def(site.at_ix);
        for bit in bits.ones() {
            ms.leaks.push(SummaryLeak {
                label: named_of(&cs.labels[bit as usize]),
                api: site.api,
                at_class: at_class.name.clone(),
                at_method: at_method.name.clone(),
            });
        }
    }
    Some(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach;
    use crate::taint::{analyze, analyze_cached, analyze_reference};
    use ppchecker_apk::{Apk, ComponentKind, Dex, DexBuilder, Manifest, MethodBuilder};
    use proptest::prelude::*;

    /// Tiny xorshift so random-app generation is seed-deterministic
    /// without a rand dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
            self.0 = x;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    const SOURCES: &[(&str, &str)] = &[
        ("android.location.Location", "getLatitude"),
        ("android.telephony.TelephonyManager", "getDeviceId"),
        ("android.content.pm.PackageManager", "getInstalledPackages"),
        ("android.net.wifi.WifiInfo", "getMacAddress"),
    ];
    const SINKS: &[(&str, &str)] = &[
        ("android.util.Log", "d"),
        ("java.io.FileOutputStream", "write"),
        ("android.telephony.SmsManager", "sendTextMessage"),
    ];

    /// Emits a random instruction mix covering every op the kernel
    /// lowers: sources, sinks, moves, clears, fields, app calls, ICC
    /// put/get, query URIs, returns.
    fn random_body(rng: &mut Rng, m: &mut MethodBuilder, methods: &[(String, String)]) {
        let len = 2 + rng.below(10);
        for _ in 0..len {
            let r = || 0;
            let _ = r;
            let a = rng.below(6) as Reg;
            let b = rng.below(6) as Reg;
            match rng.below(12) {
                0 => {
                    let (c, s) = SOURCES[rng.below(SOURCES.len() as u64) as usize];
                    m.invoke_virtual(c, s, &[a], Some(b));
                }
                1 => {
                    let (c, s) = SINKS[rng.below(SINKS.len() as u64) as usize];
                    m.invoke_static(c, s, &[a, b], None);
                }
                2 => {
                    m.mov(a, b);
                }
                3 => {
                    m.const_string(a, "overwrite");
                }
                4 => {
                    m.field_put("com.r.Main", if rng.below(2) == 0 { "f0" } else { "f1" }, a);
                }
                5 => {
                    m.field_get("com.r.Main", if rng.below(2) == 0 { "f0" } else { "f1" }, b);
                }
                6 => {
                    let (c, callee) = &methods[rng.below(methods.len() as u64) as usize];
                    m.invoke_virtual(c, callee, &[a], Some(b));
                }
                7 => {
                    m.invoke_virtual("java.lang.StringBuilder", "append", &[a, b], Some(a));
                }
                8 => {
                    m.new_instance(a, "java.lang.Object");
                }
                9 => {
                    m.const_string(a, "content://com.android.contacts");
                    m.invoke_virtual("android.content.ContentResolver", "query", &[b, a], Some(b));
                }
                10 => {
                    // ICC: put an extra for a random app class, read extras.
                    m.new_instance(4, "android.content.Intent");
                    let target = format!("com.r.C{}", rng.below(3));
                    m.const_string(5, &target);
                    m.invoke_virtual("android.content.Intent", "setClass", &[4, 0, 5], None);
                    m.invoke_virtual("android.content.Intent", "putExtra", &[4, 5, a], None);
                    m.invoke_virtual("android.content.Intent", "getStringExtra", &[4, 5], Some(b));
                }
                _ => {
                    m.ret(Some(a));
                }
            }
        }
    }

    fn random_apk(seed: u64) -> Apk {
        let mut rng = Rng(seed);
        let n_classes = 2 + rng.below(3) as usize;
        let mut methods: Vec<(String, String)> = Vec::new();
        for ci in 0..n_classes {
            let class = format!("com.r.C{ci}");
            methods.push((class.clone(), "onCreate".into()));
            for mi in 0..(1 + rng.below(3)) {
                methods.push((class.clone(), format!("helper{mi}")));
            }
            methods.push((class.clone(), "onClick".into()));
        }
        let mut manifest = Manifest::new("com.r");
        manifest.add_component(ComponentKind::Activity, "com.r.C0", true);
        if n_classes > 1 {
            manifest.add_component(ComponentKind::Service, "com.r.C1", false);
        }
        let mut builder = Dex::builder();
        let mut by_class: Vec<(String, Vec<String>)> = Vec::new();
        for (c, m) in &methods {
            match by_class.iter_mut().find(|(name, _)| name == c) {
                Some((_, ms)) => ms.push(m.clone()),
                None => by_class.push((c.clone(), vec![m.clone()])),
            }
        }
        for (class, ms) in by_class {
            let methods = methods.clone();
            let seed = rng.next();
            builder = builder.class(&class, |c| {
                c.extends("android.app.Activity");
                let mut inner = Rng(seed);
                for m in ms {
                    c.method(&m, 1 + inner.below(3) as u32, |mb| {
                        random_body(&mut inner, mb, &methods);
                    });
                }
            });
        }
        Apk::new(manifest, builder.build())
    }

    fn leaks_both_ways(apk: &Apk) -> (Vec<Leak>, Vec<Leak>) {
        let apg = Apg::build(apk).unwrap();
        let methods = reach::reachable_methods(&apg);
        let kernel = run(&apg, &methods, None).expect("kernel should handle generated apps");
        let reference = analyze_reference(&apg, &methods);
        (kernel, reference)
    }

    proptest! {
        /// Differential fuzz: the kernel's leak vector is byte-identical
        /// to the reference engine on randomly generated apps exercising
        /// every instruction kind.
        #[test]
        fn kernel_matches_reference_on_random_apps(seed in any::<u64>()) {
            let apk = random_apk(seed);
            let (kernel, reference) = leaks_both_ways(&apk);
            prop_assert_eq!(kernel, reference);
        }

        /// Differential: the strip-mined Bits ops (4-lane `or`,
        /// OR-folded `is_empty`, popcount-folded `count`) agree with
        /// plain per-word references on random bit patterns, at every
        /// width the kernel instantiates.
        #[test]
        fn strip_mined_bits_match_reference(seed in any::<u64>()) {
            fn check<const W: usize>(rng: &mut Rng) {
                let mut a = Bits::<W>::EMPTY;
                let mut b = Bits::<W>::EMPTY;
                for i in 0..W {
                    // AND two draws for sparse words; mix in a dense draw
                    // and an all-zero word so the changed/empty edges hit.
                    a.0[i] = match rng.below(4) {
                        0 => 0,
                        1 => rng.next(),
                        _ => rng.next() & rng.next(),
                    };
                    b.0[i] = match rng.below(4) {
                        0 => 0,
                        1 => rng.next(),
                        _ => rng.next() & rng.next(),
                    };
                }
                let ref_count: u32 = a.0.iter().map(|w| w.count_ones()).sum();
                let ref_empty = a.0.iter().all(|&w| w == 0);
                let ref_changed = a.0.iter().zip(b.0.iter()).any(|(&x, &y)| x | y != x);
                let ref_union: Vec<u64> = a.0.iter().zip(b.0.iter()).map(|(&x, &y)| x | y).collect();
                assert_eq!(a.count(), ref_count);
                assert_eq!(a.is_empty(), ref_empty);
                let mut unioned = a;
                assert_eq!(unioned.or(&b), ref_changed);
                assert_eq!(&unioned.0[..], &ref_union[..]);
                // A second union of the same operand never reports change.
                assert!(!unioned.or(&b));
            }
            let mut rng = Rng(seed);
            for _ in 0..64 {
                check::<1>(&mut rng);
                check::<2>(&mut rng);
                check::<4>(&mut rng);
                check::<7>(&mut rng); // non-multiple width: remainder loops
            }
        }
    }

    #[test]
    fn kernel_declines_duplicate_method_declarations() {
        // Two declarations of com.d.Main.go: name resolution is ambiguous,
        // so the kernel must bow out and `analyze` must still answer (via
        // the reference engine).
        let mut manifest = Manifest::new("com.d");
        manifest.add_component(ComponentKind::Activity, "com.d.Main", true);
        let dex = Dex::builder()
            .class("com.d.Main", |c| {
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("com.d.Main", "go", &[0], None);
                });
                c.method("go", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLatitude", &[0], Some(1));
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
                c.method("go", 1, |_| {});
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let apg = Apg::build(&apk).unwrap();
        assert!(apg.has_duplicate_methods());
        let methods = reach::reachable_methods(&apg);
        assert!(run(&apg, &methods, None).is_none());
        assert_eq!(analyze(&apg, &methods), analyze_reference(&apg, &methods));
    }

    #[test]
    fn kernel_declines_label_overflow() {
        // More than 256 distinct (info, witness) labels — via distinct
        // sensitive URI literals — must force the reference fallback.
        let mut manifest = Manifest::new("com.o");
        manifest.add_component(ComponentKind::Activity, "com.o.Main", true);
        let dex = Dex::builder()
            .class("com.o.Main", |c| {
                c.method("onCreate", 1, |m| {
                    for i in 0..300u32 {
                        m.const_string(1, &format!("content://com.android.contacts/u{i}"));
                        m.invoke_virtual(
                            "android.content.ContentResolver",
                            "query",
                            &[0, 1],
                            Some(2),
                        );
                        m.invoke_static("android.util.Log", "i", &[2], None);
                    }
                });
            })
            .build();
        let apk = Apk::new(manifest, dex);
        let apg = Apg::build(&apk).unwrap();
        let methods = reach::reachable_methods(&apg);
        assert!(run(&apg, &methods, None).is_none(), "301 labels exceed the bitset envelope");
        let leaks = analyze(&apg, &methods);
        assert_eq!(leaks, analyze_reference(&apg, &methods));
        assert!(!leaks.is_empty());
    }

    /// An app embedding an admob-prefixed SDK whose entry method leaks
    /// device id → Log and returns tainted data to the app.
    fn lib_app(package: &str) -> Apk {
        let mut manifest = Manifest::new(package);
        let main = format!("{package}.Main");
        manifest.add_component(ComponentKind::Activity, &main, true);
        let dex = lib_classes(Dex::builder())
            .class(&main, |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("com.google.android.gms.ads.Sdk", "init", &[0], Some(1));
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
            })
            .build();
        Apk::new(manifest, dex)
    }

    fn lib_classes(builder: DexBuilder) -> DexBuilder {
        builder.class("com.google.android.gms.ads.Sdk", |c| {
            c.method("init", 1, |m| {
                m.invoke_virtual(
                    "android.telephony.TelephonyManager",
                    "getDeviceId",
                    &[0],
                    Some(1),
                );
                m.invoke_virtual("com.google.android.gms.ads.Sdk", "upload", &[1], None);
                m.ret(Some(1));
            });
            c.method("upload", 1, |m| {
                m.invoke_virtual("java.io.FileOutputStream", "write", &[0], None);
            });
        })
    }

    #[test]
    fn summary_cache_preserves_leaks_across_apps() {
        let cache = TaintSummaryCache::new();
        let mut all_cold: Vec<Vec<Leak>> = Vec::new();
        let mut all_warm: Vec<Vec<Leak>> = Vec::new();
        for (i, package) in ["com.first", "com.second", "com.third"].iter().enumerate() {
            let apk = lib_app(package);
            let apg = Apg::build(&apk).unwrap();
            let methods = reach::reachable_methods(&apg);
            let cold = analyze_reference(&apg, &methods);
            let warm = analyze_cached(&apg, &methods, Some(&cache));
            assert!(!cold.is_empty(), "lib app {i} must leak");
            all_cold.push(cold);
            all_warm.push(warm);
        }
        assert_eq!(all_cold, all_warm, "summary-warm runs must be byte-identical");
        // First app misses and stores; the other two hit.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn summary_is_invalidated_by_lib_content_change() {
        let cache = TaintSummaryCache::new();
        let a = lib_app("com.first");
        let apg_a = Apg::build(&a).unwrap();
        let ms = reach::reachable_methods(&apg_a);
        let _ = analyze_cached(&apg_a, &ms, Some(&cache));

        // Same class/method names, different body ⇒ different content
        // hash ⇒ no summary reuse.
        let mut manifest = Manifest::new("com.mod");
        manifest.add_component(ComponentKind::Activity, "com.mod.Main", true);
        let dex = Dex::builder()
            .class("com.google.android.gms.ads.Sdk", |c| {
                c.method("init", 1, |m| {
                    m.invoke_virtual("android.location.Location", "getLongitude", &[0], Some(1));
                    m.ret(Some(1));
                });
                c.method("upload", 1, |_| {});
            })
            .class("com.mod.Main", |c| {
                c.extends("android.app.Activity");
                c.method("onCreate", 1, |m| {
                    m.invoke_virtual("com.google.android.gms.ads.Sdk", "init", &[0], Some(1));
                    m.invoke_static("android.util.Log", "d", &[1], None);
                });
            })
            .build();
        let b = Apk::new(manifest, dex);
        let apg_b = Apg::build(&b).unwrap();
        let ms_b = reach::reachable_methods(&apg_b);
        let warm = analyze_cached(&apg_b, &ms_b, Some(&cache));
        assert_eq!(warm, analyze_reference(&apg_b, &ms_b));
        assert_eq!(cache.entries(), 2, "modified lib stored under a new key");
    }
}
